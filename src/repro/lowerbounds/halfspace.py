"""Halfspace reporting → CPref reduction (Appendix B.2, Theorem 3.5).

Given ``n`` points ``U ⊂ R^d``, create the repository of singleton datasets
``P_i = {u_i}``.  A query halfspace ``H = {x : <x, v> >= tau}`` (``v`` a
unit normal) satisfies ``u_i ∈ H  ⇔  omega_1(P_i, v) >= tau``, i.e. the
CPref predicate ``Pred_{M_{v,1}, [tau, 1]}``.  Hence a small & fast exact
CPref structure would beat the known Ω(...) halfspace-reporting lower bound
[Afshani 2012] — Theorem 3.5.

The paper's appendix additionally normalizes ``U`` into the unit ball /
first orthant and handles origin-containing halfspaces by a rotation; those
affine transformations exist so the reduction lands in the paper's
normalized Pref setting and do not change which points are reported.  Our
CPref implementations accept arbitrary unit vectors and thresholds of
either sign, so the reduction below is the direct one; the normalization
helpers are still provided (and tested) for fidelity.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import ConstructionError


def normalize_to_unit_ball(points: np.ndarray) -> tuple[np.ndarray, float]:
    """Scale a point set into the unit ball; returns (scaled, scale factor).

    The same scale applied to a halfspace offset preserves membership:
    ``<u, v> >= tau  ⇔  <u/s, v> >= tau/s``.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ConstructionError("points must be a non-empty (n, d) array")
    scale = float(np.linalg.norm(pts, axis=1).max())
    if scale == 0.0:
        return pts.copy(), 1.0
    return pts / scale, scale


def translate_to_first_orthant(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Translate a point set into the first orthant; returns (moved, shift).

    A halfspace ``<x, v> >= tau`` becomes ``<x', v> >= tau + <shift, v>``
    under ``x' = x + shift``, again preserving membership.
    """
    pts = np.asarray(points, dtype=float)
    shift = np.maximum(0.0, -pts.min(axis=0))
    return pts + shift, shift


def halfspace_report_brute_force(
    points: np.ndarray, normal: np.ndarray, offset: float
) -> set[int]:
    """``{i : <u_i, v> >= tau}`` by direct evaluation (the ground truth)."""
    pts = np.asarray(points, dtype=float)
    v = np.asarray(normal, dtype=float)
    norm = np.linalg.norm(v)
    if norm == 0.0:
        raise ConstructionError("halfspace normal must be nonzero")
    proj = pts @ (v / norm)
    return set(np.nonzero(proj >= offset / norm)[0].tolist())


def halfspace_report_via_cpref(
    points: np.ndarray,
    normal: np.ndarray,
    offset: float,
    cpref_query: Optional[Callable[[np.ndarray, int, float], set[int]]] = None,
) -> set[int]:
    """Answer halfspace reporting through a CPref oracle.

    ``cpref_query(unit_vector, k, a_theta)`` must return the exact index set
    ``{i : omega_k(P_i, v) >= a_theta}`` over the singleton repository
    ``P_i = {u_i}``; defaults to direct evaluation (the semantics any exact
    CPref structure provides).
    """
    v = np.asarray(normal, dtype=float)
    norm = np.linalg.norm(v)
    if norm == 0.0:
        raise ConstructionError("halfspace normal must be nonzero")
    unit = v / norm
    a_theta = offset / norm
    if cpref_query is None:
        return halfspace_report_brute_force(points, unit, a_theta)
    return set(cpref_query(unit, 1, a_theta))
