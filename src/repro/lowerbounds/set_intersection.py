"""Uniform set intersection → CPtile reduction (Appendix B.1, Figure 4).

The construction (following Rahul-Janardan [50]):

- A *uniform* collection of sets ``S_1..S_g`` over universe ``{0..q-1}``
  (every element belongs to the same number ``c`` of sets).
- Every occurrence ``s_{i,k}`` (k-th item of ``S_i``; items at global
  offsets ``m_{i-1} + k``) creates two points, one on line ``L: y = x + M``
  at ``x = -(k + m_{i-1})`` and one on ``L': y = x - M`` at
  ``x = +(k + m_{i-1})``; both join the dataset ``P_u`` of the *element*
  ``u = s_{i,k}``.  Uniformity makes all ``|P_u| = 2c =: t`` equal.
- For indices ``i, j`` the rectangle
  ``rho_{i,j} = [-m_i, m_j] x [m_{j-1}+1-M, M-m_{i-1}-1]`` intersects the
  point set exactly in ``G_i ∪ G'_j`` (set i's points on L, set j's points
  on L'), so ``u ∈ S_i ∩ S_j  ⇔  |P_u ∩ rho_{i,j}| = 2
  ⇔ M_{rho_{i,j}}(P_u) ∈ [1.5/t, 1]``.

Hence any CPtile structure answers set-intersection queries: a small & fast
CPtile structure would refute the strong set-intersection conjecture
(Theorem 3.4).  The FIG4 benchmark runs this reduction end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import ConstructionError
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle

@dataclass
class UniformSetIntersectionInstance:
    """A uniform set collection plus its geometric CPtile encoding."""

    sets: list[set[int]]          # S_1..S_g (0-based)
    universe_size: int            # q
    occurrences: int              # c — sets per element (uniformity)
    offsets: list[int]            # m_0..m_g (global item offsets)
    datasets: list[np.ndarray]    # P_0..P_{q-1}, each (2c, 2)
    total_size: int               # M = sum |S_i|

    @property
    def n_sets(self) -> int:
        """``g``."""
        return len(self.sets)

    @property
    def points_per_dataset(self) -> int:
        """``t = 2c`` — every dataset has the same size (uniformity)."""
        return 2 * self.occurrences

    def brute_force_intersection(self, i: int, j: int) -> set[int]:
        """``S_i ∩ S_j`` directly."""
        return self.sets[i] & self.sets[j]


def make_uniform_instance(
    n_sets: int,
    set_size: int,
    occurrences: int,
    rng: np.random.Generator,
) -> UniformSetIntersectionInstance:
    """Sample a random uniform collection and build its CPtile encoding.

    Construction: lay out the elements ``0..q-1`` repeated ``occurrences``
    times in stride order (position ``p`` holds element ``p mod q``) and cut
    the sequence into ``n_sets`` consecutive blocks of ``set_size``.  Two
    occurrences of the same element are exactly ``q`` positions apart, and
    ``q = n_sets * set_size / occurrences >= set_size`` whenever
    ``occurrences <= n_sets``, so no block repeats an element — the
    collection is simple and uniform by construction.  Element labels are
    then randomly permuted so intersections are randomized.
    """
    if n_sets < 2 or set_size < 1 or occurrences < 1:
        raise ConstructionError("need n_sets >= 2, set_size >= 1, occurrences >= 1")
    total = n_sets * set_size
    if total % occurrences != 0:
        raise ConstructionError(
            "n_sets * set_size must be divisible by occurrences for uniformity"
        )
    q = total // occurrences
    if occurrences > n_sets:
        raise ConstructionError("occurrences cannot exceed n_sets")
    relabel = rng.permutation(q)
    sets: list[set[int]] = []
    for i in range(n_sets):
        block = range(i * set_size, (i + 1) * set_size)
        members = {int(relabel[p % q]) for p in block}
        if len(members) != set_size:  # pragma: no cover - guarded above
            raise ConstructionError("stride construction produced a duplicate")
        sets.append(members)
    return _encode(sets, q, occurrences)


def _encode(
    sets: list[set[int]], q: int, occurrences: int
) -> UniformSetIntersectionInstance:
    """Build the two-line point sets of Appendix B.1."""
    big_m = sum(len(s) for s in sets)
    offsets = [0]
    per_element: dict[int, list[tuple[float, float]]] = {u: [] for u in range(q)}
    for s in sets:
        m_prev = offsets[-1]
        for k, u in enumerate(sorted(s), start=1):
            pos = k + m_prev
            per_element[u].append((-pos, -pos + big_m))   # on L: y = x + M
            per_element[u].append((pos, pos - big_m))     # on L': y = x - M
        offsets.append(m_prev + len(s))
    datasets = [np.asarray(per_element[u], dtype=float) for u in range(q)]
    return UniformSetIntersectionInstance(
        sets=sets,
        universe_size=q,
        occurrences=occurrences,
        offsets=offsets,
        datasets=datasets,
        total_size=big_m,
    )


def intersection_query_rectangle(
    instance: UniformSetIntersectionInstance, i: int, j: int
) -> Rectangle:
    """The rectangle ``rho_{i,j}`` isolating ``G_i ∪ G'_j`` (Figure 4)."""
    g = instance.n_sets
    if not (0 <= i < g and 0 <= j < g):
        raise ConstructionError("set indices out of range")
    m = instance.offsets
    big_m = instance.total_size
    x_lo = -float(m[i + 1])
    x_hi = float(m[j + 1])
    y_lo = float(m[j] + 1 - big_m)
    y_hi = float(big_m - m[i] - 1)
    return Rectangle([x_lo, y_lo], [x_hi, y_hi])


def intersection_theta(instance: UniformSetIntersectionInstance) -> Interval:
    """The fixed interval ``[1.5/t, 1]`` certifying two hits."""
    return Interval(1.5 / instance.points_per_dataset, 1.0)


def intersect_via_cptile(
    instance: UniformSetIntersectionInstance,
    i: int,
    j: int,
    cptile_query: Optional[Callable[[Rectangle, Interval], set[int]]] = None,
) -> set[int]:
    """Answer ``S_i ∩ S_j`` through a CPtile oracle.

    ``cptile_query(rect, theta)`` must return the exact index set
    ``{u : M_rect(P_u) ∈ theta}``; defaults to direct counting over the
    instance's datasets (the semantics any exact CPtile structure provides).
    """
    rect = intersection_query_rectangle(instance, i, j)
    theta = intersection_theta(instance)
    if cptile_query is None:
        out = set()
        for u, pts in enumerate(instance.datasets):
            if rect.count_inside(pts) / pts.shape[0] in theta:
                out.add(u)
        return out
    return set(cptile_query(rect, theta))
