"""Lower-bound reductions (Section 3, Appendices B.1-B.2).

These modules make the paper's hardness arguments *executable*:

- :mod:`~repro.lowerbounds.set_intersection` — uniform set-intersection
  instances and the two-line geometric reduction to CPtile in R² (Fig. 4),
  demonstrating that an exact CPtile structure answers set-intersection
  queries (hence cannot be simultaneously small and fast under the strong
  set-intersection conjecture, Theorem 3.4).
- :mod:`~repro.lowerbounds.halfspace` — the reduction from halfspace
  reporting to CPref with singleton datasets (Theorem 3.5).
"""

from repro.lowerbounds.set_intersection import (
    UniformSetIntersectionInstance,
    make_uniform_instance,
    intersection_query_rectangle,
    intersect_via_cptile,
)
from repro.lowerbounds.halfspace import (
    halfspace_report_brute_force,
    halfspace_report_via_cpref,
)

__all__ = [
    "UniformSetIntersectionInstance",
    "make_uniform_instance",
    "intersection_query_rectangle",
    "intersect_via_cptile",
    "halfspace_report_brute_force",
    "halfspace_report_via_cpref",
]
