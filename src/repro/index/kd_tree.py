"""Dynamic kd-tree with active counters — the general range-search engine.

This is the practical engine behind the mapped-space orthant queries of the
Ptile data structures (points live in ``R^{2d+1}`` / ``R^{4d+1}`` once the
weight is appended as a coordinate).  It implements the
:class:`~repro.index.backend.RangeSearchBackend` protocol:

- ``report(box)`` — all active points in an axis-parallel
  :class:`~repro.index.query_box.QueryBox`;
- ``report_first(box)`` — one arbitrary active point (``ReportFirst``),
  found by a pruned descent that skips subtrees with zero active points;
- ``report_groups(box)`` — all dataset keys with an active point in the
  box (derived from ``report``; the columnar backend specializes this);
- ``deactivate(id)`` / ``activate(id)`` — O(depth) activation toggles (the
  temporary deletions of Algorithms 2 and 4);
- ``insert(points, ids)`` / ``remove(id)`` — the dynamic-synopsis remarks,
  via a side buffer with amortized full rebuilds (logarithmic-rebuilding in
  the style of Overmars [47]).

The hot loops are vectorized: leaf hits are gathered by boolean-mask
indexing over an object-dtype id array (no per-point Python appends), and
the side buffer is a contiguous point matrix scanned with one
``contains_points`` call per query rather than point by point.

Median splits keep the tree balanced: depth is ``O(log n)`` and the classic
kd-tree analysis gives ``O(n^{1-1/k} + OUT)`` worst-case reporting, while
orthant-style queries on the benign mapped point sets behave
polylogarithmically in practice — the T-4.4/T-4.11 benchmarks confirm the
paper's query-time *shape* against the Ω(N) baselines.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.index.backend import group_of, object_array
from repro.index.query_box import BoxBatch, QueryBox

#: Rebuild the main tree when the side buffer exceeds this fraction of it.
REBUILD_FRACTION = 0.25
#: ... but never rebuild for buffers smaller than this.
MIN_BUFFER_FOR_REBUILD = 64

#: In the multi-box walk, stop descending and broadcast-test a node's
#: contiguous point slice directly once ``alive boxes x slice points``
#: falls under this budget: one vectorized containment pass is cheaper
#: than the Python node visits a deeper descent would cost.
MULTIBOX_BROADCAST_CUTOFF = 8192


class _KDNode:
    __slots__ = ("start", "end", "lo", "hi", "active", "left", "right", "parent")

    def __init__(self, start: int, end: int, lo: np.ndarray, hi: np.ndarray) -> None:
        self.start = start
        self.end = end
        self.lo = lo
        self.hi = hi
        self.active = end - start
        self.left: Optional["_KDNode"] = None
        self.right: Optional["_KDNode"] = None
        self.parent: Optional["_KDNode"] = None


class DynamicKDTree:
    """Median-split kd-tree over ``(n, k)`` points with activation support.

    Parameters
    ----------
    points:
        ``(n, k)`` float array.
    ids:
        Optional unique hashable identifiers (default: positions).
    leaf_size:
        Maximum number of points per leaf.

    Examples
    --------
    >>> import numpy as np
    >>> tree = DynamicKDTree(np.array([[0.0], [1.0], [2.0]]))
    >>> tree.report_first(QueryBox.closed([0.5], [2.5])) in (1, 2)
    True
    """

    def __init__(
        self,
        points: np.ndarray,
        ids: Optional[Iterable] = None,
        leaf_size: int = 16,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, k) array")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.dim = pts.shape[1]
        self._leaf_size = leaf_size
        id_list = list(ids) if ids is not None else list(range(pts.shape[0]))
        if len(id_list) != pts.shape[0]:
            raise ValueError("points and ids must have equal length")
        self._init_buffer()
        self._removed: set = set()
        self._build_main(pts, id_list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _init_buffer(self) -> None:
        # Contiguous side-buffer storage (amortized-doubling capacity), so
        # the per-query buffer scan is one vectorized mask, not a loop.
        self._buf_pts = np.empty((0, 0))
        self._buf_ids = np.empty(0, dtype=object)
        self._buf_active = np.empty(0, dtype=bool)
        self._buf_n = 0
        self._buf_pos: dict = {}

    def _build_main(self, pts: np.ndarray, id_list: list) -> None:
        order = np.arange(pts.shape[0])
        self._pts = pts.copy()
        self._perm = order
        # _pts is reordered in-place during the build so that each node owns
        # a contiguous slice [start, end).
        self._root = self._build(0, pts.shape[0])
        self._ids = [id_list[i] for i in self._perm]
        self._ids_arr = object_array(self._ids)
        self._pos_of_id = {pid: pos for pos, pid in enumerate(self._ids)}
        if len(self._pos_of_id) != len(self._ids):
            raise ValueError("ids must be unique")
        self._active = np.ones(pts.shape[0], dtype=bool)
        self._leaf_of: list[Optional[_KDNode]] = [None] * pts.shape[0]
        self._assign_leaves(self._root)

    def _build(self, start: int, end: int) -> _KDNode:
        slice_pts = self._pts[start:end]
        node = _KDNode(start, end, slice_pts.min(axis=0), slice_pts.max(axis=0))
        if end - start > self._leaf_size:
            axis = int(np.argmax(node.hi - node.lo))
            mid = (end - start) // 2
            part = np.argpartition(self._pts[start:end, axis], mid)
            self._pts[start:end] = self._pts[start:end][part]
            self._perm[start:end] = self._perm[start:end][part]
            node.left = self._build(start, start + mid)
            node.right = self._build(start + mid, end)
            node.left.parent = node
            node.right.parent = node
        return node

    def _assign_leaves(self, node: _KDNode) -> None:
        if node.left is None:
            for pos in range(node.start, node.end):
                self._leaf_of[pos] = node
        else:
            self._assign_leaves(node.left)
            self._assign_leaves(node.right)

    def __len__(self) -> int:
        return len(self._ids) + self._buf_n

    @property
    def n_active(self) -> int:
        """Number of points currently visible to queries."""
        return self._root.active + int(
            np.count_nonzero(self._buf_active[: self._buf_n])
        )

    @property
    def supports_insert(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Activation and dynamics
    # ------------------------------------------------------------------
    def deactivate(self, entry_id) -> None:
        """Hide a point from queries in O(depth)."""
        pos = self._pos_of_id.get(entry_id)
        if pos is not None:
            if not self._active[pos]:
                raise KeyError(f"entry {entry_id!r} is already inactive")
            self._active[pos] = False
            node = self._leaf_of[pos]
            while node is not None:
                node.active -= 1
                node = node.parent
            return
        bpos = self._buf_pos.get(entry_id)
        if bpos is None:
            raise KeyError(f"unknown entry {entry_id!r}")
        if not self._buf_active[bpos]:
            raise KeyError(f"entry {entry_id!r} is already inactive")
        self._buf_active[bpos] = False

    def activate(self, entry_id) -> None:
        """Re-show a previously deactivated point."""
        pos = self._pos_of_id.get(entry_id)
        if pos is not None:
            if self._active[pos]:
                raise KeyError(f"entry {entry_id!r} is already active")
            self._active[pos] = True
            node = self._leaf_of[pos]
            while node is not None:
                node.active += 1
                node = node.parent
            return
        bpos = self._buf_pos.get(entry_id)
        if bpos is None:
            raise KeyError(f"unknown entry {entry_id!r}")
        if self._buf_active[bpos]:
            raise KeyError(f"entry {entry_id!r} is already active")
        self._buf_active[bpos] = True

    def insert(self, points: np.ndarray, ids: Iterable) -> None:
        """Insert new points (dynamic-synopsis support).

        New points land in a contiguous side buffer that every query also
        scans (vectorized); when the buffer outgrows ``REBUILD_FRACTION``
        of the main tree, the whole structure is rebuilt — the classic
        amortized-logarithmic rebuilding trick [Overmars 1983].
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        id_list = list(ids)
        if pts.shape[0] != len(id_list):
            raise ValueError("points and ids must have equal length")
        if pts.shape[1] != self.dim:
            raise ValueError("dimension mismatch")
        for pid in id_list:
            if pid in self._pos_of_id or pid in self._buf_pos:
                raise KeyError(f"duplicate entry id {pid!r}")
        need = self._buf_n + len(id_list)
        if need > self._buf_pts.shape[0] or self._buf_pts.shape[1] != self.dim:
            cap = max(need, 2 * self._buf_pts.shape[0])
            grown = np.empty((cap, self.dim))
            if self._buf_n:
                grown[: self._buf_n] = self._buf_pts[: self._buf_n]
            self._buf_pts = grown
            self._buf_ids = np.resize(self._buf_ids, cap)
            active = np.zeros(cap, dtype=bool)
            active[: self._buf_n] = self._buf_active[: self._buf_n]
            self._buf_active = active
        for row, pid in zip(pts, id_list):
            pos = self._buf_n
            self._buf_pts[pos] = row
            self._buf_ids[pos] = pid
            self._buf_active[pos] = True
            self._buf_pos[pid] = pos
            self._buf_n += 1
        if self._buf_n >= max(
            MIN_BUFFER_FOR_REBUILD, int(REBUILD_FRACTION * max(1, len(self._ids)))
        ):
            self._rebuild()

    def remove(self, entry_id) -> None:
        """Permanently remove a point (deactivate + drop at next rebuild).

        Deactivated points can be removed too; removing an unknown or
        already-removed id raises ``KeyError`` (matching the columnar
        backend's semantics).
        """
        if entry_id in self._removed:
            raise KeyError(f"unknown entry {entry_id!r}")
        try:
            self.deactivate(entry_id)
        except KeyError:
            # Already-inactive is fine for a removal; unknown ids are not.
            if entry_id not in self._pos_of_id and entry_id not in self._buf_pos:
                raise
        self._removed.add(entry_id)

    def export_points(self) -> tuple[np.ndarray, list, np.ndarray]:
        """Live contents as ``(points, ids, active)`` parallel arrays.

        Enumerates main-tree slots (build order) then the side buffer,
        skipping tombstoned ids — the same sweep :meth:`_rebuild` does.
        """
        pts, ids, act = [], [], []
        for pos, pid in enumerate(self._ids):
            if pid in self._removed:
                continue
            pts.append(self._pts[pos])
            ids.append(pid)
            act.append(bool(self._active[pos]))
        for bpos in range(self._buf_n):
            pid = self._buf_ids[bpos]
            if pid in self._removed:
                continue
            pts.append(self._buf_pts[bpos].copy())
            ids.append(pid)
            act.append(bool(self._buf_active[bpos]))
        return (
            np.asarray(pts, dtype=float),
            ids,
            np.asarray(act, dtype=bool),
        )

    def _rebuild(self) -> None:
        keep_pts, keep_ids = [], []
        for pos, pid in enumerate(self._ids):
            if pid in self._removed:
                continue
            keep_pts.append(self._pts[pos])
            keep_ids.append(pid)
        inactive = {
            pid
            for pos, pid in enumerate(self._ids)
            if not self._active[pos] and pid not in self._removed
        }
        for bpos in range(self._buf_n):
            pid = self._buf_ids[bpos]
            if pid in self._removed:
                continue
            keep_pts.append(self._buf_pts[bpos].copy())
            keep_ids.append(pid)
            if not self._buf_active[bpos]:
                inactive.add(pid)
        self._init_buffer()
        self._removed = set()
        self._build_main(np.asarray(keep_pts), keep_ids)
        for pid in inactive:
            self.deactivate(pid)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _check_box(self, box: QueryBox) -> None:
        if box.dim != self.dim:
            raise ValueError(f"query box has dim {box.dim}, tree has dim {self.dim}")

    def _buffer_mask(self, box: QueryBox) -> Optional[np.ndarray]:
        """Active-and-inside mask over the side buffer, or None if empty."""
        if self._buf_n == 0:
            return None
        mask = box.contains_points(self._buf_pts[: self._buf_n])
        mask &= self._buf_active[: self._buf_n]
        return mask

    def report(self, box: QueryBox) -> list:
        """All active point ids inside the box.

        Per-node hits are accumulated as id *arrays* and materialized with
        a single ``np.concatenate(...).tolist()`` at the end — one Python
        list conversion per query instead of one per visited node.
        """
        self._check_box(box)
        chunks: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.active == 0 or not box.intersects_bbox(node.lo, node.hi):
                continue
            if box.contains_bbox(node.lo, node.hi):
                chunks.append(self._active_ids_of(node))
            elif node.left is None:
                mask = box.contains_points(self._pts[node.start : node.end])
                mask &= self._active[node.start : node.end]
                chunks.append(self._ids_arr[node.start : node.end][mask])
            else:
                stack.append(node.left)
                stack.append(node.right)
        bmask = self._buffer_mask(box)
        if bmask is not None:
            chunks.append(self._buf_ids[: self._buf_n][bmask])
        if not chunks:
            return []
        return np.concatenate(chunks).tolist()

    def _active_ids_of(self, node: _KDNode) -> np.ndarray:
        """Object array of the active ids in a node's contiguous slice."""
        if node.active == node.end - node.start:
            return self._ids_arr[node.start : node.end]
        mask = self._active[node.start : node.end]
        return self._ids_arr[node.start : node.end][mask]

    def report_first(self, box: QueryBox):
        """One arbitrary active point id inside the box, or None."""
        self._check_box(box)
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.active == 0 or not box.intersects_bbox(node.lo, node.hi):
                continue
            if box.contains_bbox(node.lo, node.hi):
                return self._first_active_id(node)
            if node.left is None:
                mask = box.contains_points(self._pts[node.start : node.end])
                mask &= self._active[node.start : node.end]
                hits = np.nonzero(mask)[0]
                if hits.size:
                    return self._ids[node.start + int(hits[0])]
            else:
                stack.append(node.left)
                stack.append(node.right)
        bmask = self._buffer_mask(box)
        if bmask is not None:
            hits = np.flatnonzero(bmask)
            if hits.size:
                return self._buf_ids[int(hits[0])]
        return None

    def _first_active_id(self, node: _KDNode):
        while node.left is not None:
            node = node.left if node.left.active > 0 else node.right
        mask = self._active[node.start : node.end]
        off = int(np.nonzero(mask)[0][0])
        return self._ids[node.start + off]

    def report_groups(self, box: QueryBox) -> set:
        """All group keys with >= 1 active point in the box."""
        return {group_of(pid) for pid in self.report(box)}

    # ------------------------------------------------------------------
    # Multi-box batch kernels (one shared traversal for the whole batch)
    # ------------------------------------------------------------------
    def report_many(self, boxes: Sequence[QueryBox]) -> list[list]:
        """Per-box active id lists via one shared multi-box tree walk.

        Semantically ``[self.report(b) for b in boxes]``, but the tree is
        traversed once with the subset of boxes still *alive* at each
        node: the intersect/contain prunes for all alive boxes are one
        broadcast comparison instead of Q separate Python walks, boxes
        that fully contain a node's bbox take its active-id array
        wholesale, and the surviving boxes share a single ``(q, L, k)``
        containment pass per leaf.  This is the kernel behind the service
        cold path: a batch of deduplicated leaves hits every shard's tree
        in one call.
        """
        boxes = list(boxes)
        for box in boxes:
            self._check_box(box)
        q = len(boxes)
        if q == 0:
            return []
        batch = BoxBatch(boxes)
        chunks: list[list[np.ndarray]] = [[] for _ in range(q)]
        stack: list[tuple[_KDNode, np.ndarray]] = [(self._root, np.arange(q))]
        while stack:
            node, alive = stack.pop()
            if node.active == 0:
                continue
            alive = alive[batch.intersects_bbox(node.lo, node.hi, alive)]
            if alive.size == 0:
                continue
            full = batch.contains_bbox(node.lo, node.hi, alive)
            if full.any():
                ids_chunk = self._active_ids_of(node)
                for qi in alive[full]:
                    chunks[qi].append(ids_chunk)
                alive = alive[~full]
                if alive.size == 0:
                    continue
            size = node.end - node.start
            if node.left is None or alive.size * size <= MULTIBOX_BROADCAST_CUTOFF:
                # Leaf, or a subtree cheap enough that one broadcast pass
                # over its contiguous slice beats descending further.
                inside = batch.contains_points(
                    self._pts[node.start : node.end], alive
                )
                inside &= self._active[node.start : node.end][None, :]
                ids_arr = self._ids_arr[node.start : node.end]
                for row, qi in zip(inside, alive):
                    if row.any():
                        chunks[qi].append(ids_arr[row])
            else:
                stack.append((node.left, alive))
                stack.append((node.right, alive))
        if self._buf_n:
            inside = batch.contains_points(self._buf_pts[: self._buf_n])
            inside &= self._buf_active[: self._buf_n][None, :]
            buf_ids = self._buf_ids[: self._buf_n]
            for qi, row in enumerate(inside):
                if row.any():
                    chunks[qi].append(buf_ids[row])
        return [np.concatenate(c).tolist() if c else [] for c in chunks]

    def count_many(self, boxes: Sequence[QueryBox]) -> list[int]:
        """Per-box active point counts via the shared walk, counting from
        node counters and boolean masks — no id materialization."""
        boxes = list(boxes)
        for box in boxes:
            self._check_box(box)
        q = len(boxes)
        if q == 0:
            return []
        batch = BoxBatch(boxes)
        counts = np.zeros(q, dtype=np.int64)
        stack: list[tuple[_KDNode, np.ndarray]] = [(self._root, np.arange(q))]
        while stack:
            node, alive = stack.pop()
            if node.active == 0:
                continue
            alive = alive[batch.intersects_bbox(node.lo, node.hi, alive)]
            if alive.size == 0:
                continue
            full = batch.contains_bbox(node.lo, node.hi, alive)
            if full.any():
                counts[alive[full]] += node.active
                alive = alive[~full]
                if alive.size == 0:
                    continue
            size = node.end - node.start
            if node.left is None or alive.size * size <= MULTIBOX_BROADCAST_CUTOFF:
                inside = batch.contains_points(
                    self._pts[node.start : node.end], alive
                )
                inside &= self._active[node.start : node.end][None, :]
                counts[alive] += inside.sum(axis=1)
            else:
                stack.append((node.left, alive))
                stack.append((node.right, alive))
        if self._buf_n:
            inside = batch.contains_points(self._buf_pts[: self._buf_n])
            inside &= self._buf_active[: self._buf_n][None, :]
            counts += inside.sum(axis=1)
        return [int(c) for c in counts]

    def report_groups_many(self, boxes: Sequence[QueryBox]) -> list[set]:
        """Per-box group sets (derived from the shared walk)."""
        return [
            {group_of(pid) for pid in ids} for ids in self.report_many(boxes)
        ]

    def count(self, box: QueryBox) -> int:
        """Number of active points inside the box."""
        self._check_box(box)
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.active == 0 or not box.intersects_bbox(node.lo, node.hi):
                continue
            if box.contains_bbox(node.lo, node.hi):
                total += node.active
            elif node.left is None:
                mask = box.contains_points(self._pts[node.start : node.end])
                mask &= self._active[node.start : node.end]
                total += int(np.count_nonzero(mask))
            else:
                stack.append(node.left)
                stack.append(node.right)
        bmask = self._buffer_mask(box)
        if bmask is not None:
            total += int(np.count_nonzero(bmask))
        return total
