"""The 1-dimensional range tree: a sorted array with activation flags.

``SortedListIndex`` stores (value, id) pairs sorted by value and supports,
over the *active* subset:

- ``report(interval)``   — all ids with value in the interval,
- ``report_first(interval)`` — one arbitrary id (the paper's ``ReportFirst``),
- ``count(interval)``    — number of active ids in the interval,
- ``deactivate(id)`` / ``activate(id)`` — the delete/re-insert trick used by
  the query procedures of Algorithms 2 and 4.

All operations are ``O(log n)`` (plus output size for ``report``) thanks to
a Fenwick tree over activation flags.  This class doubles as the associated
structure at the last level of :class:`~repro.index.range_tree.RangeTree`
and as the per-direction score tree of the Pref index (Algorithm 5).
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.geometry.interval import Interval
from repro.index.fenwick import FenwickTree


class SortedListIndex:
    """Static sorted array over ``(value, id)`` pairs with O(log n) activation.

    Parameters
    ----------
    values:
        Sequence of floats.
    ids:
        Optional parallel sequence of hashable identifiers; defaults to the
        positional index.  Identifiers must be unique within one list.

    Examples
    --------
    >>> sl = SortedListIndex([0.3, 0.1, 0.9], ids=["a", "b", "c"])
    >>> sorted(sl.report(Interval(0.2, 1.0)))
    ['a', 'c']
    >>> sl.deactivate("c")
    >>> sl.report(Interval(0.2, 1.0))
    ['a']
    """

    def __init__(self, values: Sequence[float], ids: Optional[Iterable] = None) -> None:
        vals = np.asarray(list(values), dtype=float)
        id_list = list(ids) if ids is not None else list(range(len(vals)))
        if len(id_list) != len(vals):
            raise ValueError("values and ids must have equal length")
        order = np.argsort(vals, kind="stable")
        self._values = vals[order]
        self._ids = [id_list[i] for i in order]
        self._pos_of_id = {pid: pos for pos, pid in enumerate(self._ids)}
        if len(self._pos_of_id) != len(self._ids):
            raise ValueError("ids must be unique")
        self._active = FenwickTree.all_ones(len(self._ids))
        self._is_active = [True] * len(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def n_active(self) -> int:
        """Number of currently active entries."""
        return self._active.prefix_sum(len(self._ids))

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    def deactivate(self, entry_id) -> None:
        """Hide an entry from all queries (idempotent errors are raised)."""
        pos = self._pos_of_id[entry_id]
        if not self._is_active[pos]:
            raise KeyError(f"entry {entry_id!r} is already inactive")
        self._is_active[pos] = False
        self._active.add(pos, -1)

    def activate(self, entry_id) -> None:
        """Re-show a previously deactivated entry."""
        pos = self._pos_of_id[entry_id]
        if self._is_active[pos]:
            raise KeyError(f"entry {entry_id!r} is already active")
        self._is_active[pos] = True
        self._active.add(pos, +1)

    def is_active(self, entry_id) -> bool:
        """Whether the entry currently participates in queries."""
        return self._is_active[self._pos_of_id[entry_id]]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _index_range(self, interval: Interval) -> tuple[int, int]:
        """Half-open position range of values satisfying the interval."""
        if interval.lo_open:
            left = bisect.bisect_right(self._values, interval.lo)
        else:
            left = bisect.bisect_left(self._values, interval.lo)
        if interval.hi_open:
            right = bisect.bisect_left(self._values, interval.hi)
        else:
            right = bisect.bisect_right(self._values, interval.hi)
        return left, right

    def count(self, interval: Interval) -> int:
        """Number of active entries with value in the interval."""
        left, right = self._index_range(interval)
        return self._active.range_sum(left, right)

    def report(self, interval: Interval) -> list:
        """All active ids with value in the interval (ascending by value)."""
        left, right = self._index_range(interval)
        pos = left
        out = []
        while True:
            pos = self._active.find_first_positive(pos, right)
            if pos >= right:
                return out
            out.append(self._ids[pos])
            pos += 1

    def iter_report(self, interval: Interval):
        """Generator variant of :meth:`report` (constant-delay enumeration)."""
        left, right = self._index_range(interval)
        pos = left
        while True:
            pos = self._active.find_first_positive(pos, right)
            if pos >= right:
                return
            yield self._ids[pos]
            pos += 1

    def report_first(self, interval: Interval):
        """One arbitrary active id in the interval, or None — ``ReportFirst``."""
        left, right = self._index_range(interval)
        pos = self._active.find_first_positive(left, right)
        if pos >= right:
            return None
        return self._ids[pos]

    def values_of(self, entry_id) -> float:
        """The stored value of an entry (for tests and diagnostics)."""
        return float(self._values[self._pos_of_id[entry_id]])
