"""Fenwick (binary indexed) tree over integer counters.

Used as the activation bookkeeping inside the 1-dimensional level of the
range tree: each slot holds 0 (deactivated) or 1 (active), and the tree
answers prefix sums and "first active position at or after i" in
``O(log n)`` — exactly what ``ReportFirst`` (Section 2) needs after points
have been deleted mid-query.
"""

from __future__ import annotations


class FenwickTree:
    """A Fenwick tree over ``n`` non-negative integer counters.

    Examples
    --------
    >>> ft = FenwickTree.all_ones(4)
    >>> ft.prefix_sum(4)
    4
    >>> ft.add(1, -1)
    >>> ft.range_sum(0, 4), ft.find_first_positive(0, 4)
    (3, 0)
    >>> ft.add(0, -1)
    >>> ft.find_first_positive(0, 2)
    2
    """

    __slots__ = ("n", "_tree")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("size must be non-negative")
        self.n = n
        self._tree = [0] * (n + 1)

    @staticmethod
    def all_ones(n: int) -> "FenwickTree":
        """A tree initialized with every counter equal to one (all active)."""
        ft = FenwickTree(n)
        # O(n) bulk build: tree[i] aggregates the block ending at i.
        for i in range(1, n + 1):
            ft._tree[i] += 1
            j = i + (i & -i)
            if j <= n:
                ft._tree[j] += ft._tree[i]
        return ft

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to the counter at ``index`` (0-based)."""
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range [0, {self.n})")
        i = index + 1
        while i <= self.n:
            self._tree[i] += delta
            i += i & -i

    def prefix_sum(self, count: int) -> int:
        """Sum of the first ``count`` counters (indices ``0..count-1``)."""
        if count < 0 or count > self.n:
            raise IndexError(f"prefix length {count} out of range [0, {self.n}]")
        total = 0
        i = count
        while i > 0:
            total += self._tree[i]
            i -= i & -i
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of counters in the half-open index range ``[lo, hi)``."""
        if lo >= hi:
            return 0
        return self.prefix_sum(hi) - self.prefix_sum(lo)

    def find_first_positive(self, lo: int, hi: int) -> int:
        """Smallest index in ``[lo, hi)`` with a positive counter, else ``hi``.

        Runs in ``O(log n)`` via a descent over the implicit binary
        structure: find the smallest prefix whose sum exceeds
        ``prefix_sum(lo)``.
        """
        if lo >= hi:
            return hi
        target = self.prefix_sum(lo)  # we want the (target+1)-th positive slot
        if self.prefix_sum(hi) <= target:
            return hi
        # Standard Fenwick binary-lifting descent.
        pos = 0
        remaining = target
        bit = 1
        while (bit << 1) <= self.n:
            bit <<= 1
        while bit:
            nxt = pos + bit
            if nxt <= self.n and self._tree[nxt] <= remaining:
                pos = nxt
                remaining -= self._tree[nxt]
            bit >>= 1
        # pos = number of slots whose cumulative sum is <= target, i.e. the
        # 0-based index of the (target+1)-th positive counter.
        return pos
