"""Classic multi-level range tree over weighted points (Section 2).

The textbook construction [de Berg et al., Computational Geometry]: a
balanced binary tree over the first coordinate whose every node stores an
*associated structure* — a range tree over the remaining coordinates of the
points in the node's subtree; the last level is a
:class:`~repro.index.sorted_list.SortedListIndex`.  A ``k``-dimensional
query decomposes the first coordinate's range into ``O(log n)`` canonical
nodes and recurses into their associated structures.

Dynamics are provided by activation flags (the paper only ever deletes
points *temporarily* during a query and re-inserts them afterwards —
Algorithms 2 and 4 — which maps exactly to deactivate/activate).  A
deactivation updates the ``O(log^{k-1} n)`` associated structures on the
root-to-leaf path, each in ``O(log n)``, matching the
``O(log^{k} n)``-style update bounds quoted in Section 2.

Memory is ``Theta(n log^{k-1} n)``, which in pure Python is practical only
for small ``k``; the higher-dimensional mapped spaces of the Ptile indexes
default to :class:`~repro.index.kd_tree.DynamicKDTree` instead (see
``DESIGN.md``, substitution 2).  Both engines share the same protocol and
the test suite cross-checks them against each other.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import CapabilityError
from repro.geometry.interval import Interval
from repro.index.backend import group_of
from repro.index.query_box import QueryBox
from repro.index.sorted_list import SortedListIndex


class _Node:
    """A node of the primary tree: a contiguous slice of the sorted order."""

    __slots__ = ("lo", "hi", "left", "right", "assoc")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.assoc = None  # RangeTree over remaining dims, or SortedListIndex


class RangeTree:
    """A ``k``-dimensional range tree with activation-based dynamics.

    Parameters
    ----------
    points:
        ``(n, k)`` array.
    ids:
        Optional unique identifiers (default: positional indices).

    Examples
    --------
    >>> import numpy as np
    >>> rt = RangeTree(np.array([[0.0, 0.0], [1.0, 2.0], [2.0, 1.0]]))
    >>> sorted(rt.report(QueryBox.closed([0.5, 0.5], [2.5, 2.5])))
    [1, 2]
    """

    def __init__(self, points: np.ndarray, ids: Optional[Iterable] = None) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, k) array")
        self.dim = pts.shape[1]
        id_list = list(ids) if ids is not None else list(range(pts.shape[0]))
        if len(id_list) != pts.shape[0]:
            raise ValueError("points and ids must have equal length")
        order = np.argsort(pts[:, 0], kind="stable")
        self._keys = pts[order, 0]
        self._ids = [id_list[i] for i in order]
        self._pos_of_id = {pid: pos for pos, pid in enumerate(self._ids)}
        if len(self._pos_of_id) != len(self._ids):
            raise ValueError("ids must be unique")
        self._rest = pts[order, 1:]
        self._root = self._build(0, pts.shape[0])

    def _build(self, lo: int, hi: int) -> _Node:
        node = _Node(lo, hi)
        if self.dim == 1:
            node.assoc = SortedListIndex(self._keys[lo:hi], ids=self._ids[lo:hi])
        else:
            node.assoc = RangeTree(self._rest[lo:hi], ids=self._ids[lo:hi])
        if hi - lo > 1:
            mid = (lo + hi) // 2
            node.left = self._build(lo, mid)
            node.right = self._build(mid, hi)
        return node

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def n_active(self) -> int:
        """Number of points currently visible to queries.

        The root's associated structure covers every point, so its active
        count (recursively, the last-level Fenwick sum) is the answer.
        """
        return self._root.assoc.n_active

    @property
    def supports_insert(self) -> bool:
        """Static backend: the paper's queries only ever *temporarily*
        delete points, which maps to activation flags; true insertion
        would need rebuilding every associated structure."""
        return False

    def insert(self, points: np.ndarray, ids: Iterable) -> None:
        """Unsupported — the textbook range tree is static."""
        raise CapabilityError(
            "RangeTree is static; use the 'kd' or 'columnar' engine for "
            "dynamic insertion"
        )

    def remove(self, entry_id) -> None:
        """Unsupported — the textbook range tree is static."""
        raise CapabilityError(
            "RangeTree is static; use the 'kd' or 'columnar' engine for "
            "dynamic removal"
        )

    def export_points(self) -> tuple[np.ndarray, list, np.ndarray]:
        """Live contents as ``(points, ids, active)`` parallel arrays.

        Points come back in first-coordinate sort order.  The activity of
        each id is read from the last-level
        :class:`~repro.index.sorted_list.SortedListIndex` of the root's
        associated chain — it covers every point and is the structure
        ``_set_active`` always updates.
        """
        if self._rest.shape[1]:
            points = np.hstack([self._keys[:, None], self._rest])
        else:
            points = self._keys[:, None].copy()
        t: "RangeTree" = self
        while t.dim > 1:
            t = t._root.assoc
        sli: SortedListIndex = t._root.assoc
        active = np.array([sli.is_active(pid) for pid in self._ids], dtype=bool)
        return points, list(self._ids), active

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    def deactivate(self, entry_id) -> None:
        """Hide a point from all queries (O(polylog n))."""
        self._set_active(entry_id, active=False)

    def activate(self, entry_id) -> None:
        """Re-show a previously deactivated point."""
        self._set_active(entry_id, active=True)

    def _set_active(self, entry_id, active: bool) -> None:
        pos = self._pos_of_id[entry_id]
        node = self._root
        while node is not None:
            if isinstance(node.assoc, SortedListIndex):
                if active:
                    node.assoc.activate(entry_id)
                else:
                    node.assoc.deactivate(entry_id)
            else:
                node.assoc._set_active(entry_id, active)
            if node.left is None:
                break
            node = node.left if pos < node.left.hi else node.right

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _key_range(self, box: QueryBox) -> tuple[int, int]:
        lo, hi = box.lo[0], box.hi[0]
        if box.lo_open[0]:
            left = bisect.bisect_right(self._keys, lo)
        else:
            left = bisect.bisect_left(self._keys, lo)
        if box.hi_open[0]:
            right = bisect.bisect_left(self._keys, hi)
        else:
            right = bisect.bisect_right(self._keys, hi)
        return left, max(left, right)

    def _canonical(self, node: _Node, lo: int, hi: int, out: list) -> None:
        """Collect the O(log n) nodes exactly covering positions [lo, hi)."""
        if lo >= node.hi or hi <= node.lo:
            return
        if lo <= node.lo and node.hi <= hi:
            out.append(node)
            return
        if node.left is not None:
            self._canonical(node.left, lo, hi, out)
            self._canonical(node.right, lo, hi, out)

    def _sub_box(self, box: QueryBox) -> Optional[QueryBox]:
        if box.dim == 1:
            return None
        cons = [
            (float(box.lo[i]), float(box.hi[i]), bool(box.lo_open[i]), bool(box.hi_open[i]))
            for i in range(1, box.dim)
        ]
        return QueryBox(cons)

    def _last_interval(self, box: QueryBox) -> Interval:
        return Interval(
            float(box.lo[0]), float(box.hi[0]), bool(box.lo_open[0]), bool(box.hi_open[0])
        )

    def _check_box(self, box: QueryBox) -> None:
        if box.dim != self.dim:
            raise ValueError(f"query box has dim {box.dim}, tree has dim {self.dim}")

    def report(self, box: QueryBox) -> list:
        """All active point ids inside the box."""
        self._check_box(box)
        if self.dim == 1:
            return self._root.assoc.report(self._last_interval(box))
        left, right = self._key_range(box)
        nodes: list[_Node] = []
        self._canonical(self._root, left, right, nodes)
        sub = self._sub_box(box)
        out: list = []
        for node in nodes:
            out.extend(node.assoc.report(sub))
        return out

    def report_first(self, box: QueryBox):
        """One arbitrary active point id inside the box, or None."""
        self._check_box(box)
        if self.dim == 1:
            return self._root.assoc.report_first(self._last_interval(box))
        left, right = self._key_range(box)
        nodes: list[_Node] = []
        self._canonical(self._root, left, right, nodes)
        sub = self._sub_box(box)
        for node in nodes:
            found = node.assoc.report_first(sub)
            if found is not None:
                return found
        return None

    def report_groups(self, box: QueryBox) -> set:
        """All group keys with >= 1 active point in the box."""
        return {group_of(pid) for pid in self.report(box)}

    # ------------------------------------------------------------------
    # Multi-box batch kernels.  The multi-level decomposition offers no
    # cross-box sharing (each box selects its own canonical node set), so
    # the batch form is the straightforward per-box loop — the protocol
    # contract (``report_many ≡ [report(b) for b in boxes]``) is what the
    # callers rely on, not a speedup.
    # ------------------------------------------------------------------
    def report_many(self, boxes: Sequence[QueryBox]) -> list[list]:
        """Per-box active id lists (per-box loop; see class comment)."""
        return [self.report(box) for box in boxes]

    def count_many(self, boxes: Sequence[QueryBox]) -> list[int]:
        """Per-box active point counts."""
        return [self.count(box) for box in boxes]

    def report_groups_many(self, boxes: Sequence[QueryBox]) -> list[set]:
        """Per-box group sets."""
        return [self.report_groups(box) for box in boxes]

    def count(self, box: QueryBox) -> int:
        """Number of active points inside the box."""
        self._check_box(box)
        if self.dim == 1:
            return self._root.assoc.count(self._last_interval(box))
        left, right = self._key_range(box)
        nodes: list[_Node] = []
        self._canonical(self._root, left, right, nodes)
        sub = self._sub_box(box)
        return sum(node.assoc.count(sub) for node in nodes)
