"""The pluggable range-search backend contract and registry.

Every Ptile query (Theorems 4.11/5.4) bottoms out in mapped-space orthant
reporting, so the engine behind it is a first-class substitution point.
This module formalizes the seam that used to be an ad-hoc string dispatch:

- :class:`RangeSearchBackend` — the structural protocol every engine
  implements: ``report`` / ``report_first`` / ``report_groups`` /
  ``count`` over *active* points, ``activate``/``deactivate`` toggles (the
  temporary deletions of Algorithms 2 and 4), and ``insert``/``remove``
  dynamics (static backends advertise ``supports_insert = False`` and
  raise :class:`~repro.errors.CapabilityError`).
- :func:`build_backend` — the registry: ``"kd"`` (dynamic kd-tree,
  default), ``"rangetree"`` (textbook multi-level range tree, static,
  small scale only), ``"columnar"`` (vectorized columnar scan store,
  dynamic, fastest at service scale).

Entry ids follow one convention across the codebase: a mapped point of
dataset ``key`` carries id ``(key, local)``, so the *group* of an entry is
its first tuple element (:func:`group_of`).  ``report_groups(box)`` returns
the set of groups with at least one active point in the box — exactly the
answer set of the paper's ReportFirst-and-delete loop, computed in one
pass.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import ConstructionError
from repro.index.query_box import QueryBox


def object_array(items: list) -> np.ndarray:
    """A 1-d object array that keeps tuple elements intact.

    ``np.array`` would try to broadcast a list of equal-length tuples into
    a 2-d array; element-wise assignment is the one reliable construction.
    """
    out = np.empty(len(items), dtype=object)
    for i, item in enumerate(items):
        out[i] = item
    return out


def group_of(entry_id):
    """The dataset/group key of an entry id.

    Mapped points are registered with ``(key, local)`` tuple ids; plain
    (non-tuple) ids are their own group.

    Examples
    --------
    >>> group_of((3, 17)), group_of("solo")
    (3, 'solo')
    """
    return entry_id[0] if isinstance(entry_id, tuple) else entry_id


@runtime_checkable
class RangeSearchBackend(Protocol):
    """Structural contract of a mapped-space range-search engine.

    All query methods see only *active* points.  ``insert``/``remove`` are
    the dynamic-synopsis operations (Remark 1); a static backend keeps the
    methods but raises :class:`~repro.errors.CapabilityError` and reports
    ``supports_insert = False`` so callers can refuse up front.
    """

    dim: int

    def __len__(self) -> int:
        """Total stored points (active or not)."""
        ...

    @property
    def n_active(self) -> int:
        """Number of points currently visible to queries."""
        ...

    @property
    def supports_insert(self) -> bool:
        """Whether ``insert``/``remove`` are usable on this backend."""
        ...

    def report(self, box: QueryBox) -> list:
        """All active point ids inside the box."""
        ...

    def report_first(self, box: QueryBox):
        """One arbitrary active point id inside the box, or None."""
        ...

    def report_groups(self, box: QueryBox) -> set:
        """All groups (``group_of`` of the ids) with >= 1 active point in
        the box — the bulk form of the ReportFirst/deactivate loop."""
        ...

    def count(self, box: QueryBox) -> int:
        """Number of active points inside the box."""
        ...

    def report_many(self, boxes: Sequence[QueryBox]) -> list[list]:
        """Per-box active id lists for a batch of boxes (one per box).

        The batch kernel of the cold path: semantically identical to
        ``[self.report(b) for b in boxes]`` (the equivalence suite asserts
        it), but free to share work across boxes — one broadcast
        containment pass on the columnar store, a single multi-box tree
        walk on the kd-tree.  Backends may omit the ``*_many`` methods
        entirely; callers go through :func:`report_many_of` /
        :func:`count_many_of` / :func:`report_groups_many_of`, which fall
        back to the per-box loop with identical results.
        """
        ...

    def count_many(self, boxes: Sequence[QueryBox]) -> list[int]:
        """Per-box active point counts (``[self.count(b) for b in boxes]``)."""
        ...

    def report_groups_many(self, boxes: Sequence[QueryBox]) -> list[set]:
        """Per-box group sets (``[self.report_groups(b) for b in boxes]``)."""
        ...

    def deactivate(self, entry_id) -> None:
        """Hide a point from queries."""
        ...

    def activate(self, entry_id) -> None:
        """Re-show a previously deactivated point."""
        ...

    def insert(self, points: np.ndarray, ids: Iterable) -> None:
        """Add new points (dynamic backends only)."""
        ...

    def export_points(self) -> tuple[np.ndarray, list, np.ndarray]:
        """Snapshot the live contents: ``(points, ids, active)``.

        Returns the non-removed entries as an ``(m, dim)`` float array, a
        parallel id list, and a parallel bool activity mask.  Removed
        (tombstoned) entries are excluded entirely; the export order is
        backend-defined but must be self-consistent across the three
        returns.  This is the persistence seam: a backend rebuilt from its
        own export answers every query identically (set-equal reports,
        equal counts).
        """
        ...

    def remove(self, entry_id) -> None:
        """Permanently remove a point (dynamic backends only).

        Works on active and deactivated points alike; removing an unknown
        or already-removed id raises ``KeyError``.  After a remove, when
        the id becomes reusable for ``insert`` is backend-dependent
        (immediately on the columnar store, only after the next amortized
        rebuild on the kd-tree) — portable callers use fresh ids, as the
        Ptile structures' monotonically increasing keys do.
        """
        ...


#: Registered backend names, in documentation order.
ENGINES = ("kd", "rangetree", "columnar")

#: Backends whose ``insert``/``remove`` work (live mutation, delta shards).
DYNAMIC_ENGINES = ("kd", "columnar")


def build_backend(
    points: np.ndarray, ids: list, engine: str = "kd", leaf_size: int = 16
) -> RangeSearchBackend:
    """Instantiate a registered backend over ``(n, k)`` mapped points.

    Examples
    --------
    >>> import numpy as np
    >>> pts = np.array([[0.0, 1.0], [2.0, 3.0]])
    >>> for name in ENGINES:
    ...     eng = build_backend(pts, [("a", 0), ("b", 0)], name)
    ...     assert eng.report_groups(QueryBox.closed([-1, 0], [3, 4])) == {"a", "b"}
    """
    # Local imports: the implementations import QueryBox from this package,
    # and the registry must stay importable from any of them.
    if engine == "kd":
        from repro.index.kd_tree import DynamicKDTree

        return DynamicKDTree(points, ids=ids, leaf_size=leaf_size)
    if engine == "rangetree":
        from repro.index.range_tree import RangeTree

        return RangeTree(points, ids=ids)
    if engine == "columnar":
        from repro.index.columnar import ColumnarStore

        return ColumnarStore(points, ids=ids)
    raise ConstructionError(f"unknown engine {engine!r}; choose from {ENGINES}")


def report_many_of(backend, boxes: Sequence[QueryBox]) -> list[list]:
    """``backend.report_many`` with a per-box fallback.

    All registered engines implement the batch kernels; a third-party
    backend that opts out (no ``report_many`` attribute) is served by the
    equivalent per-box loop — identical results either way.
    """
    fn = getattr(backend, "report_many", None)
    if fn is not None:
        return fn(boxes)
    return [backend.report(box) for box in boxes]


def count_many_of(backend, boxes: Sequence[QueryBox]) -> list[int]:
    """``backend.count_many`` with a per-box fallback."""
    fn = getattr(backend, "count_many", None)
    if fn is not None:
        return fn(boxes)
    return [backend.count(box) for box in boxes]


def report_groups_many_of(backend, boxes: Sequence[QueryBox]) -> list[set]:
    """``backend.report_groups_many`` with a per-box fallback."""
    fn = getattr(backend, "report_groups_many", None)
    if fn is not None:
        return fn(boxes)
    return [backend.report_groups(box) for box in boxes]


def check_engine(engine: str) -> str:
    """Validate a backend name early (construction-time, not first query)."""
    if engine not in ENGINES:
        raise ConstructionError(
            f"unknown engine {engine!r}; choose from {ENGINES}"
        )
    return engine
