"""Axis-parallel query boxes with per-side open/closed bounds.

The orthant of Algorithm 4 mixes closed constraints (``[R-_h, inf)``) with
*strict* ones (``(-inf, R-_h)``), so the range-searching substrate must
distinguish open and closed endpoints exactly — floating-point "nudging" is
not acceptable in a correctness-first reproduction.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


class QueryBox:
    """A product of per-dimension intervals, each side open or closed.

    Parameters
    ----------
    constraints:
        Sequence of ``(lo, hi, lo_open, hi_open)`` tuples, one per dimension
        of the indexed point set.  Use ``-math.inf`` / ``math.inf`` for
        unbounded sides.

    Examples
    --------
    >>> box = QueryBox([(0.0, 1.0, False, True)])   # [0, 1)
    >>> box.contains_point([0.0]), box.contains_point([1.0])
    (True, False)
    """

    __slots__ = ("lo", "hi", "lo_open", "hi_open", "dim")

    def __init__(self, constraints: Sequence[tuple[float, float, bool, bool]]) -> None:
        if len(constraints) == 0:
            raise ValueError("query box needs at least one dimension")
        self.lo = np.array([c[0] for c in constraints], dtype=float)
        self.hi = np.array([c[1] for c in constraints], dtype=float)
        self.lo_open = np.array([bool(c[2]) for c in constraints])
        self.hi_open = np.array([bool(c[3]) for c in constraints])
        self.dim = len(constraints)
        if np.any(np.isnan(self.lo)) or np.any(np.isnan(self.hi)):
            raise ValueError("query box bounds must not be NaN")

    @staticmethod
    def closed(lo: Sequence[float], hi: Sequence[float]) -> "QueryBox":
        """A fully closed box ``[lo_1, hi_1] x ... x [lo_k, hi_k]``."""
        return QueryBox([(float(a), float(b), False, False) for a, b in zip(lo, hi)])

    @staticmethod
    def unbounded(dim: int) -> "QueryBox":
        """The whole space (useful for weight-only filters)."""
        return QueryBox([(-math.inf, math.inf, False, False)] * dim)

    def with_dimension(
        self, axis: int, lo: float, hi: float, lo_open: bool = False, hi_open: bool = False
    ) -> "QueryBox":
        """A copy with one dimension's constraint replaced."""
        cons = [
            (float(self.lo[i]), float(self.hi[i]), bool(self.lo_open[i]), bool(self.hi_open[i]))
            for i in range(self.dim)
        ]
        cons[axis] = (lo, hi, lo_open, hi_open)
        return QueryBox(cons)

    # ------------------------------------------------------------------
    # Point tests
    # ------------------------------------------------------------------
    def contains_point(self, point: Sequence[float]) -> bool:
        """Whether a single point satisfies every constraint."""
        p = np.asarray(point, dtype=float)
        ok_lo = np.where(self.lo_open, p > self.lo, p >= self.lo)
        ok_hi = np.where(self.hi_open, p < self.hi, p <= self.hi)
        return bool(np.all(ok_lo) and np.all(ok_hi))

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorized membership for an ``(n, k)`` array of points."""
        pts = np.asarray(points, dtype=float)
        ok_lo = np.where(self.lo_open, pts > self.lo, pts >= self.lo)
        ok_hi = np.where(self.hi_open, pts < self.hi, pts <= self.hi)
        return np.all(ok_lo & ok_hi, axis=1)

    # ------------------------------------------------------------------
    # Bounding-box tests (used by tree traversals for pruning)
    # ------------------------------------------------------------------
    def intersects_bbox(self, blo: np.ndarray, bhi: np.ndarray) -> bool:
        """Whether some point of the closed bbox ``[blo, bhi]`` may qualify."""
        ok_lo = np.where(self.lo_open, bhi > self.lo, bhi >= self.lo)
        ok_hi = np.where(self.hi_open, blo < self.hi, blo <= self.hi)
        return bool(np.all(ok_lo) and np.all(ok_hi))

    def contains_bbox(self, blo: np.ndarray, bhi: np.ndarray) -> bool:
        """Whether *every* point of the closed bbox ``[blo, bhi]`` qualifies."""
        ok_lo = np.where(self.lo_open, blo > self.lo, blo >= self.lo)
        ok_hi = np.where(self.hi_open, bhi < self.hi, bhi <= self.hi)
        return bool(np.all(ok_lo) and np.all(ok_hi))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for i in range(self.dim):
            left = "(" if self.lo_open[i] else "["
            right = ")" if self.hi_open[i] else "]"
            parts.append(f"{left}{self.lo[i]:g}, {self.hi[i]:g}{right}")
        return "QueryBox(" + " x ".join(parts) + ")"
