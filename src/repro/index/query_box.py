"""Axis-parallel query boxes with per-side open/closed bounds.

The orthant of Algorithm 4 mixes closed constraints (``[R-_h, inf)``) with
*strict* ones (``(-inf, R-_h)``), so the range-searching substrate must
distinguish open and closed endpoints exactly — floating-point "nudging" is
not acceptable in a correctness-first reproduction.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


class QueryBox:
    """A product of per-dimension intervals, each side open or closed.

    Parameters
    ----------
    constraints:
        Sequence of ``(lo, hi, lo_open, hi_open)`` tuples, one per dimension
        of the indexed point set.  Use ``-math.inf`` / ``math.inf`` for
        unbounded sides.

    Examples
    --------
    >>> box = QueryBox([(0.0, 1.0, False, True)])   # [0, 1)
    >>> box.contains_point([0.0]), box.contains_point([1.0])
    (True, False)
    """

    __slots__ = ("lo", "hi", "lo_open", "hi_open", "dim")

    def __init__(self, constraints: Sequence[tuple[float, float, bool, bool]]) -> None:
        if len(constraints) == 0:
            raise ValueError("query box needs at least one dimension")
        self.lo = np.array([c[0] for c in constraints], dtype=float)
        self.hi = np.array([c[1] for c in constraints], dtype=float)
        self.lo_open = np.array([bool(c[2]) for c in constraints])
        self.hi_open = np.array([bool(c[3]) for c in constraints])
        self.dim = len(constraints)
        if np.any(np.isnan(self.lo)) or np.any(np.isnan(self.hi)):
            raise ValueError("query box bounds must not be NaN")

    @staticmethod
    def closed(lo: Sequence[float], hi: Sequence[float]) -> "QueryBox":
        """A fully closed box ``[lo_1, hi_1] x ... x [lo_k, hi_k]``."""
        return QueryBox([(float(a), float(b), False, False) for a, b in zip(lo, hi)])

    @staticmethod
    def unbounded(dim: int) -> "QueryBox":
        """The whole space (useful for weight-only filters)."""
        return QueryBox([(-math.inf, math.inf, False, False)] * dim)

    def with_dimension(
        self, axis: int, lo: float, hi: float, lo_open: bool = False, hi_open: bool = False
    ) -> "QueryBox":
        """A copy with one dimension's constraint replaced."""
        cons = [
            (float(self.lo[i]), float(self.hi[i]), bool(self.lo_open[i]), bool(self.hi_open[i]))
            for i in range(self.dim)
        ]
        cons[axis] = (lo, hi, lo_open, hi_open)
        return QueryBox(cons)

    # ------------------------------------------------------------------
    # Point tests
    # ------------------------------------------------------------------
    def contains_point(self, point: Sequence[float]) -> bool:
        """Whether a single point satisfies every constraint."""
        p = np.asarray(point, dtype=float)
        ok_lo = np.where(self.lo_open, p > self.lo, p >= self.lo)
        ok_hi = np.where(self.hi_open, p < self.hi, p <= self.hi)
        return bool(np.all(ok_lo) and np.all(ok_hi))

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorized membership for an ``(n, k)`` array of points."""
        pts = np.asarray(points, dtype=float)
        ok_lo = np.where(self.lo_open, pts > self.lo, pts >= self.lo)
        ok_hi = np.where(self.hi_open, pts < self.hi, pts <= self.hi)
        return np.all(ok_lo & ok_hi, axis=1)

    # ------------------------------------------------------------------
    # Bounding-box tests (used by tree traversals for pruning)
    # ------------------------------------------------------------------
    def intersects_bbox(self, blo: np.ndarray, bhi: np.ndarray) -> bool:
        """Whether some point of the closed bbox ``[blo, bhi]`` may qualify."""
        ok_lo = np.where(self.lo_open, bhi > self.lo, bhi >= self.lo)
        ok_hi = np.where(self.hi_open, blo < self.hi, blo <= self.hi)
        return bool(np.all(ok_lo) and np.all(ok_hi))

    def contains_bbox(self, blo: np.ndarray, bhi: np.ndarray) -> bool:
        """Whether *every* point of the closed bbox ``[blo, bhi]`` qualifies."""
        ok_lo = np.where(self.lo_open, blo > self.lo, blo >= self.lo)
        ok_hi = np.where(self.hi_open, bhi < self.hi, bhi <= self.hi)
        return bool(np.all(ok_lo) and np.all(ok_hi))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for i in range(self.dim):
            left = "(" if self.lo_open[i] else "["
            right = ")" if self.hi_open[i] else "]"
            parts.append(f"{left}{self.lo[i]:g}, {self.hi[i]:g}{right}")
        return "QueryBox(" + " x ".join(parts) + ")"


class BoxBatch:
    """A stack of ``Q`` same-dimension boxes for broadcast containment.

    The single source of truth for open/closed endpoint semantics in the
    multi-box batch kernels: every method below is the vectorized twin of
    the corresponding :class:`QueryBox` predicate, lifted to a ``(Q, k)``
    constraint stack, so a semantic change to box containment has exactly
    two homes (scalar here, batched there) instead of one copy per
    backend.  The optional ``rows`` argument restricts a call to a subset
    of boxes (an int index array) — the shared kd traversal narrows its
    alive set this way without re-stacking constraints.

    Examples
    --------
    >>> batch = BoxBatch([QueryBox([(0.0, 1.0, False, True)]),
    ...                   QueryBox([(0.5, 2.0, True, False)])])
    >>> batch.contains_points(np.array([[1.0], [0.6]])).tolist()
    [[False, True], [True, True]]
    """

    __slots__ = ("lo", "hi", "lo_open", "hi_open", "dim", "n_boxes")

    def __init__(self, boxes: Sequence[QueryBox]) -> None:
        boxes = list(boxes)
        if not boxes:
            raise ValueError("box batch needs at least one box")
        dims = {box.dim for box in boxes}
        if len(dims) != 1:
            raise ValueError("all boxes in a batch must share a dimension")
        self.dim = dims.pop()
        self.n_boxes = len(boxes)
        self.lo = np.stack([box.lo for box in boxes])
        self.hi = np.stack([box.hi for box in boxes])
        self.lo_open = np.stack([box.lo_open for box in boxes])
        self.hi_open = np.stack([box.hi_open for box in boxes])

    def _rows(self, rows):
        if rows is None:
            return self.lo, self.hi, self.lo_open, self.hi_open
        return self.lo[rows], self.hi[rows], self.lo_open[rows], self.hi_open[rows]

    def contains_points(self, points: np.ndarray, rows=None) -> np.ndarray:
        """``(Q', n)`` membership matrix for an ``(n, k)`` point array."""
        lo, hi, lo_open, hi_open = self._rows(rows)
        pts = np.asarray(points, dtype=float)[None, :, :]
        lo, hi = lo[:, None, :], hi[:, None, :]
        ok = np.where(lo_open[:, None, :], pts > lo, pts >= lo)
        ok &= np.where(hi_open[:, None, :], pts < hi, pts <= hi)
        return ok.all(axis=2)

    def intersects_bbox(self, blo: np.ndarray, bhi: np.ndarray, rows=None) -> np.ndarray:
        """``(Q',)`` mask: which boxes may contain a point of ``[blo, bhi]``."""
        lo, hi, lo_open, hi_open = self._rows(rows)
        ok = np.where(lo_open, bhi > lo, bhi >= lo)
        ok &= np.where(hi_open, blo < hi, blo <= hi)
        return ok.all(axis=1)

    def contains_bbox(self, blo: np.ndarray, bhi: np.ndarray, rows=None) -> np.ndarray:
        """``(Q',)`` mask: which boxes contain *every* point of ``[blo, bhi]``."""
        lo, hi, lo_open, hi_open = self._rows(rows)
        ok = np.where(lo_open, blo > lo, blo >= lo)
        ok &= np.where(hi_open, bhi < hi, bhi <= hi)
        return ok.all(axis=1)
