"""Vectorized columnar range-search backend.

The kd-tree and range-tree engines pay Python-interpreter cost per visited
node; at the mapped-point counts the Ptile structures actually produce
(thousands to hundreds of thousands of points in ``R^{2d+1}`` /
``R^{4d+2}``), a single NumPy comparison over a contiguous ``(n, k)``
matrix beats any pure-Python tree walk by a wide margin.  ``ColumnarStore``
leans into that trade:

- points live in one contiguous float matrix, with a boolean *active* mask
  alongside (activation toggles are O(1) flag flips);
- every query is one vectorized ``QueryBox.contains_points`` pass over the
  matrix — O(n k) work but at memory bandwidth, not interpreter speed;
- ``report_groups`` additionally stores a per-row *group code* (dataset
  key, dictionary-encoded to int64), so "all datasets with >= 1 active
  point in the box" is a single boolean mask plus ``np.unique`` group-by —
  the bulk operation that collapses the paper's sequential
  ReportFirst/deactivate loop (Algorithms 2 and 4) into one pass;
- ``insert`` appends into amortized-doubling capacity arrays; ``remove``
  tombstones a row and compacts when tombstones exceed a quarter of the
  store — the same amortized-rebuilding budget the kd-tree uses.

The contract is :class:`~repro.index.backend.RangeSearchBackend`; the
cross-backend equivalence suite (``tests/index/test_backend_equivalence``)
checks this store against both trees on random orthant/activation
sequences.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.index.backend import group_of, object_array
from repro.index.query_box import BoxBatch, QueryBox

#: Compact the store when dead (removed) rows exceed this fraction...
COMPACT_FRACTION = 0.25
#: ... but never for fewer dead rows than this.
MIN_DEAD_FOR_COMPACT = 64

#: Cap on the ``(chunk_q, n, k)`` broadcast workspace of the multi-box
#: kernels, in elements; batches larger than this evaluate in box chunks.
BATCH_BROADCAST_BUDGET = 4_000_000


class ColumnarStore:
    """Contiguous ``(n, k)`` point matrix with vectorized orthant queries.

    Parameters
    ----------
    points:
        ``(n, k)`` float array.
    ids:
        Optional unique hashable identifiers (default: positions).
        ``(key, local)`` tuples group by ``key`` in :meth:`report_groups`.

    Examples
    --------
    >>> import numpy as np
    >>> store = ColumnarStore(np.array([[0.0], [1.0], [2.0]]))
    >>> store.report(QueryBox.closed([0.5], [2.5]))
    [1, 2]
    >>> store.deactivate(1)
    >>> store.report(QueryBox.closed([0.5], [2.5]))
    [2]
    """

    def __init__(self, points: np.ndarray, ids: Optional[Iterable] = None) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, k) array")
        self.dim = int(pts.shape[1])
        id_list = list(ids) if ids is not None else list(range(pts.shape[0]))
        if len(id_list) != pts.shape[0]:
            raise ValueError("points and ids must have equal length")
        n = pts.shape[0]
        self._pts = pts.copy()
        self._lazy_ids_i64: Optional[np.ndarray] = None
        self._ids_store: Optional[np.ndarray] = None
        self._pos_store: Optional[dict] = None
        self._ids = object_array(id_list)
        self._active = np.ones(n, dtype=bool)
        self._dead = np.zeros(n, dtype=bool)
        self._n = n
        self._n_active_count = n
        self._n_dead = 0
        self._pos_of_id = {pid: pos for pos, pid in enumerate(id_list)}
        if len(self._pos_of_id) != n:
            raise ValueError("ids must be unique")
        self._group_code: dict = {}
        self._group_keys: list = []
        self._groups = np.empty(n, dtype=np.int64)
        for pos, pid in enumerate(id_list):
            self._groups[pos] = self._code_for(group_of(pid))

    @classmethod
    def _from_snapshot(
        cls, pts: np.ndarray, ids_i64: np.ndarray, active: np.ndarray
    ) -> "ColumnarStore":
        """Rebuild a store from snapshot arrays without copying the points.

        ``pts`` may be a read-only ``np.memmap`` view and is adopted as-is:
        the query path only reads it, and every mutation (``insert`` at
        full capacity, ``_compact``) copies before writing.  Ids arrive as
        an ``(n, 2)`` int64 matrix of ``(key, local)`` rows and stay in
        that form until a caller actually needs tuple ids or the
        ``_pos_of_id`` reverse map — the group-by warm path
        (``report_groups`` / ``count`` and their batch kernels) never
        does, so a loaded store serves it with zero per-point Python work.
        """
        pts = np.asarray(pts)
        n = int(pts.shape[0])
        if ids_i64.shape != (n, 2) or active.shape != (n,):
            raise ValueError("snapshot arrays disagree on point count")
        store = cls.__new__(cls)
        store.dim = int(pts.shape[1])
        store._pts = pts
        store._lazy_ids_i64 = np.asarray(ids_i64, dtype=np.int64)
        store._ids_store = None
        store._pos_store = None
        # Activity is the one flag queries toggle in place (deactivate /
        # activate, the paper's temporary deletions) — private copy.
        store._active = np.array(active, dtype=bool)
        store._dead = np.zeros(n, dtype=bool)
        store._n = n
        store._n_active_count = int(np.count_nonzero(store._active))
        store._n_dead = 0
        codes, groups = np.unique(store._lazy_ids_i64[:, 0], return_inverse=True)
        store._group_keys = [int(k) for k in codes]
        store._group_code = {k: c for c, k in enumerate(store._group_keys)}
        store._groups = groups.astype(np.int64, copy=False)
        return store

    def _materialize_ids(self) -> None:
        src = self._lazy_ids_i64
        assert src is not None, "only snapshot-loaded stores defer ids"
        id_list = [(int(a), int(b)) for a, b in src.tolist()]
        self._ids_store = object_array(id_list)
        self._pos_store = {pid: pos for pos, pid in enumerate(id_list)}

    @property
    def _ids(self) -> np.ndarray:
        if self._ids_store is None:
            self._materialize_ids()
        assert self._ids_store is not None
        return self._ids_store

    @_ids.setter
    def _ids(self, value: np.ndarray) -> None:
        self._ids_store = value

    @property
    def _pos_of_id(self) -> dict:
        if self._pos_store is None:
            self._materialize_ids()
        assert self._pos_store is not None
        return self._pos_store

    @_pos_of_id.setter
    def _pos_of_id(self, value: dict) -> None:
        self._pos_store = value

    def export_points(self) -> tuple[np.ndarray, list, np.ndarray]:
        """Live contents as ``(points, ids, active)`` parallel arrays."""
        n = self._n
        keep = ~self._dead[:n]
        return (
            self._pts[:n][keep].copy(),
            list(self._ids[:n][keep]),
            self._active[:n][keep].copy(),
        )

    def _code_for(self, key) -> int:
        code = self._group_code.get(key)
        if code is None:
            code = len(self._group_keys)
            self._group_code[key] = code
            self._group_keys.append(key)
        return code

    def __len__(self) -> int:
        return self._n - self._n_dead

    @property
    def n_active(self) -> int:
        """Number of points currently visible to queries."""
        return self._n_active_count

    @property
    def supports_insert(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Activation and dynamics
    # ------------------------------------------------------------------
    def deactivate(self, entry_id) -> None:
        """Hide a point from queries in O(1)."""
        pos = self._pos_of_id.get(entry_id)
        if pos is None:
            raise KeyError(f"unknown entry {entry_id!r}")
        if not self._active[pos]:
            raise KeyError(f"entry {entry_id!r} is already inactive")
        self._active[pos] = False
        self._n_active_count -= 1

    def activate(self, entry_id) -> None:
        """Re-show a previously deactivated point in O(1)."""
        pos = self._pos_of_id.get(entry_id)
        if pos is None:
            raise KeyError(f"unknown entry {entry_id!r}")
        if self._active[pos]:
            raise KeyError(f"entry {entry_id!r} is already active")
        self._active[pos] = True
        self._n_active_count += 1

    def insert(self, points: np.ndarray, ids: Iterable) -> None:
        """Append new points in amortized O(1) per point."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        id_list = list(ids)
        if pts.shape[0] != len(id_list):
            raise ValueError("points and ids must have equal length")
        if pts.shape[1] != self.dim:
            raise ValueError("dimension mismatch")
        for pid in id_list:
            if pid in self._pos_of_id:
                raise KeyError(f"duplicate entry id {pid!r}")
        need = self._n + len(id_list)
        if need > self._pts.shape[0]:
            cap = max(need, 2 * self._pts.shape[0])
            self._pts = np.resize(self._pts, (cap, self.dim))
            self._ids = np.resize(self._ids, cap)
            # np.resize repeats data to fill; re-blank the flag tails.
            active = np.zeros(cap, dtype=bool)
            active[: self._n] = self._active[: self._n]
            self._active = active
            dead = np.zeros(cap, dtype=bool)
            dead[: self._n] = self._dead[: self._n]
            self._dead = dead
            self._groups = np.resize(self._groups, cap)
        for row, pid in zip(pts, id_list):
            pos = self._n
            self._pts[pos] = row
            self._ids[pos] = pid
            self._active[pos] = True
            self._dead[pos] = False
            self._groups[pos] = self._code_for(group_of(pid))
            self._pos_of_id[pid] = pos
            self._n += 1
            self._n_active_count += 1

    def remove(self, entry_id) -> None:
        """Permanently remove a point (tombstone + amortized compaction)."""
        pos = self._pos_of_id.pop(entry_id, None)
        if pos is None:
            raise KeyError(f"unknown entry {entry_id!r}")
        if self._active[pos]:
            self._active[pos] = False
            self._n_active_count -= 1
        self._dead[pos] = True
        self._n_dead += 1
        if self._n_dead >= max(
            MIN_DEAD_FOR_COMPACT, int(COMPACT_FRACTION * self._n)
        ):
            self._compact()

    def _compact(self) -> None:
        keep = ~self._dead[: self._n]
        self._pts = self._pts[: self._n][keep].copy()
        self._ids = self._ids[: self._n][keep].copy()
        self._active = self._active[: self._n][keep].copy()
        self._groups = self._groups[: self._n][keep].copy()
        self._n = int(self._pts.shape[0])
        self._dead = np.zeros(self._n, dtype=bool)
        self._n_dead = 0
        self._pos_of_id = {pid: pos for pos, pid in enumerate(self._ids)}

    # ------------------------------------------------------------------
    # Queries (one vectorized pass each)
    # ------------------------------------------------------------------
    def _check_box(self, box: QueryBox) -> None:
        if box.dim != self.dim:
            raise ValueError(
                f"query box has dim {box.dim}, store has dim {self.dim}"
            )

    def _match_mask(self, box: QueryBox) -> np.ndarray:
        """Boolean row mask: active and inside the box.

        Dead (removed) rows need no extra filter here: ``remove`` always
        forces ``_active`` False and pops ``_pos_of_id``, so a tombstoned
        row can never be re-activated.
        """
        n = self._n
        mask = box.contains_points(self._pts[:n])
        mask &= self._active[:n]
        return mask

    def report(self, box: QueryBox) -> list:
        """All active point ids inside the box."""
        self._check_box(box)
        return self._ids[: self._n][self._match_mask(box)].tolist()

    def report_first(self, box: QueryBox):
        """One arbitrary active point id inside the box, or None."""
        self._check_box(box)
        hits = np.flatnonzero(self._match_mask(box))
        if hits.size == 0:
            return None
        return self._ids[int(hits[0])]

    def report_groups(self, box: QueryBox) -> set:
        """All group keys with >= 1 active point in the box (one group-by)."""
        self._check_box(box)
        codes = np.unique(self._groups[: self._n][self._match_mask(box)])
        return {self._group_keys[int(c)] for c in codes}

    def count(self, box: QueryBox) -> int:
        """Number of active points inside the box."""
        self._check_box(box)
        return int(np.count_nonzero(self._match_mask(box)))

    # ------------------------------------------------------------------
    # Multi-box batch kernels (one broadcast pass, chunked by budget)
    # ------------------------------------------------------------------
    def _match_matrix(self, boxes: Sequence[QueryBox]) -> np.ndarray:
        """``(Q, n)`` boolean matrix: active rows inside each box.

        One ``(chunk_q, n, k)`` broadcast containment pass per chunk — the
        multi-box generalization of :meth:`_match_mask`, amortizing the
        per-query NumPy dispatch overhead across the whole batch.  The
        open/closed endpoint semantics live in
        :class:`~repro.index.query_box.BoxBatch`, not here.
        """
        for box in boxes:
            self._check_box(box)
        n = self._n
        q = len(boxes)
        batch = BoxBatch(boxes)
        pts = self._pts[:n]
        out = np.empty((q, n), dtype=bool)
        chunk = max(1, BATCH_BROADCAST_BUDGET // max(1, n * self.dim))
        for s in range(0, q, chunk):
            out[s : s + chunk] = batch.contains_points(
                pts, np.arange(s, min(q, s + chunk))
            )
        out &= self._active[:n][None, :]
        return out

    def report_many(self, boxes: Sequence[QueryBox]) -> list[list]:
        """Per-box active id lists — ``[report(b) for b in boxes]`` in one
        broadcast pass."""
        boxes = list(boxes)
        if not boxes:
            return []
        ids = self._ids[: self._n]
        return [ids[row].tolist() for row in self._match_matrix(boxes)]

    def count_many(self, boxes: Sequence[QueryBox]) -> list[int]:
        """Per-box active point counts in one broadcast pass."""
        boxes = list(boxes)
        if not boxes:
            return []
        return [int(c) for c in self._match_matrix(boxes).sum(axis=1)]

    def report_groups_many(self, boxes: Sequence[QueryBox]) -> list[set]:
        """Per-box group sets in one broadcast pass + per-box group-by."""
        boxes = list(boxes)
        if not boxes:
            return []
        groups = self._groups[: self._n]
        return [
            {self._group_keys[int(c)] for c in np.unique(groups[row])}
            for row in self._match_matrix(boxes)
        ]
