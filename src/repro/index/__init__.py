"""Range-searching substrate (Section 2: range trees, dynamic variants).

The paper's data structures reduce every query to *orthogonal range
reporting over weighted points*: find/report points of a mapped point set
inside an axis-parallel box (an orthant crossed with a weight interval).
This subpackage provides that machinery:

- :class:`~repro.index.query_box.QueryBox` — axis-parallel boxes with
  per-side open/closed bounds (needed for the strict inequalities of the
  ``R^{4d}`` orthant of Algorithm 4).
- :class:`~repro.index.fenwick.FenwickTree` — binary indexed tree over 0/1
  activity flags with ``find_first`` support.
- :class:`~repro.index.sorted_list.SortedListIndex` — the 1-dimensional
  range tree: a static sorted array with Fenwick-indexed activation,
  supporting ``report`` / ``report_first`` / ``count`` over active entries.
- :class:`~repro.index.range_tree.RangeTree` — the classic multi-level
  range tree (tree over the first coordinate, associated structures on the
  rest), faithful to the textbook construction [de Berg et al.]; practical
  for low mapped dimension.
- :class:`~repro.index.kd_tree.DynamicKDTree` — the default engine: a
  median-split kd-tree with per-node active counters supporting
  ``report_first`` over *active* points, ``deactivate``/``activate`` (the
  delete/re-insert trick of Algorithms 2 and 4), and bulk insertion with
  amortized rebuilds for the dynamic-synopsis remarks.
- :class:`~repro.index.columnar.ColumnarStore` — a vectorized columnar
  engine: contiguous point matrix + boolean active mask, answering orthant
  queries (and the bulk ``report_groups`` group-by) with single NumPy
  passes; the fastest backend at service scale.

All engines implement the :class:`~repro.index.backend.RangeSearchBackend`
protocol (``report / report_first / report_groups / count / deactivate /
activate / insert / remove`` plus the multi-box batch kernels
``report_many / count_many / report_groups_many`` — one shared traversal
on the kd-tree, one broadcast pass on the columnar store), so every layer
above — the Ptile/Pref structures,
:class:`~repro.core.engine.DatasetSearchEngine`, the service shards,
``repro serve --engine`` — is parameterized by a backend name resolved
through :func:`~repro.index.backend.build_backend`.  Callers that must
tolerate third-party backends without the batch kernels use the
``*_many_of`` dispatchers in :mod:`repro.index.backend`, which fall back
to per-box loops with identical results.
"""

from repro.index.backend import (
    DYNAMIC_ENGINES,
    ENGINES,
    RangeSearchBackend,
    build_backend,
    group_of,
)
from repro.index.query_box import QueryBox
from repro.index.fenwick import FenwickTree
from repro.index.sorted_list import SortedListIndex
from repro.index.range_tree import RangeTree
from repro.index.kd_tree import DynamicKDTree
from repro.index.columnar import ColumnarStore

__all__ = [
    "QueryBox",
    "FenwickTree",
    "SortedListIndex",
    "RangeTree",
    "DynamicKDTree",
    "ColumnarStore",
    "RangeSearchBackend",
    "ENGINES",
    "DYNAMIC_ENGINES",
    "build_backend",
    "group_of",
]
