"""Range-searching substrate (Section 2: range trees, dynamic variants).

The paper's data structures reduce every query to *orthogonal range
reporting over weighted points*: find/report points of a mapped point set
inside an axis-parallel box (an orthant crossed with a weight interval).
This subpackage provides that machinery:

- :class:`~repro.index.query_box.QueryBox` — axis-parallel boxes with
  per-side open/closed bounds (needed for the strict inequalities of the
  ``R^{4d}`` orthant of Algorithm 4).
- :class:`~repro.index.fenwick.FenwickTree` — binary indexed tree over 0/1
  activity flags with ``find_first`` support.
- :class:`~repro.index.sorted_list.SortedListIndex` — the 1-dimensional
  range tree: a static sorted array with Fenwick-indexed activation,
  supporting ``report`` / ``report_first`` / ``count`` over active entries.
- :class:`~repro.index.range_tree.RangeTree` — the classic multi-level
  range tree (tree over the first coordinate, associated structures on the
  rest), faithful to the textbook construction [de Berg et al.]; practical
  for low mapped dimension.
- :class:`~repro.index.kd_tree.DynamicKDTree` — the general engine: a
  median-split kd-tree with per-node active counters supporting
  ``report_first`` over *active* points, ``deactivate``/``activate`` (the
  delete/re-insert trick of Algorithms 2 and 4), and bulk insertion with
  amortized rebuilds for the dynamic-synopsis remarks.

Both multi-dimensional structures implement the same
``report / report_first / count / deactivate / activate`` protocol, so the
core indexes are parameterized by an engine choice (see
``DESIGN.md``, substitution 2).
"""

from repro.index.query_box import QueryBox
from repro.index.fenwick import FenwickTree
from repro.index.sorted_list import SortedListIndex
from repro.index.range_tree import RangeTree
from repro.index.kd_tree import DynamicKDTree

__all__ = [
    "QueryBox",
    "FenwickTree",
    "SortedListIndex",
    "RangeTree",
    "DynamicKDTree",
]
