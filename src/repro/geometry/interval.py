"""Intervals of the real line.

The paper uses intervals in two roles:

- as the query predicate ``theta = [a_theta, b_theta]`` applied to a measure
  value (Section 1.1), where ``theta = [a_theta, 1]`` (or ``[a_theta, inf)``)
  is called a *threshold* interval and a general ``[a_theta, b_theta]`` a
  *range* interval; and
- as the weight filter ``I'`` handed to the range tree during a query
  (Algorithms 2, 4, 6).

Endpoints may be open or closed so that the strict/non-strict comparisons of
the orthant mappings in Sections 4.2-4.3 are represented exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Interval:
    """A (possibly unbounded, possibly open-ended) interval of the real line.

    Parameters
    ----------
    lo, hi:
        Endpoints.  Use ``-math.inf`` / ``math.inf`` for unbounded sides.
    lo_open, hi_open:
        Whether each endpoint is excluded.  Infinite endpoints are always
        treated as open.

    Examples
    --------
    >>> theta = Interval(0.2, 1.0)          # the paper's theta = [0.2, 1]
    >>> 0.2 in theta, 1.0 in theta, 0.1 in theta
    (True, True, False)
    >>> Interval.at_least(0.5).is_threshold
    True
    """

    lo: float
    hi: float
    lo_open: bool = False
    hi_open: bool = False

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval endpoints must not be NaN")
        if self.lo > self.hi:
            raise ValueError(f"empty interval: lo={self.lo} > hi={self.hi}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def at_least(lo: float) -> "Interval":
        """The one-sided threshold interval ``[lo, inf)``."""
        return Interval(lo, math.inf)

    @staticmethod
    def at_most(hi: float) -> "Interval":
        """The one-sided interval ``(-inf, hi]``."""
        return Interval(-math.inf, hi)

    @staticmethod
    def closed(lo: float, hi: float) -> "Interval":
        """The closed interval ``[lo, hi]``."""
        return Interval(lo, hi)

    @staticmethod
    def everything() -> "Interval":
        """The whole real line."""
        return Interval(-math.inf, math.inf)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_threshold(self) -> bool:
        """True when the interval is one-sided above (``hi`` unbounded or 1).

        The paper treats ``theta = [a, 1]`` over percentile measures as a
        threshold predicate because percentile mass never exceeds 1.
        """
        return math.isinf(self.hi) or self.hi >= 1.0

    def __contains__(self, value: float) -> bool:
        if self.lo_open:
            if not value > self.lo:
                return False
        elif not value >= self.lo:
            return False
        if self.hi_open:
            return value < self.hi
        return value <= self.hi

    def contains(self, value: float) -> bool:
        """Alias for ``value in self`` (readability at call sites)."""
        return value in self

    def expand(self, slack: float) -> "Interval":
        """Widen both finite endpoints by ``slack`` (used for ``I'``).

        The query procedures of Algorithms 2 and 4 search weights inside
        ``[a_theta - eps - delta, b_theta + eps + delta]``; ``expand`` builds
        that widened interval.  Open endpoints become closed because the
        widened filter is a superset.
        """
        lo = self.lo - slack if math.isfinite(self.lo) else self.lo
        hi = self.hi + slack if math.isfinite(self.hi) else self.hi
        return Interval(lo, hi)

    def clamp(self, lo: float, hi: float) -> "Interval":
        """Intersect with ``[lo, hi]`` (e.g. percentile mass lives in [0,1])."""
        new_lo = max(self.lo, lo)
        new_hi = min(self.hi, hi)
        if new_lo > new_hi:
            # Degenerate after clamping; collapse to a point at the clamp
            # boundary so membership tests are all False except exact hits.
            return Interval(new_lo, new_lo, lo_open=True, hi_open=True)
        return Interval(new_lo, new_hi, self.lo_open, self.hi_open)

    def intersects(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one point."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return False
        if lo == hi:
            return lo in self and lo in other
        return True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        left = "(" if self.lo_open or math.isinf(self.lo) else "["
        right = ")" if self.hi_open or math.isinf(self.hi) else "]"
        return f"{left}{self.lo}, {self.hi}{right}"
