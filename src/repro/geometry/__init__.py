"""Geometric primitives used throughout the library.

This subpackage implements the geometric machinery from Section 2 of the
paper:

- :class:`~repro.geometry.interval.Interval` — closed/open/one-sided
  intervals of the real line (query predicates ``theta`` and weight filters
  ``I'``).
- :class:`~repro.geometry.rectangle.Rectangle` — axis-parallel
  hyper-rectangles in ``R^d`` and the orthant mappings into ``R^{2d}`` /
  ``R^{4d}`` used by the Ptile data structures.
- :mod:`~repro.geometry.epsilon_sample` — the ε-sample machinery
  (Lemma 2.1).
- :mod:`~repro.geometry.epsilon_net` — centrally-symmetric ε-nets of unit
  vectors on the sphere (used by the Pref data structures).
- :mod:`~repro.geometry.rect_enum` — enumeration of combinatorially
  different hyper-rectangles over a coreset, and the maximal-pair
  construction of Section 4.3.
"""

from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.geometry.epsilon_net import build_epsilon_net, nearest_net_vector
from repro.geometry.epsilon_sample import epsilon_sample_size, draw_epsilon_sample
from repro.geometry.rect_enum import (
    RectangleGrid,
    enumerate_rectangles,
    enumerate_maximal_pairs,
    enumerate_maximal_pairs_naive,
    generalized_pairs_arrays,
    rectangles_arrays,
)

__all__ = [
    "Interval",
    "Rectangle",
    "build_epsilon_net",
    "nearest_net_vector",
    "epsilon_sample_size",
    "draw_epsilon_sample",
    "RectangleGrid",
    "enumerate_rectangles",
    "enumerate_maximal_pairs",
    "enumerate_maximal_pairs_naive",
    "generalized_pairs_arrays",
    "rectangles_arrays",
]
