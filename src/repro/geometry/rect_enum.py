"""Combinatorially different rectangles over a coreset (Sections 4.2-4.3).

Given a coreset ``S`` of sample points in ``R^d`` (optionally augmented with
the projections of the samples onto the facets of a bounding box ``B``, as in
Algorithm 3 line 5), the *combinatorially different* hyper-rectangles are the
rectangles whose facets pass through coreset coordinates: per axis ``h`` the
rectangle picks a pair ``lo <= hi`` from the sorted distinct coordinates of
the coreset on axis ``h``.  Two rectangles picking the same coordinates
contain exactly the same coreset points, so this finite family realizes every
possible intersection pattern — exactly the set ``R_i`` of Algorithms 1 & 3.

Maximal pairs (Section 4.3) and an exact pruning
------------------------------------------------
Algorithm 3 stores all pairs ``(rho, rho_hat)`` with ``rho ⊆ rho_hat`` such
that there is **no** ``rho' ∈ R_i`` with ``rho ⊂ rho' ⊂⊂ rho_hat``.  The
query orthant of Algorithm 4 can only ever match a pair with
``rho ⊆ R ⊂⊂ rho_hat`` — in particular ``rho_hat`` must contain ``rho``
*strictly on all 2d sides*.  Write ``prev_h(x)`` / ``next_h(x)`` for the grid
coordinate immediately below/above ``x`` on axis ``h``.  For a pair strict on
all sides, the rectangles ``rho'`` with ``rho ⊂ rho' ⊂⊂ rho_hat`` are exactly
the choices ``rho'_h^- ∈ (rho_hat_h^-, rho_h^-]`` and
``rho'_h^+ ∈ [rho_h^+, rho_hat_h^+)`` other than ``rho`` itself; the number of
choices is ``prod_h cnt_lo(h) * cnt_hi(h)`` where ``cnt_lo(h)`` counts grid
coordinates in ``(rho_hat_h^-, rho_h^-]`` and symmetrically for ``cnt_hi``.
The pair is valid iff this product equals 1, i.e. iff

    rho_hat_h^- = prev_h(rho_h^-)   and   rho_hat_h^+ = next_h(rho_h^+)

for every axis.  Hence **each inner rectangle has exactly one query-matchable
valid outer rectangle: its one-step neighbour expansion**.  Pairs that share
a boundary with ``rho`` on some side are also valid per the paper's
definition but can never satisfy ``R ⊂⊂ rho_hat`` together with
``rho ⊆ R``, so storing them is dead weight.  ``enumerate_maximal_pairs``
therefore emits only the neighbour expansions — an exact, loss-free
optimization reducing the stored pairs from ``O(s^{4d})`` to ``O(s^{2d})``.
``enumerate_maximal_pairs_naive`` implements the paper's definition verbatim
(quadratic filter) and the test suite proves the two agree on all
query-matchable pairs.

Vectorized enumeration
----------------------
The list-of-tuples enumerators above are the *reference* implementations:
one Python iteration (and several small array allocations) per rectangle.
Index construction walks millions of rectangles, so the builders consume
the block-operation twins instead:

- :func:`rectangles_arrays` — the family ``R_i`` as ``(P, d)`` coordinate
  matrices plus a ``(P,)`` mass vector;
- :func:`generalized_pairs_arrays` — the generalized maximal pairs as four
  ``(P, d)`` matrices (inner/outer lo/hi) plus masses.

Both build per-axis *option tables* (``np.triu_indices`` index pairs, plus
gap options for the generalized family), realize the cross product with
stride arithmetic instead of ``itertools.product``, and look masses up in
a padded d-dimensional cumulative-count grid via inclusion–exclusion —
``2^d`` vectorized gathers instead of one rank scan per rectangle.  Row
order and float values match the reference enumerators *exactly* (the
test suite and the cold-path benchmark both assert it); pass
``vectorized=False`` (or flip :data:`VECTORIZED_ENUMERATION`) to route
through the reference path, e.g. to measure the speedup.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.geometry.rectangle import Rectangle

#: Refuse to enumerate more than this many rectangles for a single coreset —
#: a guard against accidental eps choices that would exhaust memory.
MAX_RECTANGLES_PER_CORESET = 2_000_000


class RectangleGrid:
    """The combinatorial grid induced by a coreset (plus bounding box).

    Parameters
    ----------
    points:
        ``(s, d)`` array of coreset points.
    bounding_box:
        Optional :class:`Rectangle`.  When given, each axis' coordinate list
        additionally contains the box endpoints — the effect of projecting
        every sample onto the ``2d`` facets of ``B`` (Algorithm 3, line 5):
        the only new *coordinates* such projections introduce are the box
        endpoints themselves.

    Notes
    -----
    Rectangles are addressed by integer index vectors: a rectangle is a pair
    ``(lo_idx, hi_idx)`` of length-``d`` tuples with
    ``lo_idx[h] <= hi_idx[h]`` indexing into ``coords[h]``.
    """

    def __init__(self, points: np.ndarray, bounding_box: Optional[Rectangle] = None) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (s, d) array")
        self.points = pts
        self.dim = pts.shape[1]
        self.bounding_box = bounding_box
        if bounding_box is not None:
            if bounding_box.dim != self.dim:
                raise ValueError("bounding box dimension mismatch")
            if not bounding_box.contains_points(pts).all():
                raise ValueError("all coreset points must lie in the bounding box")
        self.coords: list[np.ndarray] = []
        for h in range(self.dim):
            vals = pts[:, h]
            if bounding_box is not None:
                vals = np.concatenate(
                    [vals, [bounding_box.lo[h], bounding_box.hi[h]]]
                )
            self.coords.append(np.unique(vals))
        # Rank of each sample point on each axis (exact: sample coords are
        # grid coords by construction).
        self._ranks = np.column_stack(
            [np.searchsorted(self.coords[h], pts[:, h]) for h in range(self.dim)]
        )

    # ------------------------------------------------------------------
    def n_coords(self, axis: int) -> int:
        """Number of distinct grid coordinates on an axis."""
        return int(self.coords[axis].size)

    def n_rectangles(self) -> int:
        """``prod_h m_h (m_h + 1) / 2`` — size of the family ``R_i``."""
        total = 1
        for h in range(self.dim):
            m = self.n_coords(h)
            total *= m * (m + 1) // 2
        return total

    def rectangle(self, lo_idx: Sequence[int], hi_idx: Sequence[int]) -> Rectangle:
        """Materialize the rectangle addressed by grid indices."""
        lo = [float(self.coords[h][lo_idx[h]]) for h in range(self.dim)]
        hi = [float(self.coords[h][hi_idx[h]]) for h in range(self.dim)]
        return Rectangle(lo, hi)

    def count(self, lo_idx: Sequence[int], hi_idx: Sequence[int]) -> int:
        """``|rho ∩ S|`` for the rectangle addressed by grid indices."""
        lo = np.asarray(lo_idx)
        hi = np.asarray(hi_idx)
        inside = np.all((self._ranks >= lo) & (self._ranks <= hi), axis=1)
        return int(np.count_nonzero(inside))

    def mass(self, lo_idx: Sequence[int], hi_idx: Sequence[int]) -> float:
        """``|rho ∩ S| / |S|`` — the stored weight of Algorithms 1 & 3."""
        return self.count(lo_idx, hi_idx) / self.points.shape[0]

    def index_rectangles(self) -> Iterator[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Iterate over all (lo_idx, hi_idx) index rectangles."""
        if self.n_rectangles() > MAX_RECTANGLES_PER_CORESET:
            raise ValueError(
                f"coreset would induce {self.n_rectangles()} rectangles "
                f"(> {MAX_RECTANGLES_PER_CORESET}); reduce the coreset size"
            )
        per_axis: list[list[tuple[int, int]]] = []
        for h in range(self.dim):
            m = self.n_coords(h)
            per_axis.append([(i, j) for i in range(m) for j in range(i, m)])
        for combo in itertools.product(*per_axis):
            lo_idx = tuple(ij[0] for ij in combo)
            hi_idx = tuple(ij[1] for ij in combo)
            yield lo_idx, hi_idx

    def expandable(self, lo_idx: Sequence[int], hi_idx: Sequence[int]) -> bool:
        """Whether a one-step neighbour expansion exists on every side."""
        for h in range(self.dim):
            if lo_idx[h] == 0 or hi_idx[h] == self.n_coords(h) - 1:
                return False
        return True

    def expand_once(
        self, lo_idx: Sequence[int], hi_idx: Sequence[int]
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The unique neighbour expansion ``rho_hat`` of ``rho`` (see module doc)."""
        if not self.expandable(lo_idx, hi_idx):
            raise ValueError("rectangle touches the grid boundary; cannot expand")
        return (
            tuple(i - 1 for i in lo_idx),
            tuple(j + 1 for j in hi_idx),
        )


def enumerate_rectangles(grid: RectangleGrid) -> list[tuple[Rectangle, float]]:
    """All combinatorially different rectangles with their coreset mass.

    This is the family ``R_i`` with weights ``|rho ∩ S_i| / |S_i|``
    (Algorithm 1, lines 5-7).
    """
    out: list[tuple[Rectangle, float]] = []
    for lo_idx, hi_idx in grid.index_rectangles():
        out.append((grid.rectangle(lo_idx, hi_idx), grid.mass(lo_idx, hi_idx)))
    return out


def enumerate_maximal_pairs(
    grid: RectangleGrid,
) -> list[tuple[Rectangle, Rectangle, float]]:
    """Query-matchable maximal pairs ``(rho, rho_hat)`` with inner mass.

    Implements the exact pruning described in the module docstring: for each
    inner rectangle that does not touch the grid boundary, emit the single
    pair with its one-step neighbour expansion.  The weight is the *inner*
    rectangle's coreset mass (Algorithm 3, line 11).
    """
    out: list[tuple[Rectangle, Rectangle, float]] = []
    for lo_idx, hi_idx in grid.index_rectangles():
        if not grid.expandable(lo_idx, hi_idx):
            continue
        out_lo, out_hi = grid.expand_once(lo_idx, hi_idx)
        out.append(
            (
                grid.rectangle(lo_idx, hi_idx),
                grid.rectangle(out_lo, out_hi),
                grid.mass(lo_idx, hi_idx),
            )
        )
    return out


#: Sentinel coordinates for "always satisfied" inner constraints of gap
#: axes (see enumerate_generalized_pairs).  Large-but-finite so kd-tree
#: bounding boxes stay well-defined.
GAP_INNER_LO = 1e300
GAP_INNER_HI = -1e300


def enumerate_generalized_pairs(
    grid: RectangleGrid,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]]:
    """Maximal pairs extended with *gap* axes — the empty-intersection fix.

    The plain pair family cannot certify a query rectangle ``R`` whose
    per-axis range contains **no** grid coordinate on some axis: no family
    rectangle fits inside ``R`` there, yet a dataset with (coreset) mass 0
    in ``R`` must still be reported when ``0 ∈ [a - eps - delta, ...]``
    (Lemma 4.7 implicitly assumes a maximal rectangle exists).  The fix:
    per axis, a pair may choose either

    - a *rectangle* option ``[c_i, c_j]`` with outer ``(c_{i-1}, c_{j+1})``
      (exactly as before), or
    - a *gap* option ``(c_g, c_{g+1})``: the inner constraint is vacuous
      (encoded by the ``GAP_INNER_*`` sentinels, which satisfy any query's
      inner orthant constraints) and the outer constraint demands ``R``'s
      range on this axis lie strictly inside the open gap.

    Correctness: at a query match, every sample inside ``R`` must have its
    axis-``h`` coordinate inside ``R``'s range; on gap axes that range
    contains no grid coordinate (hence no sample coordinate), so samples in
    ``R`` are exactly the samples in the inner product — the stored weight
    equals the coreset mass of ``R`` *exactly*.  Conversely, for any ``R``
    strictly inside the bounding box (general position), choosing per axis
    the maximal coordinate interval inside ``R`` — or the gap around ``R``
    when no coordinate falls inside — yields a stored pair matching ``R``.
    Recall and the two-sided precision of Theorem 4.11 both hold with no
    assumption that ``R`` contains coreset points.

    Returns tuples ``(inner_lo, inner_hi, outer_lo, outer_hi, weight)`` of
    per-axis coordinate vectors, ready for the ``R^{4d}`` point mapping.
    """
    dim = grid.dim
    per_axis: list[list[tuple[float, float, float, float, Optional[tuple[int, int]]]]] = []
    for h in range(dim):
        coords = grid.coords[h]
        m = coords.size
        options: list[tuple[float, float, float, float, Optional[tuple[int, int]]]] = []
        for i in range(1, m - 1):
            for j in range(i, m - 1):
                options.append(
                    (
                        float(coords[i]),
                        float(coords[j]),
                        float(coords[i - 1]),
                        float(coords[j + 1]),
                        (i, j),
                    )
                )
        for g in range(m - 1):
            options.append(
                (
                    GAP_INNER_LO,
                    GAP_INNER_HI,
                    float(coords[g]),
                    float(coords[g + 1]),
                    None,
                )
            )
        per_axis.append(options)
    total = 1
    for options in per_axis:
        total *= len(options)
    if total > MAX_RECTANGLES_PER_CORESET:
        raise ValueError(
            f"coreset would induce {total} generalized pairs "
            f"(> {MAX_RECTANGLES_PER_CORESET}); reduce the coreset size"
        )
    out: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]] = []
    for combo in itertools.product(*per_axis):
        inner_lo = np.array([c[0] for c in combo])
        inner_hi = np.array([c[1] for c in combo])
        outer_lo = np.array([c[2] for c in combo])
        outer_hi = np.array([c[3] for c in combo])
        if all(c[4] is not None for c in combo):
            lo_idx = tuple(c[4][0] for c in combo)
            hi_idx = tuple(c[4][1] for c in combo)
            weight = grid.mass(lo_idx, hi_idx)
        else:
            weight = 0.0  # a gap axis admits no sample
        out.append((inner_lo, inner_hi, outer_lo, outer_hi, weight))
    return out


#: Default for the ``vectorized`` parameter of the array enumerators.
#: The cold-path benchmark flips this to measure the reference
#: (list-of-tuples) construction path end to end; production code never
#: touches it.
VECTORIZED_ENUMERATION = True


def _padded_cumulative_counts(grid: RectangleGrid) -> np.ndarray:
    """Padded d-dim cumulative point counts over the grid cells.

    ``out[i_1 + 1, ..., i_d + 1]`` is the number of coreset points whose
    rank on every axis ``h`` is ``<= i_h``; any index 0 means "strictly
    below the grid" and contributes 0, which makes the inclusion–exclusion
    gathers of :func:`_box_counts` branch-free.
    """
    shape = tuple(grid.n_coords(h) for h in range(grid.dim))
    hist = np.zeros(shape, dtype=np.int64)
    np.add.at(hist, tuple(grid._ranks[:, h] for h in range(grid.dim)), 1)
    for h in range(grid.dim):
        hist = np.cumsum(hist, axis=h)
    padded = np.zeros(tuple(m + 1 for m in shape), dtype=np.int64)
    padded[tuple(slice(1, None) for _ in shape)] = hist
    return padded


def _box_counts(
    padded: np.ndarray, lo_idx: np.ndarray, hi_idx: np.ndarray
) -> np.ndarray:
    """``|rho ∩ S|`` for ``(P, d)`` index rectangles, via 2^d gathers.

    Standard inclusion–exclusion on the padded cumulative grid:
    ``count = sum_{e in {0,1}^d} (-1)^{|e|} C[c(e)]`` with corner
    ``c(e)_h = hi_h + 1`` when ``e_h = 0`` and ``lo_h`` otherwise.
    """
    n, d = lo_idx.shape
    counts = np.zeros(n, dtype=np.int64)
    for corner in range(1 << d):
        cols = []
        sign = 1
        for h in range(d):
            if corner >> h & 1:
                cols.append(lo_idx[:, h])
                sign = -sign
            else:
                cols.append(hi_idx[:, h] + 1)
        counts += sign * padded[tuple(cols)]
    return counts


def _product_total(sizes: Sequence[int], what: str) -> int:
    """Size of the per-axis option cross product, guard-checked *before*
    any ``O(total)`` allocation happens."""
    total = 1
    for s in sizes:
        total *= int(s)
    if total > MAX_RECTANGLES_PER_CORESET:
        raise ValueError(
            f"coreset would induce {total} {what} "
            f"(> {MAX_RECTANGLES_PER_CORESET}); reduce the coreset size"
        )
    return total


def _product_option_indices(sizes: Sequence[int], total: int) -> list[np.ndarray]:
    """Per-axis option-index columns realizing ``itertools.product`` order.

    ``cols[h][p]`` is the option the ``p``-th combination picks on axis
    ``h`` (last axis varying fastest, exactly like ``itertools.product``).
    """
    if total == 0:
        return [np.empty(0, dtype=np.int64) for _ in sizes]
    flat = np.arange(total)
    cols: list[np.ndarray] = []
    stride = total
    for s in sizes:
        stride //= int(s)
        cols.append((flat // stride) % int(s))
    return cols


def rectangles_arrays(
    grid: RectangleGrid, vectorized: Optional[bool] = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The family ``R_i`` as block matrices: ``(lo, hi, mass)``.

    ``lo``/``hi`` have shape ``(P, d)`` and ``mass`` shape ``(P,)``; row
    ``p`` is the rectangle ``[lo[p], hi[p]]`` with its coreset mass.  Rows
    follow :meth:`RectangleGrid.index_rectangles` order, so this is
    :func:`enumerate_rectangles` with the Python objects unwrapped — the
    test suite asserts exact (bitwise) agreement.  ``P = 0`` yields
    correctly shaped empty matrices.
    """
    if vectorized is None:
        vectorized = VECTORIZED_ENUMERATION
    d = grid.dim
    if not vectorized:
        rects = enumerate_rectangles(grid)
        lo = np.asarray([r.lo for r, _w in rects], dtype=float).reshape(len(rects), d)
        hi = np.asarray([r.hi for r, _w in rects], dtype=float).reshape(len(rects), d)
        mass = np.asarray([w for _r, w in rects], dtype=float).reshape(len(rects))
        return lo, hi, mass
    lo_opts: list[np.ndarray] = []
    hi_opts: list[np.ndarray] = []
    for h in range(d):
        i, j = np.triu_indices(grid.n_coords(h))
        lo_opts.append(i)
        hi_opts.append(j)
    total = _product_total([o.size for o in lo_opts], "rectangles")
    cols = _product_option_indices([o.size for o in lo_opts], total)
    lo_idx = np.empty((total, d), dtype=np.int64)
    hi_idx = np.empty((total, d), dtype=np.int64)
    lo = np.empty((total, d))
    hi = np.empty((total, d))
    for h in range(d):
        lo_idx[:, h] = lo_opts[h][cols[h]]
        hi_idx[:, h] = hi_opts[h][cols[h]]
        lo[:, h] = grid.coords[h][lo_idx[:, h]]
        hi[:, h] = grid.coords[h][hi_idx[:, h]]
    counts = _box_counts(_padded_cumulative_counts(grid), lo_idx, hi_idx)
    return lo, hi, counts / grid.points.shape[0]


def generalized_pairs_arrays(
    grid: RectangleGrid, vectorized: Optional[bool] = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generalized maximal pairs as block matrices.

    Returns ``(inner_lo, inner_hi, outer_lo, outer_hi, weight)`` with the
    four coordinate matrices shaped ``(P, d)`` and ``weight`` shaped
    ``(P,)`` — :func:`enumerate_generalized_pairs` with the per-pair tuples
    unwrapped, in the same row order and with bitwise-equal floats (the
    test suite asserts it).  Gap axes carry the ``GAP_INNER_*`` sentinels
    and force weight 0, exactly as in the reference enumerator.  ``P = 0``
    (a grid with a degenerate axis) yields correctly shaped empty
    matrices rather than the ragged ``(0,)`` array a naive
    ``np.asarray([])`` would produce.
    """
    if vectorized is None:
        vectorized = VECTORIZED_ENUMERATION
    d = grid.dim
    if not vectorized:
        pairs = enumerate_generalized_pairs(grid)
        n = len(pairs)
        mats = [
            np.asarray([p[c] for p in pairs], dtype=float).reshape(n, d)
            for c in range(4)
        ]
        weight = np.asarray([p[4] for p in pairs], dtype=float).reshape(n)
        return mats[0], mats[1], mats[2], mats[3], weight
    ax_in_lo: list[np.ndarray] = []
    ax_in_hi: list[np.ndarray] = []
    ax_out_lo: list[np.ndarray] = []
    ax_out_hi: list[np.ndarray] = []
    ax_lo_idx: list[np.ndarray] = []
    ax_hi_idx: list[np.ndarray] = []
    for h in range(d):
        coords = grid.coords[h]
        m = coords.size
        i, j = np.triu_indices(max(0, m - 2))
        i = i + 1
        j = j + 1
        g = np.arange(m - 1)
        ax_in_lo.append(np.concatenate([coords[i], np.full(g.size, GAP_INNER_LO)]))
        ax_in_hi.append(np.concatenate([coords[j], np.full(g.size, GAP_INNER_HI)]))
        ax_out_lo.append(np.concatenate([coords[i - 1], coords[g]]))
        ax_out_hi.append(np.concatenate([coords[j + 1], coords[g + 1]]))
        ax_lo_idx.append(np.concatenate([i, np.full(g.size, -1, dtype=np.int64)]))
        ax_hi_idx.append(np.concatenate([j, np.full(g.size, -1, dtype=np.int64)]))
    sizes = [o.size for o in ax_in_lo]
    total = _product_total(sizes, "generalized pairs")
    cols = _product_option_indices(sizes, total)
    inner_lo = np.empty((total, d))
    inner_hi = np.empty((total, d))
    outer_lo = np.empty((total, d))
    outer_hi = np.empty((total, d))
    lo_idx = np.empty((total, d), dtype=np.int64)
    hi_idx = np.empty((total, d), dtype=np.int64)
    for h in range(d):
        o = cols[h]
        inner_lo[:, h] = ax_in_lo[h][o]
        inner_hi[:, h] = ax_in_hi[h][o]
        outer_lo[:, h] = ax_out_lo[h][o]
        outer_hi[:, h] = ax_out_hi[h][o]
        lo_idx[:, h] = ax_lo_idx[h][o]
        hi_idx[:, h] = ax_hi_idx[h][o]
    weight = np.zeros(total)
    valid = (lo_idx >= 0).all(axis=1)
    if valid.any():
        counts = _box_counts(
            _padded_cumulative_counts(grid), lo_idx[valid], hi_idx[valid]
        )
        weight[valid] = counts / grid.points.shape[0]
    return inner_lo, inner_hi, outer_lo, outer_hi, weight


def enumerate_maximal_pairs_naive(
    grid: RectangleGrid, matchable_only: bool = True
) -> list[tuple[Rectangle, Rectangle, float]]:
    """The paper's pair set, computed verbatim from its definition.

    Emits every pair ``(rho, rho_hat)`` in ``R_i x R_i`` with
    ``rho ⊆ rho_hat`` and no ``rho' ∈ R_i`` with ``rho ⊂ rho' ⊂⊂ rho_hat``.
    With ``matchable_only=True`` the output is restricted to pairs where
    ``rho_hat`` strictly contains ``rho`` on all sides — the only pairs an
    Algorithm 4 query orthant can return — which the tests show equals
    :func:`enumerate_maximal_pairs` exactly.  Quadratic in ``|R_i|``; for
    testing and the FIG3 benchmark only.
    """
    rects = list(grid.index_rectangles())
    out: list[tuple[Rectangle, Rectangle, float]] = []
    for in_lo, in_hi in rects:
        for out_lo, out_hi in rects:
            if not _idx_contained(in_lo, in_hi, out_lo, out_hi):
                continue
            strict_all = _idx_strict_all(in_lo, in_hi, out_lo, out_hi)
            if matchable_only and not strict_all:
                continue
            if _exists_intermediate(grid.dim, in_lo, in_hi, out_lo, out_hi):
                continue
            out.append(
                (
                    grid.rectangle(in_lo, in_hi),
                    grid.rectangle(out_lo, out_hi),
                    grid.mass(in_lo, in_hi),
                )
            )
    return out


def _idx_contained(in_lo, in_hi, out_lo, out_hi) -> bool:
    """``rho ⊆ rho_hat`` in index space."""
    return all(out_lo[h] <= in_lo[h] and in_hi[h] <= out_hi[h] for h in range(len(in_lo)))


def _idx_strict_all(in_lo, in_hi, out_lo, out_hi) -> bool:
    """``rho`` strictly inside ``rho_hat`` on all 2d sides, in index space."""
    return all(out_lo[h] < in_lo[h] and in_hi[h] < out_hi[h] for h in range(len(in_lo)))


def _exists_intermediate(dim, in_lo, in_hi, out_lo, out_hi) -> bool:
    """Whether some ``rho'`` satisfies ``rho ⊂ rho' ⊂⊂ rho_hat``.

    ``rho'`` must pick, per axis, ``lo' ∈ (out_lo, in_lo]`` and
    ``hi' ∈ [in_hi, out_hi)`` (index-space), and differ from ``rho``.  The
    number of candidates is the product of per-axis choice counts; an
    intermediate exists iff every axis has at least one choice and the
    product exceeds one (the single all-equal choice is ``rho`` itself).
    """
    product = 1
    for h in range(dim):
        cnt_lo = in_lo[h] - out_lo[h]   # indices in (out_lo, in_lo]
        cnt_hi = out_hi[h] - in_hi[h]   # indices in [in_hi, out_hi)
        if cnt_lo == 0 or cnt_hi == 0:
            return False
        product *= cnt_lo * cnt_hi
    return product > 1
