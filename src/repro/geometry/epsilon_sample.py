"""ε-samples for the range space of axis-parallel rectangles (Section 2).

By the ε-sample theorem [Vapnik-Chervonenkis 1971; Chazelle 2000], a uniform
random subset of size ``O(eps^-2 log(phi^-1))`` of a point set ``X`` is an
ε-sample for the range space ``(X, rectangles)`` with probability at least
``1 - phi``: for every axis-parallel rectangle ``R``,

    | |X ∩ R| / |X|  -  |C ∩ R| / |C| |  <=  eps.

Lemma 2.1 extends this through a synopsis: sampling from a synopsis with
error ``delta`` yields an ``(eps + delta)``-sample of the underlying dataset.

The constant in the sample-size bound is configurable; the default is chosen
so the laptop-scale experiments stay fast while the empirical error stays
well inside the bound (verified in ``tests/geometry/test_epsilon_sample.py``
and the T-FED benchmark).
"""

from __future__ import annotations

import math

import numpy as np

#: Leading constant for the eps-sample size bound.  The theory hides a
#: constant; 0.5 keeps coreset sizes laptop-friendly and is validated
#: empirically by the property tests (rectangle range spaces are benign).
DEFAULT_SAMPLE_CONSTANT = 0.5

#: Hard floor/ceiling on coreset sizes so extreme (eps, phi) choices neither
#: degenerate nor explode the combinatorial rectangle enumeration.
MIN_SAMPLE_SIZE = 4
MAX_SAMPLE_SIZE = 4096


def epsilon_sample_size(
    eps: float,
    phi: float,
    n_datasets: int = 1,
    constant: float = DEFAULT_SAMPLE_CONSTANT,
    max_size: int = MAX_SAMPLE_SIZE,
) -> int:
    """Size ``Theta(eps^-2 log(N / phi))`` of an ε-sample (Algorithm 1, line 4).

    Parameters
    ----------
    eps:
        Target additive error, in ``(0, 1)``.
    phi:
        Failure probability, in ``(0, 1)``.
    n_datasets:
        ``N``; the per-dataset failure budget is ``phi / N`` so a union bound
        makes *all* coresets good simultaneously with probability ``1 - phi``.
    constant:
        Leading constant of the bound.
    max_size:
        Cap on the returned size (the enumeration cost downstream is
        polynomial in this size).
    """
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    if not 0.0 < phi < 1.0:
        raise ValueError(f"phi must be in (0, 1), got {phi}")
    if n_datasets < 1:
        raise ValueError("n_datasets must be positive")
    raw = constant * eps ** -2 * math.log(max(math.e, n_datasets / phi))
    return int(min(max(MIN_SAMPLE_SIZE, math.ceil(raw)), max_size))


def epsilon_of_sample_size(
    size: int,
    phi: float,
    n_datasets: int = 1,
    constant: float = DEFAULT_SAMPLE_CONSTANT,
) -> float:
    """Inverse of :func:`epsilon_sample_size`: the ε a given coreset buys.

    When a coreset is capped below the theoretical size for a requested
    ``eps`` (memory budgets), the data structures widen their query slack to
    this *effective* ε so the recall guarantee is preserved.
    """
    if size < 1:
        raise ValueError("size must be positive")
    if not 0.0 < phi < 1.0:
        raise ValueError(f"phi must be in (0, 1), got {phi}")
    raw = math.sqrt(constant * math.log(max(math.e, n_datasets / phi)) / size)
    return min(1.0, raw)


def draw_epsilon_sample(
    points: np.ndarray,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``size`` uniform samples *with replacement* from a point set.

    This is the centralized sampling primitive; federated synopses implement
    their own ``sample`` drawing from the compressed representation (the
    combination is covered by Lemma 2.1).
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    if size <= 0:
        raise ValueError("sample size must be positive")
    idx = rng.integers(0, pts.shape[0], size=size)
    return pts[idx]


def empirical_rectangle_error(
    points: np.ndarray,
    sample: np.ndarray,
    rectangles: list,
) -> float:
    """Max over the given rectangles of | mass(P, R) - mass(S, R) |.

    A *lower bound* on the true ε-sample error (which quantifies over all
    rectangles); used by tests and the T-FED benchmark to check Lemma 2.1
    empirically.  ``rectangles`` is a list of
    :class:`~repro.geometry.rectangle.Rectangle`.
    """
    pts = np.asarray(points, dtype=float)
    smp = np.asarray(sample, dtype=float)
    worst = 0.0
    for rect in rectangles:
        mass_p = rect.count_inside(pts) / pts.shape[0]
        mass_s = rect.count_inside(smp) / smp.shape[0]
        worst = max(worst, abs(mass_p - mass_s))
    return worst
