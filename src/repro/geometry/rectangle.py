"""Axis-parallel hyper-rectangles and the orthant mappings of Section 4.

A hyper-rectangle ``R`` in ``R^d`` is stored by its two opposite corners
``R- , R+`` (Section 2).  Besides the usual containment predicates the class
implements the two point/orthant mappings at the heart of the Ptile data
structures:

- ``to_point_2d()`` maps a precomputed rectangle ``rho`` to the point
  ``q_rho = (rho-_1, ..., rho-_d, rho+_1, ..., rho+_d)`` in ``R^{2d}``
  (Algorithm 1, line 7), and ``query_orthant_2d()`` maps a query rectangle
  ``R`` to the orthant ``R' = [R-_1, inf) x ... x (-inf, R+_d]``
  (Algorithm 2, line 1) such that ``rho ⊆ R  ⇔  q_rho ∈ R'``.
- ``pair_to_point_4d()`` and ``query_orthant_4d()`` are the analogous
  mappings for pairs ``(rho, rho_hat)`` in ``R^{4d}`` (Algorithms 3-4) such
  that ``rho ⊆ R ⊂⊂ rho_hat  ⇔  q_(rho,rho_hat) ∈ R'`` where ``⊂⊂`` denotes
  strict containment with disjoint boundaries.

Orthants are represented as lists of per-dimension one-sided constraints
compatible with :mod:`repro.index` query boxes.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.geometry.interval import Interval


class Rectangle:
    """An axis-parallel hyper-rectangle ``[lo_1, hi_1] x ... x [lo_d, hi_d]``.

    Parameters
    ----------
    lo, hi:
        Sequences of length ``d`` with ``lo[h] <= hi[h]`` for every axis.
        Degenerate rectangles (``lo[h] == hi[h]``) are allowed — the paper's
        combinatorial rectangles include single points.

    Examples
    --------
    >>> r = Rectangle([3.0], [8.0])          # the paper's R = [3, 8], d = 1
    >>> r.contains_point([4.0])
    True
    >>> Rectangle([4.0], [6.0]).contained_in(r)
    True
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]) -> None:
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)
        if self.lo.ndim != 1 or self.lo.shape != self.hi.shape:
            raise ValueError("lo and hi must be 1-d sequences of equal length")
        if self.lo.size == 0:
            raise ValueError("rectangle must have at least one dimension")
        if np.any(self.lo > self.hi):
            raise ValueError(f"rectangle has lo > hi: lo={self.lo}, hi={self.hi}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_intervals(intervals: Iterable[Interval]) -> "Rectangle":
        """Build a rectangle as a product of closed intervals."""
        ivs = list(intervals)
        return Rectangle([iv.lo for iv in ivs], [iv.hi for iv in ivs])

    @staticmethod
    def bounding(points: np.ndarray, pad: float = 0.0) -> "Rectangle":
        """The bounding box ``B`` of a point set, optionally padded.

        Section 4.3 assumes all datasets lie in a bounding box ``B``; the
        padding keeps sample projections strictly outside the data range so
        that facet expansion (Lemma 4.6) always terminates.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        return Rectangle(pts.min(axis=0) - pad, pts.max(axis=0) + pad)

    @property
    def dim(self) -> int:
        """Dimension ``d`` of the ambient space."""
        return int(self.lo.size)

    # ------------------------------------------------------------------
    # Point / rectangle predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Sequence[float]) -> bool:
        """Closed containment of a single point."""
        p = np.asarray(point, dtype=float)
        return bool(np.all(self.lo <= p) and np.all(p <= self.hi))

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorized closed containment for an ``(n, d)`` array of points."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2:
            raise ValueError("points must be an (n, d) array")
        return np.all((pts >= self.lo) & (pts <= self.hi), axis=1)

    def count_inside(self, points: np.ndarray) -> int:
        """``|R ∩ P|`` for a point set ``P``."""
        return int(np.count_nonzero(self.contains_points(points)))

    def contained_in(self, other: "Rectangle") -> bool:
        """Whether ``self ⊆ other`` (closed containment)."""
        return bool(np.all(other.lo <= self.lo) and np.all(self.hi <= other.hi))

    def strictly_inside(self, other: "Rectangle") -> bool:
        """The paper's ``self ⊂⊂ other``: contained with disjoint boundaries.

        Every facet of ``self`` is strictly inside ``other`` — i.e.
        ``other.lo < self.lo`` and ``self.hi < other.hi`` on all axes.
        """
        return bool(np.all(other.lo < self.lo) and np.all(self.hi < other.hi))

    def intersects(self, other: "Rectangle") -> bool:
        """Whether the closed rectangles share at least one point."""
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rectangle):
            return NotImplemented
        return bool(np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi))

    def __hash__(self) -> int:
        return hash((self.lo.tobytes(), self.hi.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"[{a:g}, {b:g}]" for a, b in zip(self.lo, self.hi))
        return f"Rectangle({parts})"

    # ------------------------------------------------------------------
    # Orthant mappings (Sections 4.2 and 4.3)
    # ------------------------------------------------------------------
    def to_point_2d(self) -> np.ndarray:
        """``q_rho = (rho-_1, ..., rho-_d, rho+_1, ..., rho+_d)`` in R^{2d}."""
        return np.concatenate([self.lo, self.hi])

    def query_orthant_2d(self) -> list[tuple[float, float, bool, bool]]:
        """The orthant ``R'`` of Algorithm 2 as per-dimension constraints.

        Returns a list of ``(lo, hi, lo_open, hi_open)`` tuples over the
        ``2d`` mapped coordinates: ``[R-_h, inf)`` for the first ``d`` and
        ``(-inf, R+_h]`` for the last ``d``.  A mapped point ``q_rho`` lies in
        the orthant iff ``rho ⊆ R``.
        """
        cons: list[tuple[float, float, bool, bool]] = []
        for h in range(self.dim):
            cons.append((float(self.lo[h]), math.inf, False, False))
        for h in range(self.dim):
            cons.append((-math.inf, float(self.hi[h]), False, False))
        return cons

    def pair_to_point_4d(self, outer: "Rectangle") -> np.ndarray:
        """``q_(rho, rho_hat)`` in ``R^{4d}`` (Algorithm 3, line 10).

        Coordinate order follows the paper:
        ``(rho-_1..d, rho_hat-_1..d, rho+_1..d, rho_hat+_1..d)``.
        """
        if outer.dim != self.dim:
            raise ValueError("inner and outer rectangles must share dimension")
        return np.concatenate([self.lo, outer.lo, self.hi, outer.hi])

    def query_orthant_4d(self) -> list[tuple[float, float, bool, bool]]:
        """The orthant ``R'`` of Algorithm 4 as per-dimension constraints.

        Over the ``4d`` mapped coordinates:

        - ``[R-_h, inf)``   — rho must start at or after ``R-`` (rho ⊆ R),
        - ``(-inf, R-_h)``  — rho_hat must start strictly before ``R-``,
        - ``(-inf, R+_h]``  — rho must end at or before ``R+``,
        - ``(R+_h, inf)``   — rho_hat must end strictly after ``R+``,

        so a mapped pair lies in the orthant iff ``rho ⊆ R ⊂⊂ rho_hat``.
        """
        cons: list[tuple[float, float, bool, bool]] = []
        for h in range(self.dim):
            cons.append((float(self.lo[h]), math.inf, False, False))
        for h in range(self.dim):
            cons.append((-math.inf, float(self.lo[h]), False, True))
        for h in range(self.dim):
            cons.append((-math.inf, float(self.hi[h]), False, False))
        for h in range(self.dim):
            cons.append((float(self.hi[h]), math.inf, True, False))
        return cons
