"""Centrally symmetric ε-nets of unit vectors on the sphere (Section 2).

A set ``C`` of unit vectors is an ε-net of ``S^{d-1}`` if for every unit
vector ``v`` there is ``u ∈ C`` with angle ``O(eps)``; the paper additionally
requires central symmetry (``u ∈ C  ⇒  -u ∈ C``) so that low-score queries
mirror high-score queries.  ``|C| = O(eps^{-(d-1)})`` and the net is built in
``O(eps^{-(d-1)})`` time [Agarwal-Har-Peled-Yu 2008].

Constructions per dimension
---------------------------
- ``d = 1``: ``{+1, -1}``.
- ``d = 2``: evenly spaced angles on the circle.
- ``d = 3``: a Fibonacci sphere lattice, symmetrized.
- ``d >= 4``: a deterministic lattice of normalized grid directions over
  ``{-k..k}^d``, symmetrized and deduplicated — simple, deterministic, and
  with covering radius ``O(1/k)``.

All constructions guarantee, and tests verify, covering angle
``<= arccos(1 / sqrt(1 + eps^2))`` as in the paper's definition.
"""

from __future__ import annotations

import math

import numpy as np


def covering_angle_bound(eps: float) -> float:
    """The paper's net angle bound ``arccos(1 / sqrt(1 + eps^2)) = O(eps)``."""
    return math.acos(1.0 / math.sqrt(1.0 + eps * eps))


def build_epsilon_net(dim: int, eps: float) -> np.ndarray:
    """Build a centrally symmetric ε-net of unit vectors in ``R^dim``.

    Returns an ``(m, dim)`` array of unit vectors with ``m = O(eps^{-(dim-1)})``.

    Examples
    --------
    >>> net = build_epsilon_net(2, 0.25)
    >>> bool(np.allclose(np.linalg.norm(net, axis=1), 1.0))
    True
    """
    if dim < 1:
        raise ValueError("dim must be >= 1")
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    if dim == 1:
        return np.array([[1.0], [-1.0]])
    angle = covering_angle_bound(eps)
    if dim == 2:
        return _circle_net(angle)
    if dim == 3:
        return _fibonacci_net(angle)
    return _lattice_net(dim, angle)


def _circle_net(angle: float) -> np.ndarray:
    """Evenly spaced directions on the unit circle with spacing <= angle."""
    # m directions spaced 2*pi/m apart; nearest-direction angle <= pi/m.
    m = max(4, int(math.ceil(math.pi / angle)) * 2)  # even => symmetric
    thetas = np.arange(m) * (2.0 * math.pi / m)
    return np.column_stack([np.cos(thetas), np.sin(thetas)])


def _fibonacci_net(angle: float) -> np.ndarray:
    """Symmetrized Fibonacci sphere lattice with covering angle <= angle."""
    # A Fibonacci lattice of m points has covering radius ~ 2.4 / sqrt(m).
    m = max(8, int(math.ceil((2.6 / angle) ** 2)))
    k = np.arange(m, dtype=float)
    golden = (1.0 + math.sqrt(5.0)) / 2.0
    z = 1.0 - (2.0 * k + 1.0) / m
    r = np.sqrt(np.maximum(0.0, 1.0 - z * z))
    phi = 2.0 * math.pi * k / golden
    pts = np.column_stack([r * np.cos(phi), r * np.sin(phi), z])
    return _symmetrize(pts)


def _lattice_net(dim: int, angle: float) -> np.ndarray:
    """Normalized integer grid directions, symmetric and deduplicated."""
    # Directions u/|u| for u in {-k..k}^d cover the sphere with angle O(1/k).
    k = max(1, int(math.ceil(1.5 / angle)))
    if (2 * k + 1) ** dim > 2_000_000:
        raise ValueError(
            f"epsilon-net in dimension {dim} with eps yielding grid radius {k} "
            "is too large; increase eps"
        )
    axes = [np.arange(-k, k + 1, dtype=float)] * dim
    grid = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1).reshape(-1, dim)
    grid = grid[np.any(grid != 0.0, axis=1)]
    norms = np.linalg.norm(grid, axis=1, keepdims=True)
    dirs = grid / norms
    return _symmetrize(_dedupe(dirs))


def _dedupe(vectors: np.ndarray, decimals: int = 9) -> np.ndarray:
    rounded = np.round(vectors, decimals)
    _, keep = np.unique(rounded, axis=0, return_index=True)
    return vectors[np.sort(keep)]


def _symmetrize(vectors: np.ndarray) -> np.ndarray:
    """Ensure u in C implies -u in C (paper requires central symmetry)."""
    return _dedupe(np.vstack([vectors, -vectors]))


def nearest_net_vector(net: np.ndarray, query: np.ndarray) -> int:
    """Index of ``argmin_{h in C} ||u - h||`` (Algorithm 6, line 1).

    For unit vectors, minimizing Euclidean distance equals maximizing the
    inner product, so a single matrix-vector product suffices.
    """
    q = np.asarray(query, dtype=float)
    if q.ndim != 1 or q.shape[0] != net.shape[1]:
        raise ValueError("query must be a vector of the net's dimension")
    norm = np.linalg.norm(q)
    if norm == 0.0:
        raise ValueError("query vector must be nonzero")
    return int(np.argmax(net @ (q / norm)))


def net_covering_angle(net: np.ndarray, trials: int, rng: np.random.Generator) -> float:
    """Empirical covering angle of a net via random probes (for tests/benches)."""
    dim = net.shape[1]
    probes = rng.normal(size=(trials, dim))
    probes /= np.linalg.norm(probes, axis=1, keepdims=True)
    cos = np.clip(probes @ net.T, -1.0, 1.0).max(axis=1)
    return float(np.arccos(cos).max())
