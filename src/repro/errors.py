"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything the library raises with a single handler while still
distinguishing configuration problems from runtime ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class CapabilityError(ReproError):
    """A synopsis was asked for an operation it does not support.

    E.g. requesting ``score`` (the Pref primitive) from a synopsis built only
    for the percentile class ``F_□``.
    """


class ConstructionError(ReproError):
    """An index or synopsis could not be built from the given inputs."""


class QueryError(ReproError):
    """A query was malformed for the data structure it was issued against."""


class SnapshotError(ReproError):
    """A persisted snapshot file could not be read back.

    Raised for bad magic bytes, an unsupported container version, a
    truncated or out-of-bounds array segment, or header state that does not
    describe a loadable engine.
    """
