"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything the library raises with a single handler while still
distinguishing configuration problems from runtime ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class CapabilityError(ReproError):
    """A synopsis was asked for an operation it does not support.

    E.g. requesting ``score`` (the Pref primitive) from a synopsis built only
    for the percentile class ``F_□``.
    """


class ConstructionError(ReproError):
    """An index or synopsis could not be built from the given inputs."""


class QueryError(ReproError):
    """A query was malformed for the data structure it was issued against."""


class SnapshotError(ReproError):
    """A persisted snapshot file could not be read back.

    Raised for bad magic bytes, an unsupported container version, a
    truncated or out-of-bounds array segment, or header state that does not
    describe a loadable engine.
    """


class DeadlineExceeded(ReproError):
    """A query's deadline budget ran out before evaluation finished.

    Raised from the executor/engine checkpoint polls.  ``partial`` carries
    whatever aligned prefix of leaf answers was fully computed before the
    budget expired, so the service layer can keep the exact answers it
    already paid for and fall back to synopsis-screened bounds for the
    rest (see :mod:`repro.service.degrade`) instead of surfacing a 500.

    Attributes
    ----------
    stage:
        Where the poll fired (``"engine_leaf_batch"``, ``"shard_eval"``,
        ``"search_batch"``).
    partial:
        A list of completed results, aligned with the input prefix the
        raiser had processed; the element type is the raiser's normal
        return element (bitmaps for the engine, ``(bitmap, stamp)`` pairs
        for the executor).  Empty when nothing completed.
    """

    def __init__(
        self,
        message: str,
        stage: "str | None" = None,
        partial: "list | None" = None,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.partial = partial if partial is not None else []
