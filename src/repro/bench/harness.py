"""Small utilities shared by the benchmark scripts.

Every ``benchmarks/bench_*.py`` prints its experiment as an aligned text
table (the "rows/series the paper reports" — here, the claims of each
theorem/figure) and, where scaling shape matters, a log-log slope fit.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
import urllib.error
import urllib.request
from typing import Callable, Optional, Sequence


def http_post_json(
    url: str,
    body: bytes,
    *,
    timeout: float = 10.0,
    retries_429: int = 3,
    retry_after_cap_s: float = 5.0,
    stop: Optional[threading.Event] = None,
) -> int:
    """POST a JSON body and return the HTTP status, honoring 429 backpressure.

    The admission gate sheds overload with ``429 + Retry-After`` (see
    :mod:`repro.service.admission`); a well-behaved client treats that as
    "wait and resend", not as a failure.  This helper retries a 429 up to
    ``retries_429`` times, sleeping the server-suggested ``Retry-After``
    seconds (capped at ``retry_after_cap_s``) between sends.  Any other
    HTTP status is returned as-is (the caller decides what 4xx/5xx mean);
    transport errors propagate.  ``stop`` aborts a backoff sleep early —
    traffic loops in the chaos suites pass their shutdown event so a
    shedding server cannot delay teardown.
    """
    attempts_left = max(0, int(retries_429))
    while True:
        req = urllib.request.Request(
            url, data=body, headers={"Content-Type": "application/json"}
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return int(resp.status)
        except urllib.error.HTTPError as exc:
            if exc.code != 429 or attempts_left <= 0:
                return exc.code
            attempts_left -= 1
            try:
                delay = float(exc.headers.get("Retry-After", "1"))
            except (TypeError, ValueError):
                delay = 1.0
            delay = min(max(delay, 0.0), retry_after_cap_s)
            if stop is not None:
                if stop.wait(delay):
                    return exc.code
            else:
                time.sleep(delay)


def time_callable(fn: Callable[[], object], repeats: int = 5) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    if repeats < 1:
        raise ValueError("repeats must be positive")
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def fit_loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    Slope ~1 means linear scaling, ~0 means constant/polylog — the
    "shape" statistic used to compare our indexes with the Ω(N) baselines.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs")
    lx = [math.log(max(x, 1e-12)) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    denom = sum((a - mx) ** 2 for a in lx)
    if denom == 0.0:
        return 0.0
    return sum((a - mx) * (b - my) for a, b in zip(lx, ly)) / denom


def json_report(
    path: str, rows: Sequence[dict], meta: Optional[dict] = None
) -> str:
    """Write a machine-readable benchmark report and return its path.

    The report is ``{"meta": {...}, "rows": [...]}`` — one dict per sweep
    point, exactly the rows the text table shows — so the perf trajectory
    across PRs can be tracked by diffing ``BENCH_*.json`` files instead of
    scraping stdout.  Parent directories are created as needed; numpy
    scalars are coerced to plain Python numbers.

    Examples
    --------
    >>> import tempfile, os, json
    >>> p = os.path.join(tempfile.mkdtemp(), "BENCH_demo.json")
    >>> _ = json_report(p, [{"n": 10, "time": 0.5}], meta={"bench": "demo"})
    >>> json.load(open(p))["rows"][0]["n"]
    10
    """

    def coerce(value: object) -> object:
        if isinstance(value, dict):
            return {str(k): coerce(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [coerce(v) for v in value]
        if isinstance(value, (bool, int, float, str)) or value is None:
            return value
        if hasattr(value, "item"):  # numpy scalar
            return value.item()
        return str(value)

    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    payload = {"meta": coerce(meta or {}), "rows": [coerce(r) for r in rows]}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


class TableReporter:
    """Aligned text tables for benchmark output.

    Examples
    --------
    >>> t = TableReporter("demo", ["N", "time"])
    >>> t.add_row([10, 0.5])
    >>> t.add_row([100, 1.5])
    >>> len(t.render().splitlines()) >= 4
    True
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, values: Sequence[object]) -> None:
        """Append one row; floats are formatted compactly."""
        if len(values) != len(self.columns):
            raise ValueError("row width does not match column count")
        formatted = []
        for v in values:
            if isinstance(v, float):
                formatted.append(f"{v:.4g}")
            else:
                formatted.append(str(v))
        self.rows.append(formatted)

    def render(self) -> str:
        """The full table as a string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [f"== {self.title} ==", header, sep]
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        """Print the table followed by a blank line."""
        print(self.render())
        print()
