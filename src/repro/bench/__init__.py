"""Benchmark-harness utilities (timing, tables, scaling fits)."""

from repro.bench.harness import TableReporter, fit_loglog_slope, time_callable

__all__ = ["TableReporter", "fit_loglog_slope", "time_callable"]
