"""A Fainder-style histogram index for percentile predicates (ref. [8]).

Behme et al., "Fainder: A fast and accurate index for distribution-aware
dataset search" (PVLDB 2024) — the prior system that first defined the
Ptile problem.  Its design, per the paper's Related Work:

- each dataset is represented by per-attribute histograms (a federated
  setting with histogram synopses);
- queries are *one-sided* percentile predicates over a *single attribute*
  ("fraction of values of attribute A below/above t is at least p");
- answering collects candidate datasets by scanning percentile-sorted
  structures, with query time super-linear in N in the worst case
  (Section 4.1: "the query time is Ω(N) in the worst case");
- it cannot handle multi-attribute rectangles or two-sided intervals.

This reimplementation captures those behaviours: per-attribute cumulative
histograms, *under-* and *over-estimate* answer modes (Fainder's
approximate modes bracketing the exact answer), and an exactness gap that
the T-BASE benchmark compares against our index's guarantees.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from repro.core.results import QueryResult
from repro.errors import ConstructionError, QueryError


class FainderStyleIndex:
    """Per-attribute histogram percentile index in the style of Fainder [8].

    Parameters
    ----------
    datasets:
        Raw ``(n_i, d)`` arrays (histograms are built from them, then the
        raw data is discarded — federated storage model).
    bins:
        Histogram resolution per attribute.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> idx = FainderStyleIndex([rng.uniform(0, 1, (500, 2)) for _ in range(3)])
    >>> res = idx.query(attribute=0, op="below", threshold=0.5, fraction=0.4)
    >>> sorted(res.indexes)
    [0, 1, 2]
    """

    def __init__(self, datasets: Iterable[np.ndarray], bins: int = 32) -> None:
        data = [np.asarray(d, dtype=float) for d in datasets]
        if not data:
            raise ConstructionError("need at least one dataset")
        dims = {d.shape[1] for d in data}
        if len(dims) != 1:
            raise ConstructionError("all datasets must share a dimension")
        self.dim = dims.pop()
        if bins < 2:
            raise ConstructionError("bins must be >= 2")
        self.n_datasets = len(data)
        # Per dataset, per attribute: bin edges + cumulative mass.
        self._edges: list[list[np.ndarray]] = []
        self._cum: list[list[np.ndarray]] = []
        for d in data:
            edges_i, cum_i = [], []
            for h in range(self.dim):
                col = d[:, h]
                lo, hi = col.min(), col.max()
                if hi <= lo:
                    hi = lo + 1.0
                edges = np.linspace(lo, hi + 1e-9 * (hi - lo), bins + 1)
                counts, _ = np.histogram(col, bins=edges)
                edges_i.append(edges)
                cum_i.append(np.concatenate([[0.0], np.cumsum(counts)]) / col.size)
            self._edges.append(edges_i)
            self._cum.append(cum_i)

    # ------------------------------------------------------------------
    def _fraction_below(self, i: int, attribute: int, threshold: float, mode: str) -> float:
        """Estimated mass of attribute values ``<= threshold``.

        ``mode`` selects Fainder's bracketing estimates: ``"under"`` counts
        only fully covered bins, ``"over"`` also counts the cut bin fully,
        ``"interp"`` interpolates inside the cut bin.
        """
        edges = self._edges[i][attribute]
        cum = self._cum[i][attribute]
        if threshold < edges[0]:
            return 0.0
        if threshold >= edges[-1]:
            return 1.0
        pos = int(np.searchsorted(edges, threshold, side="right")) - 1
        pos = min(pos, len(edges) - 2)
        under = cum[pos]
        over = cum[pos + 1]
        if mode == "under":
            return float(under)
        if mode == "over":
            return float(over)
        frac = (threshold - edges[pos]) / (edges[pos + 1] - edges[pos])
        return float(under + frac * (over - under))

    def query(
        self,
        attribute: int,
        op: str,
        threshold: float,
        fraction: float,
        mode: str = "interp",
        record_times: bool = False,
    ) -> QueryResult:
        """One-sided percentile predicate over a single attribute.

        Report datasets where the fraction of values of ``attribute``
        ``below`` (``<=``) or ``above`` (``>``) ``threshold`` is at least
        ``fraction``.  ``mode ∈ {"under", "over", "interp"}`` selects the
        estimate; ``"over"`` guarantees no false negatives (full recall),
        ``"under"`` no false positives — Fainder's bracketing behaviour.

        The scan is Ω(N): every dataset's histogram is inspected.
        """
        if not 0 <= attribute < self.dim:
            raise QueryError(f"attribute {attribute} out of range")
        if op not in ("below", "above"):
            raise QueryError("op must be 'below' or 'above'")
        if mode not in ("under", "over", "interp"):
            raise QueryError("mode must be 'under', 'over' or 'interp'")
        result = QueryResult()
        if record_times:
            result.start_time = time.perf_counter()
        # For "above" queries the bracketing modes swap roles.
        below_mode = mode
        if op == "above" and mode in ("under", "over"):
            below_mode = "over" if mode == "under" else "under"
        for i in range(self.n_datasets):
            below = self._fraction_below(i, attribute, threshold, below_mode)
            value = below if op == "below" else 1.0 - below
            if value >= fraction:
                result.indexes.append(i)
                if record_times:
                    result.emit_times.append(time.perf_counter())
        if record_times:
            result.end_time = time.perf_counter()
        return result

    def supports_rectangles(self) -> bool:
        """Fainder cannot answer multi-attribute rectangle predicates."""
        return False

    def supports_two_sided(self) -> bool:
        """Fainder supports only one-sided percentile predicates."""
        return False
