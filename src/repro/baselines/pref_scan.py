"""The naive exact baseline for Pref queries: per-dataset partial sort.

Given a query vector, compute ``omega_k(P_i, v)`` exactly for every dataset
by projecting and selecting the k-th largest value — exact, but Ω(total
points) per query regardless of output size.  Comparator for T-5.4.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from repro.core.results import QueryResult
from repro.errors import ConstructionError, QueryError


class LinearScanPref:
    """Exact Pref answering by scanning all datasets.

    Examples
    --------
    >>> import numpy as np
    >>> base = LinearScanPref([np.array([[1.0, 0.0], [0.5, 0.5]])])
    >>> base.query(np.array([1.0, 0.0]), k=1, a_theta=0.9).indexes
    [0]
    """

    def __init__(self, datasets: Iterable[np.ndarray]) -> None:
        self._datasets = [np.asarray(d, dtype=float) for d in datasets]
        if not self._datasets:
            raise ConstructionError("need at least one dataset")
        dims = {d.shape[1] for d in self._datasets}
        if len(dims) != 1:
            raise ConstructionError("all datasets must share a dimension")
        self.dim = dims.pop()

    @property
    def n_datasets(self) -> int:
        """``N``."""
        return len(self._datasets)

    def score(self, i: int, vector: np.ndarray, k: int) -> float:
        """Exact ``omega_k(P_i, v)``; ``-inf`` when ``k > n_i``."""
        pts = self._datasets[i]
        if k > pts.shape[0]:
            return float("-inf")
        proj = pts @ vector
        return float(np.partition(proj, pts.shape[0] - k)[pts.shape[0] - k])

    def query(
        self,
        vector: np.ndarray,
        k: int,
        a_theta: float,
        record_times: bool = False,
    ) -> QueryResult:
        """Exact one-predicate Pref query — Ω(total points) time."""
        v = np.asarray(vector, dtype=float)
        if v.shape != (self.dim,):
            raise QueryError(f"vector must have shape ({self.dim},)")
        norm = np.linalg.norm(v)
        if norm == 0.0:
            raise QueryError("vector must be nonzero")
        v = v / norm
        if k < 1:
            raise QueryError("k must be >= 1")
        result = QueryResult()
        if record_times:
            result.start_time = time.perf_counter()
        for i in range(self.n_datasets):
            if self.score(i, v, k) >= a_theta:
                result.indexes.append(i)
                if record_times:
                    result.emit_times.append(time.perf_counter())
        if record_times:
            result.end_time = time.perf_counter()
        return result
