"""The naive exact baseline for Ptile queries (Section 4.1).

"For every dataset ``P_i`` construct a range tree to answer range counting
queries.  Given a query predicate the naive solution goes through each
dataset and computes ``|R ∩ P_i| / |P_i|``" — exact, but with Ω(N) query
time regardless of the output size.  This is the comparator for the
T-4.4/T-BASE benchmarks.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from repro.core.results import QueryResult
from repro.errors import ConstructionError, QueryError
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.index.kd_tree import DynamicKDTree
from repro.index.query_box import QueryBox


class LinearScanPtile:
    """Exact Ptile answering by per-dataset range counting.

    Parameters
    ----------
    datasets:
        Raw ``(n_i, d)`` arrays.
    mode:
        ``"tree"`` — one kd-tree per dataset, count in ``O(polylog n_i)``
        per dataset (the paper's baseline); ``"numpy"`` — vectorized direct
        counting (no index; still Ω(total points) per query).

    Examples
    --------
    >>> import numpy as np
    >>> base = LinearScanPtile([np.array([[0.2], [0.8]]), np.array([[0.9]])])
    >>> base.query(Rectangle([0.0], [0.5]), Interval(0.4, 1.0)).indexes
    [0]
    """

    def __init__(self, datasets: Iterable[np.ndarray], mode: str = "tree") -> None:
        self._datasets = [np.asarray(d, dtype=float) for d in datasets]
        if not self._datasets:
            raise ConstructionError("need at least one dataset")
        dims = {d.shape[1] for d in self._datasets}
        if len(dims) != 1:
            raise ConstructionError("all datasets must share a dimension")
        self.dim = dims.pop()
        if mode not in ("tree", "numpy"):
            raise ConstructionError(f"unknown mode {mode!r}")
        self.mode = mode
        self._trees = (
            [DynamicKDTree(d) for d in self._datasets] if mode == "tree" else None
        )

    @property
    def n_datasets(self) -> int:
        """``N``."""
        return len(self._datasets)

    def mass(self, i: int, rect: Rectangle) -> float:
        """Exact ``M_R(P_i)``."""
        if self.mode == "tree":
            box = QueryBox.closed(rect.lo, rect.hi)
            count = self._trees[i].count(box)
        else:
            count = rect.count_inside(self._datasets[i])
        return count / self._datasets[i].shape[0]

    def query(
        self, rect: Rectangle, theta: Interval, record_times: bool = False
    ) -> QueryResult:
        """Exact ``q_Pi(P)`` for one range-predicate — Ω(N) time."""
        if rect.dim != self.dim:
            raise QueryError("query rectangle dimension mismatch")
        result = QueryResult()
        if record_times:
            result.start_time = time.perf_counter()
        for i in range(self.n_datasets):
            if self.mass(i, rect) in theta:
                result.indexes.append(i)
                if record_times:
                    result.emit_times.append(time.perf_counter())
        if record_times:
            result.end_time = time.perf_counter()
        return result

    def query_conjunction(
        self,
        rects: Sequence[Rectangle],
        thetas: Sequence[Interval],
        record_times: bool = False,
    ) -> QueryResult:
        """Exact conjunction of m range-predicates — Ω(mN) time."""
        if len(rects) != len(thetas) or not rects:
            raise QueryError("need equally many rectangles and intervals")
        result = QueryResult()
        if record_times:
            result.start_time = time.perf_counter()
        for i in range(self.n_datasets):
            if all(self.mass(i, r) in t for r, t in zip(rects, thetas)):
                result.indexes.append(i)
                if record_times:
                    result.emit_times.append(time.perf_counter())
        if record_times:
            result.end_time = time.perf_counter()
        return result
