"""Baselines the paper compares against (Section 4.1).

- :class:`~repro.baselines.linear_scan.LinearScanPtile` — the "naive"
  baseline: one range-counting structure per dataset; exact, but Ω(N) per
  query.
- :class:`~repro.baselines.fainder.FainderStyleIndex` — a reimplementation
  of the histogram-based federated percentile index of Behme et al. [8]
  (one-sided predicates over single attributes; query time super-linear in
  N in the worst case).
- :class:`~repro.baselines.pref_scan.LinearScanPref` — the Ω(N) exact
  baseline for preference queries.
"""

from repro.baselines.linear_scan import LinearScanPtile
from repro.baselines.fainder import FainderStyleIndex
from repro.baselines.pref_scan import LinearScanPref

__all__ = ["LinearScanPtile", "FainderStyleIndex", "LinearScanPref"]
