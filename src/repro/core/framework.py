"""Datasets and repositories (Section 1.1, "Dataset" and "Repository").

A *dataset* is a finite set of numerical d-tuples over a schema; a
*repository* is a collection of datasets sharing a schema.  These are thin,
validated wrappers around numpy arrays: all algorithmic work happens in the
index classes, which consume either raw datasets (centralized setting) or
synopses (federated setting).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import ConstructionError
from repro.geometry.rectangle import Rectangle


class Dataset:
    """A named dataset ``P ⊂ R^d`` with an attribute schema.

    Parameters
    ----------
    points:
        ``(n, d)`` array of numerical tuples.
    name:
        Human-readable identifier (e.g. the source file of a data-lake
        table).
    schema:
        Attribute names ``(A_1, ..., A_d)``; defaults to ``x0..x{d-1}``.

    Examples
    --------
    >>> import numpy as np
    >>> ds = Dataset(np.array([[1.0, 2.0], [3.0, 4.0]]), name="crime-nyc")
    >>> ds.size, ds.dim
    (2, 2)
    """

    def __init__(
        self,
        points: np.ndarray,
        name: Optional[str] = None,
        schema: Optional[Sequence[str]] = None,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ConstructionError("a dataset must be a non-empty (n, d) array")
        if not np.all(np.isfinite(pts)):
            raise ConstructionError("dataset entries must be finite numbers")
        self.points = pts
        self.name = name if name is not None else "dataset"
        if schema is None:
            schema = tuple(f"x{h}" for h in range(pts.shape[1]))
        else:
            schema = tuple(schema)
            if len(schema) != pts.shape[1]:
                raise ConstructionError(
                    f"schema has {len(schema)} attributes but data has "
                    f"{pts.shape[1]} columns"
                )
        self.schema = schema

    @property
    def size(self) -> int:
        """``n_i = |P_i|``."""
        return int(self.points.shape[0])

    @property
    def dim(self) -> int:
        """``d``."""
        return int(self.points.shape[1])

    def percentile_mass(self, rect: Rectangle) -> float:
        """Exact ``M_R(P) = |P ∩ R| / |P|``."""
        return rect.count_inside(self.points) / self.size

    def kth_score(self, vector: np.ndarray, k: int) -> float:
        """Exact ``omega_k(P, v)``; ``-inf`` if ``k > |P|``."""
        v = np.asarray(vector, dtype=float)
        norm = np.linalg.norm(v)
        if norm == 0.0:
            raise ValueError("preference vector must be nonzero")
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > self.size:
            return float("-inf")
        proj = self.points @ (v / norm)
        return float(np.partition(proj, self.size - k)[self.size - k])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset({self.name!r}, n={self.size}, d={self.dim})"


class Repository:
    """An ordered collection of datasets sharing a schema (``P``).

    Datasets are addressed by their integer index ``i ∈ [N]`` exactly as in
    the paper; names are kept for presentation.

    Examples
    --------
    >>> import numpy as np
    >>> repo = Repository([Dataset(np.zeros((3, 2)) + i) for i in range(4)])
    >>> repo.n_datasets, repo.total_points
    (4, 12)
    """

    def __init__(self, datasets: Iterable[Dataset]) -> None:
        self.datasets = list(datasets)
        if not self.datasets:
            raise ConstructionError("a repository must contain at least one dataset")
        dim = self.datasets[0].dim
        schema = self.datasets[0].schema
        for ds in self.datasets[1:]:
            if ds.dim != dim:
                raise ConstructionError(
                    "all datasets in a repository must share the same dimension"
                )
            if ds.schema != schema:
                raise ConstructionError(
                    "all datasets in a repository must share the same schema"
                )

    @staticmethod
    def from_arrays(
        arrays: Iterable[np.ndarray],
        names: Optional[Sequence[str]] = None,
        schema: Optional[Sequence[str]] = None,
    ) -> "Repository":
        """Build a repository from raw ``(n_i, d)`` arrays."""
        arrays = list(arrays)
        if names is None:
            names = [f"dataset-{i}" for i in range(len(arrays))]
        return Repository(
            [Dataset(a, name=n, schema=schema) for a, n in zip(arrays, names)]
        )

    @property
    def n_datasets(self) -> int:
        """``N``."""
        return len(self.datasets)

    @property
    def dim(self) -> int:
        """``d``."""
        return self.datasets[0].dim

    @property
    def schema(self) -> tuple[str, ...]:
        """The shared attribute schema."""
        return self.datasets[0].schema

    @property
    def total_points(self) -> int:
        """``N_total = sum_i n_i`` (the paper's script N)."""
        return sum(ds.size for ds in self.datasets)

    def __len__(self) -> int:
        return len(self.datasets)

    def __getitem__(self, index: int) -> Dataset:
        return self.datasets[index]

    def __iter__(self) -> Iterator[Dataset]:
        return iter(self.datasets)

    def bounding_box(self, pad_fraction: float = 0.05) -> Rectangle:
        """A bounding box ``B`` of all points, padded by a span fraction."""
        all_lo = np.min([ds.points.min(axis=0) for ds in self.datasets], axis=0)
        all_hi = np.max([ds.points.max(axis=0) for ds in self.datasets], axis=0)
        span = np.where(all_hi > all_lo, all_hi - all_lo, 1.0)
        pad = pad_fraction * span
        return Rectangle(all_lo - pad, all_hi + pad)
