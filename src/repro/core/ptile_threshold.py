"""Approximate Ptile index for threshold-predicates (Section 4.2).

Implements Algorithms 1 (construction) and 2 (query) and therefore
Theorem 4.4: ``~O(N)`` space and preprocessing, ``~O(1 + OUT)`` query time,
and for ``theta = [a_theta, 1]`` the returned set ``J`` satisfies

- (recall)    ``q_Pi(P) ⊆ J`` with probability ``>= 1 - phi``, and
- (precision) every ``j ∈ J`` has ``M_R(P_j) >= a_theta - 2 eps' - 2 delta_j``
  where ``eps'`` is the coreset sampling error (Lemma 4.2; the theorem
  statement folds the factor 2 away by halving eps upfront).

Construction maps every combinatorially different rectangle ``rho`` of every
coreset to the point ``(rho^-, rho^+, w + delta_i) ∈ R^{2d+1}`` — weight as
an extra coordinate, shifted by the per-dataset synopsis error so that
Remark 2's unknown-deltas setting works with a single structure.  A query
``(R, a_theta)`` becomes the orthant of Algorithm 2 crossed with
``[a_theta - eps, inf)`` on the weight coordinate.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core._ptile_common import (
    PtileIndexBase,
    build_engine,
    draw_coreset,
    threshold_point_matrix,
)
from repro.core.results import QueryResult
from repro.errors import ConstructionError, QueryError
from repro.geometry.interval import Interval
from repro.geometry.rect_enum import RectangleGrid, rectangles_arrays
from repro.geometry.rectangle import Rectangle
from repro.index.query_box import QueryBox
from repro.synopsis.base import Synopsis

#: Sentinel "empty rectangle" coordinates: lo >= any R^- and hi <= any R^+,
#: so the sentinel point lies in every query orthant.
_SENTINEL_LO = 1e300
_SENTINEL_HI = -1e300


class PtileThresholdIndex(PtileIndexBase):
    """The Ptile data structure for one threshold-predicate (Theorem 4.4).

    Parameters
    ----------
    synopses:
        One synopsis per dataset, all of the same dimension.  Use
        :class:`~repro.synopsis.exact.ExactSynopsis` for the centralized
        setting (``delta = 0``).
    eps:
        Coreset accuracy parameter (the paper's ``eps``).
    phi:
        Failure probability for the coreset union bound; default ``1/N``.
    delta:
        Optional global synopsis-error bound overriding the per-synopsis
        advertised ``delta_ptile`` values.
    sample_size:
        Optional explicit coreset size (overrides the eps/phi bound).
    engine:
        Range-search backend: ``"kd"`` (default, dynamic),
        ``"columnar"`` (vectorized scans, dynamic, fastest at scale) or
        ``"rangetree"`` (static, faithful textbook range tree; practical
        only at small scale).  See :mod:`repro.index.backend`.
    leaf_size:
        kd-tree leaf size.
    rng:
        Source of randomness for coreset sampling.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.synopsis import ExactSynopsis
    >>> rng = np.random.default_rng(0)
    >>> data = [rng.uniform(0, 1, size=(500, 1)) for _ in range(8)]
    >>> idx = PtileThresholdIndex([ExactSynopsis(p) for p in data], eps=0.1, rng=rng)
    >>> res = idx.query(Rectangle([0.0], [1.0]), a_theta=0.5)
    >>> sorted(res.indexes)
    [0, 1, 2, 3, 4, 5, 6, 7]
    """

    def __init__(
        self,
        synopses: Iterable[Synopsis],
        eps: float = 0.1,
        phi: Optional[float] = None,
        delta: Optional[float] = None,
        sample_size: Optional[int] = None,
        engine: str = "kd",
        leaf_size: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(synopses, eps, phi, delta, sample_size, engine, leaf_size, rng)
        all_points: list[np.ndarray] = []
        all_ids: list = []
        for synopsis, delta_i in self._pending:
            key = self._register(synopsis, delta_i)
            pts, ids = self._mapped_points(key)
            all_points.append(pts)
            all_ids.extend(ids)
        del self._pending
        self._tree = build_engine(
            np.vstack(all_points), all_ids, self.engine_kind, self._leaf_size
        )

    # ------------------------------------------------------------------
    # Construction (Algorithm 1)
    # ------------------------------------------------------------------
    def _register(self, synopsis: Synopsis, delta_i: float) -> int:
        key = self._next_key
        self._next_key += 1
        self._synopses[key] = synopsis
        self._deltas[key] = delta_i
        self._coresets[key] = draw_coreset(synopsis, self._sample_size, self._rng)
        return key

    def _mapped_points(self, key: int) -> tuple[np.ndarray, list]:
        """Map every coreset rectangle to ``(rho^-, rho^+, w + delta_i)``.

        One extra *sentinel* point per dataset represents the empty
        rectangle (inner constraints vacuously satisfied for every query,
        weight ``0 + delta_i``): a dataset whose coreset entirely misses the
        query region must still be reported whenever
        ``a_theta - eps - delta_i <= 0`` — a corner case Lemma 4.1 glosses
        by assuming a largest rectangle inside ``R`` exists.  The sentinel
        never harms precision: if it matches, ``a_theta <= eps + delta_i``,
        and every dataset trivially satisfies the Lemma 4.2 bound then.
        """
        grid = RectangleGrid(self._coresets[key])
        delta_i = self._deltas[key]
        lo, hi, weights = rectangles_arrays(grid)
        rect_pts = threshold_point_matrix(lo, hi, weights, delta_i)
        sentinel = np.concatenate(
            [
                np.full(self.dim, _SENTINEL_LO),
                np.full(self.dim, _SENTINEL_HI),
                [0.0 + delta_i],
            ]
        )
        # rect_pts is correctly shaped even for zero rectangles, so the
        # sentinel stack never sees a ragged array.
        pts = np.vstack([rect_pts, sentinel[None, :]])
        ids = [(key, local) for local in range(pts.shape[0])]
        self._point_ids[key] = ids
        return pts, ids

    # ------------------------------------------------------------------
    # Query (Algorithm 2)
    # ------------------------------------------------------------------
    def _query_box(self, rect: Rectangle, a_theta: float) -> QueryBox:
        """Validate one ``(R, a_theta)`` query and build its Algorithm-2 box."""
        self._check_query_rect(rect)
        if not 0.0 <= a_theta <= 1.0:
            raise QueryError(f"a_theta must be in [0, 1], got {a_theta}")
        cons = rect.query_orthant_2d()
        cons.append((a_theta - self.eps_effective, math.inf, False, False))
        return QueryBox(cons)

    def query(
        self,
        rect: Rectangle,
        a_theta: float,
        record_times: bool = False,
    ) -> QueryResult:
        """Report all datasets with (approximately) ``M_R(P_i) >= a_theta``.

        Returns a :class:`~repro.core.results.QueryResult` whose index set
        ``J`` satisfies the Theorem 4.4 guarantees.
        """
        return self._report_loop(self._query_box(rect, a_theta), record_times)

    def query_many(
        self, queries: Sequence[tuple[Rectangle, float]]
    ) -> list[QueryResult]:
        """Answer a batch of ``(rect, a_theta)`` queries in one backend call.

        Batched, untimed form of :meth:`query` (identical answer sets);
        all boxes go through the backend's multi-box kernel at once.
        """
        boxes = [self._query_box(rect, a) for rect, a in queries]
        return self._report_groups_batch(boxes)

    def query_expression(self, rect: Rectangle, theta: Interval, **kwargs) -> QueryResult:
        """Interval-flavoured entry point (requires a threshold interval)."""
        if not theta.is_threshold:
            raise QueryError(
                "PtileThresholdIndex supports one-sided theta = [a, 1]; use "
                "PtileRangeIndex for general intervals"
            )
        return self.query(rect, theta.lo, **kwargs)

    # ------------------------------------------------------------------
    # Dynamics (Remark 1 after Theorem 4.4/4.11)
    # ------------------------------------------------------------------
    def insert_synopsis(
        self, synopsis: Synopsis, delta: Optional[float] = None
    ) -> int:
        """Add a dataset; returns its stable key.  ``~O(1)`` amortized."""
        if not self._tree.supports_insert:
            raise ConstructionError(
                f"engine {self.engine_kind!r} is static; dynamic updates "
                "require a dynamic backend ('kd' or 'columnar')"
            )
        if synopsis.dim != self.dim:
            raise ConstructionError("synopsis dimension mismatch")
        if delta is None:
            delta = synopsis.delta_ptile
            if delta is None:
                raise ConstructionError("synopsis does not support class F_□")
        key = self._register(synopsis, float(delta))
        pts, ids = self._mapped_points(key)
        self._tree.insert(pts, ids)
        return key

    def delete_synopsis(self, key: int) -> None:
        """Remove a dataset by key.  ``~O(1)`` amortized per mapped point."""
        if key not in self._synopses:
            raise KeyError(f"unknown dataset key {key}")
        for pid in self._point_ids[key]:
            self._tree.remove(pid)
        del self._synopses[key], self._deltas[key]
        del self._coresets[key], self._point_ids[key]

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def coreset_mass(self, key: int, rect: Rectangle) -> float:
        """``|S_i ∩ R| / |S_i|`` — the coreset's estimate of ``M_R(P_i)``."""
        coreset = self._coresets[key]
        return rect.count_inside(coreset) / coreset.shape[0]
