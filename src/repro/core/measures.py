"""Measure functions (Section 1.1, "Measure Function"; Section 1.2).

A measure function ``M`` maps a dataset to a real number.  The paper studies
two classes:

- ``F_□`` — percentile measures ``M_R(P) = |P ∩ R| / |P|`` over axis-parallel
  rectangles ``R``;
- ``F_k`` — top-k preference measures ``M_{v,k}(P) = omega_k(P, v)``, the
  k-th largest inner product with a unit vector ``v``.

Each measure can be evaluated on a raw :class:`~repro.core.framework.Dataset`
(exactly) or on a :class:`~repro.synopsis.base.Synopsis` (approximately,
within the synopsis' ``delta``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.framework import Dataset
from repro.geometry.rectangle import Rectangle
from repro.synopsis.base import Synopsis


class MeasureFunction(ABC):
    """Abstract measure function ``M(P) -> R``."""

    #: Class tag: "ptile" for F_□, "pref" for F_k.  Used by the query router.
    measure_class: str = "abstract"

    @abstractmethod
    def evaluate(self, dataset: Dataset) -> float:
        """Exact value ``M(P)`` on a raw dataset."""

    @abstractmethod
    def evaluate_synopsis(self, synopsis: Synopsis) -> float:
        """Approximate value ``M(S_P)`` on a synopsis."""

    @abstractmethod
    def canonical_key(self) -> tuple:
        """A hashable key identifying this measure up to semantic equality.

        Two measures with equal keys evaluate identically on every dataset;
        the service-layer planner uses the key to deduplicate predicate
        leaves within and across query batches.
        """


class PercentileMeasure(MeasureFunction):
    """``M_R(P) = |P ∩ R| / |P|`` for an axis-parallel rectangle ``R``.

    Examples
    --------
    >>> import numpy as np
    >>> m = PercentileMeasure(Rectangle([0.0], [1.0]))
    >>> m.evaluate(Dataset(np.array([[0.5], [2.0]])))
    0.5
    """

    measure_class = "ptile"

    def __init__(self, rect: Rectangle) -> None:
        self.rect = rect

    @property
    def dim(self) -> int:
        """Ambient dimension of the query rectangle."""
        return self.rect.dim

    def evaluate(self, dataset: Dataset) -> float:
        if dataset.dim != self.rect.dim:
            raise ValueError("measure and dataset dimensions differ")
        return dataset.percentile_mass(self.rect)

    def evaluate_synopsis(self, synopsis: Synopsis) -> float:
        return synopsis.mass(self.rect)

    def canonical_key(self) -> tuple:
        return (
            "ptile",
            tuple(float(x) for x in self.rect.lo),
            tuple(float(x) for x in self.rect.hi),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PercentileMeasure({self.rect!r})"


class PreferenceMeasure(MeasureFunction):
    """``M_{v,k}(P) = omega_k(P, v)`` — the k-th largest projection on ``v``.

    The vector is normalized at construction (the paper assumes unit
    vectors).

    Examples
    --------
    >>> import numpy as np
    >>> m = PreferenceMeasure(np.array([1.0, 0.0]), k=1)
    >>> m.evaluate(Dataset(np.array([[1.0, 5.0], [3.0, 0.0]])))
    3.0
    """

    measure_class = "pref"

    def __init__(self, vector: np.ndarray, k: int) -> None:
        v = np.asarray(vector, dtype=float)
        if v.ndim != 1:
            raise ValueError("preference vector must be 1-dimensional")
        norm = np.linalg.norm(v)
        if norm == 0.0:
            raise ValueError("preference vector must be nonzero")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.vector = v / norm
        self.k = int(k)

    @property
    def dim(self) -> int:
        """Ambient dimension of the preference vector."""
        return int(self.vector.shape[0])

    def evaluate(self, dataset: Dataset) -> float:
        return dataset.kth_score(self.vector, self.k)

    def evaluate_synopsis(self, synopsis: Synopsis) -> float:
        return synopsis.score(self.vector, self.k)

    def canonical_key(self) -> tuple:
        return ("pref", self.k, tuple(float(x) for x in self.vector))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PreferenceMeasure(v={np.round(self.vector, 3)}, k={self.k})"
