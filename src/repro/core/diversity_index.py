"""Distribution-aware diversity indexing (Section 6 extension).

Section 6: *"For diversity queries: given a query rectangle R and a
threshold tau, return all datasets P_j such that div(P_j ∩ R) >= tau."*
We instantiate ``div`` as the **diameter** (max pairwise distance, the
classic remote-edge diversity of [33]) and use r-covers as the coreset.

Estimator: for dataset ``j`` with cover ``C_j ⊆ P_j`` of radius ``r_j``,

    est_j(R) = diam( C_j ∩ R^{+r_j} )

where ``R^{+r}`` expands every side of ``R`` by ``r``.  Sandwich bounds
(proved in the docstring of :meth:`DiversityIndex.query` and verified by
tests):

- ``est_j >= diam(P_j ∩ R) - 2 r_j`` — every diameter-realizing pair of
  ``P_j ∩ R`` has cover representatives within ``r_j``, which land inside
  ``R^{+r_j}``;
- ``est_j <= diam(P_j ∩ R^{+2 r_j})`` — cover points are data points, and
  points of ``R^{+r}`` are within ``r`` of ... themselves; the estimate can
  only pick up genuine data spread just outside ``R``.

So reporting ``est_j >= tau - 2 r_j`` gives full recall with respect to the
exact predicate and precision within the additive, boundary-blurred band —
the Section 6 flavour of the paper's ``eps + 2 delta`` slack.

Candidate generation reuses the merged cover kd-tree: only datasets with at
least one cover point in ``R^{+r}`` can have positive diameter, so the scan
is output-sensitive in the number of datasets *touching* the region rather
than ``N``.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from repro.core.results import QueryResult
from repro.errors import ConstructionError, QueryError
from repro.geometry.rectangle import Rectangle
from repro.index.kd_tree import DynamicKDTree
from repro.index.query_box import QueryBox
from repro.synopsis.cover import CoverSynopsis


def diameter(points: np.ndarray) -> float:
    """Exact diameter of a (small) point set; 0 for fewer than two points."""
    pts = np.asarray(points, dtype=float)
    if pts.shape[0] < 2:
        return 0.0
    # O(m^2) pairwise distances; covers are small by construction.
    diff = pts[:, None, :] - pts[None, :, :]
    return float(np.sqrt((diff ** 2).sum(axis=2)).max())


class DiversityIndex:
    """Report datasets whose diameter inside a query rectangle is >= tau.

    Parameters
    ----------
    covers:
        One :class:`~repro.synopsis.cover.CoverSynopsis` per dataset.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(2)
    >>> spread = rng.uniform(0.0, 1.0, size=(300, 2))
    >>> tight = rng.uniform(0.45, 0.55, size=(300, 2))
    >>> idx = DiversityIndex([CoverSynopsis(spread, 0.05),
    ...                       CoverSynopsis(tight, 0.05)])
    >>> res = idx.query(Rectangle([0.0, 0.0], [1.0, 1.0]), tau=0.8)
    >>> res.index_set
    {0}
    """

    def __init__(self, covers: Iterable[CoverSynopsis]) -> None:
        self._covers: dict[int, CoverSynopsis] = {}
        cover_list = list(covers)
        if not cover_list:
            raise ConstructionError("need at least one cover synopsis")
        dims = {c.dim for c in cover_list}
        if len(dims) != 1:
            raise ConstructionError("all covers must share the same dimension")
        self.dim = dims.pop()
        rows, ids = [], []
        for key, cov in enumerate(cover_list):
            if cov.dim != self.dim:
                raise ConstructionError("cover dimension mismatch")
            self._covers[key] = cov
            for local, point in enumerate(cov.cover_points):
                rows.append(point)
                ids.append((key, local))
        self._tree = DynamicKDTree(np.asarray(rows), ids=ids)

    @property
    def n_datasets(self) -> int:
        """Number of indexed datasets."""
        return len(self._covers)

    def estimate(self, key: int, rect: Rectangle) -> float:
        """``est_j(R) = diam(C_j ∩ R^{+r_j})`` for one dataset."""
        cov = self._covers[key]
        expanded = Rectangle(rect.lo - cov.radius, rect.hi + cov.radius)
        inside = cov.cover_points[expanded.contains_points(cov.cover_points)]
        return diameter(inside)

    def query(
        self, rect: Rectangle, tau: float, record_times: bool = False
    ) -> QueryResult:
        """Report datasets with (approximately) ``diam(P_j ∩ R) >= tau``.

        Guarantee: every dataset with exact diameter ``>= tau`` is
        reported; every reported dataset has
        ``diam(P_j ∩ R^{+2 r_j}) >= tau - 4 r_j`` (estimator sandwich plus
        the reporting slack ``2 r_j``).
        """
        if rect.dim != self.dim:
            raise QueryError("query rectangle dimension mismatch")
        if tau < 0.0:
            raise QueryError("tau must be non-negative")
        result = QueryResult()
        if record_times:
            result.start_time = time.perf_counter()
        # Candidates: datasets with a cover point near R.
        max_r = max(c.radius for c in self._covers.values())
        box = QueryBox.closed(rect.lo - max_r, rect.hi + max_r)
        candidates = self._tree.report_groups(box)
        for key in sorted(candidates):
            r_j = self._covers[key].radius
            if self.estimate(key, rect) >= tau - 2.0 * r_j:
                result.indexes.append(key)
                if record_times:
                    result.emit_times.append(time.perf_counter())
        if record_times:
            result.end_time = time.perf_counter()
        result.stats["candidates"] = len(candidates)
        return result
