"""Ptile index for logical expressions of m range-predicates (App. C.4).

Theorem C.8 extends the range structure to conjunctions (and disjunctions)
of ``m = O(1)`` range-predicates by mapping *m-tuples* of maximal pairs to
points in ``R^{4md}`` carrying ``m`` weights.  Two strategies are provided:

- ``"tensor"`` — the paper's construction verbatim: per dataset, every
  m-tuple of maximal pairs becomes one mapped point (``O(s^{2dm})`` points
  per dataset); a conjunctive query concatenates the m orthants and the m
  weight intervals and runs the usual ReportFirst/delete loop.  Faithful and
  output-sensitive, but exponential in ``m`` — intended for small coresets
  (it is cross-validated against the composed strategy in the tests).
- ``"compose"`` (default) — evaluate each predicate with the single-
  predicate range structure and combine index sets (intersection for
  conjunction, union for disjunction).  This preserves both Theorem C.8
  guarantees — recall (each leaf's output is a superset of its exact set)
  and per-leaf precision (every survivor passed every leaf's filter) — at
  the cost of intermediate outputs possibly exceeding the final ``OUT``
  (the paper builds the tensor exactly to avoid this).

Arbitrary and/or trees are supported by recursive set combination; the
tensor fast path handles pure conjunctions.
"""

from __future__ import annotations

import math
import time
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.measures import PercentileMeasure
from repro.core.predicates import And, Expression, Or, Predicate
from repro.core.ptile_range import PtileRangeIndex
from repro.core.results import QueryResult
from repro.errors import ConstructionError, QueryError
from repro.geometry.interval import Interval
from repro.geometry.rect_enum import (
    RectangleGrid,
    _product_option_indices,
    generalized_pairs_arrays,
)
from repro.geometry.rectangle import Rectangle
from repro.index.backend import build_backend
from repro.index.kd_tree import DynamicKDTree
from repro.index.query_box import QueryBox
from repro.synopsis.base import Synopsis

#: Refuse tensor constructions beyond this many mapped points.
MAX_TENSOR_POINTS = 1_000_000


class PtileLogicalIndex:
    """Ptile structure for logical expressions over range-predicates.

    Parameters
    ----------
    synopses, eps, phi, delta, sample_size, bounding_box, rng:
        As in :class:`~repro.core.ptile_range.PtileRangeIndex` (a range
        index over the same coresets backs the composed strategy).
    strategy:
        ``"compose"`` (default) or ``"tensor"`` — see module docstring.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.predicates import pred
    >>> from repro.synopsis import ExactSynopsis
    >>> rng = np.random.default_rng(3)
    >>> data = [rng.uniform(0, 1, size=(300, 1)) for _ in range(5)]
    >>> idx = PtileLogicalIndex([ExactSynopsis(p) for p in data], eps=0.1, rng=rng)
    >>> expr = (pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.3, 0.7)
    ...         & pred(PercentileMeasure(Rectangle([0.5], [1.0])), 0.3, 0.7))
    >>> len(idx.query(expr).indexes)
    5
    """

    def __init__(
        self,
        synopses: Iterable[Synopsis],
        eps: float = 0.1,
        phi: Optional[float] = None,
        delta: Optional[float] = None,
        sample_size: Optional[int] = None,
        bounding_box: Optional[Rectangle] = None,
        strategy: str = "compose",
        engine: str = "kd",
        leaf_size: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if strategy not in ("compose", "tensor"):
            raise ConstructionError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self._range_index = PtileRangeIndex(
            synopses,
            eps=eps,
            phi=phi,
            delta=delta,
            sample_size=sample_size,
            bounding_box=bounding_box,
            engine=engine,
            leaf_size=leaf_size,
            rng=rng,
        )
        self.eps = self._range_index.eps
        self.eps_effective = self._range_index.eps_effective
        self.dim = self._range_index.dim
        self.engine_kind = self._range_index.engine_kind
        self._leaf_size = leaf_size
        # Tensor structures are built lazily, keyed by m.
        self._tensor_trees: dict[int, DynamicKDTree] = {}
        self._tensor_ids: dict[int, dict[int, list]] = {}

    @property
    def range_index(self) -> PtileRangeIndex:
        """The backing single-predicate range structure."""
        return self._range_index

    @property
    def n_datasets(self) -> int:
        """Number of indexed datasets."""
        return self._range_index.n_datasets

    # ------------------------------------------------------------------
    # Expression interface (compose strategy + and/or recursion)
    # ------------------------------------------------------------------
    def query(self, expression: Expression, record_times: bool = False) -> QueryResult:
        """Evaluate an arbitrary and/or expression over percentile predicates."""
        result = QueryResult()
        if record_times:
            result.start_time = time.perf_counter()
        if self.strategy == "tensor" and _is_pure_conjunction(expression):
            leaves = list(expression.leaves())
            rects = [_leaf_rect(leaf) for leaf in leaves]
            thetas = [leaf.theta for leaf in leaves]
            inner = self.query_conjunction_tensor(rects, thetas)
            result.indexes = inner.indexes
            result.stats = inner.stats
        else:
            result.indexes = sorted(self._eval(expression))
        if record_times:
            result.end_time = time.perf_counter()
            result.emit_times = [result.end_time] * len(result.indexes)
        return result

    def _eval(self, expression: Expression) -> set[int]:
        if isinstance(expression, Predicate):
            rect = _leaf_rect(expression)
            return self._range_index.query(rect, expression.theta).index_set
        if isinstance(expression, And):
            sets = [self._eval(c) for c in expression.children]
            return set.intersection(*sets)
        if isinstance(expression, Or):
            sets = [self._eval(c) for c in expression.children]
            return set.union(*sets)
        raise QueryError(f"unsupported expression node {type(expression).__name__}")

    # ------------------------------------------------------------------
    # Tensor strategy (the paper's Appendix C.4 construction)
    # ------------------------------------------------------------------
    def _build_tensor(self, m: int) -> None:
        """Materialize the m-fold tensor structure over maximal pairs.

        Vectorized: each dataset's pair family arrives as one ``(P, 4d)``
        coordinate matrix (plus weights), and the ``P^m`` tensor rows are
        assembled with stride-indexed block writes — same row order and
        float values as the old per-combination ``itertools.product`` /
        ``np.concatenate`` loop, at NumPy speed.
        """
        ri = self._range_index
        per_dataset: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        total = 0
        for key in ri.keys:
            grid = RectangleGrid(ri.coreset(key), bounding_box=ri.bounding_box)
            in_lo, in_hi, out_lo, out_hi, weights = generalized_pairs_arrays(grid)
            coords = np.hstack([in_lo, out_lo, in_hi, out_hi])
            per_dataset[key] = (coords, weights)
            total += coords.shape[0] ** m
        if total > MAX_TENSOR_POINTS:
            raise ConstructionError(
                f"tensor construction for m={m} needs {total} mapped points "
                f"(> {MAX_TENSOR_POINTS}); reduce sample_size or use compose"
            )
        blocks: list[np.ndarray] = []
        ids: list = []
        id_map: dict[int, list] = {}
        d4 = 4 * ri.dim
        for key, (coords, weights) in per_dataset.items():
            p = coords.shape[0]
            n_combo = p ** m
            delta_i = ri.delta_of(key)
            block = np.empty((n_combo, m * d4 + 2 * m))
            if n_combo:
                # Per-slot pick columns in itertools.product order (last
                # slot fastest) — shared with the pair enumerators.
                picks = _product_option_indices([p] * m, n_combo)
                for slot, pick in enumerate(picks):
                    block[:, slot * d4 : (slot + 1) * d4] = coords[pick]
                    block[:, m * d4 + slot] = weights[pick] + delta_i
                    block[:, m * d4 + m + slot] = weights[pick] - delta_i
            pid_list = [(key, local) for local in range(n_combo)]
            blocks.append(block)
            ids.extend(pid_list)
            id_map[key] = pid_list
        self._tensor_trees[m] = build_backend(
            np.vstack(blocks), ids, engine=self.engine_kind,
            leaf_size=self._leaf_size,
        )
        self._tensor_ids[m] = id_map

    def query_conjunction_tensor(
        self,
        rects: Sequence[Rectangle],
        thetas: Sequence[Interval],
        record_times: bool = False,
    ) -> QueryResult:
        """Answer an m-conjunction with the faithful tensor structure."""
        if len(rects) != len(thetas) or not rects:
            raise QueryError("need equally many rectangles and intervals (>= 1)")
        m = len(rects)
        if m not in self._tensor_trees:
            self._build_tensor(m)
        tree = self._tensor_trees[m]
        id_map = self._tensor_ids[m]
        cons: list[tuple[float, float, bool, bool]] = []
        for rect in rects:
            clipped = self._range_index._clip_to_box(rect)
            cons.extend(clipped.query_orthant_4d())
        eps = self.eps_effective
        for theta in thetas:
            a = max(0.0, theta.lo)
            cons.append((a - eps, math.inf, False, False))   # w_l + delta_i
        for theta in thetas:
            b = min(1.0, theta.hi)
            cons.append((-math.inf, b + eps, False, False))  # w_l - delta_i
        box = QueryBox(cons)
        result = QueryResult()
        if not record_times:
            # Batched form of the report loop: one report_groups bulk pass
            # (identical answer set; see _ptile_common._report_loop).
            result.indexes = sorted(tree.report_groups(box))
            return result
        result.start_time = time.perf_counter()
        reported: list[int] = []
        guard = self.n_datasets + 1
        while True:
            hit = tree.report_first(box)
            if hit is None:
                break
            key = hit[0]
            reported.append(key)
            result.indexes.append(key)
            result.emit_times.append(time.perf_counter())
            for pid in id_map[key]:
                tree.deactivate(pid)
            guard -= 1
            if guard < 0:  # pragma: no cover - safety net
                raise QueryError("tensor report loop exceeded dataset count")
        for key in reported:
            for pid in id_map[key]:
                tree.activate(pid)
        result.end_time = time.perf_counter()
        return result


def _is_pure_conjunction(expression: Expression) -> bool:
    if isinstance(expression, Predicate):
        return True
    if isinstance(expression, And):
        return all(isinstance(c, Predicate) for c in expression.children)
    return False


def _leaf_rect(leaf: Predicate) -> Rectangle:
    if not isinstance(leaf.measure, PercentileMeasure):
        raise QueryError(
            "PtileLogicalIndex handles percentile predicates only; route "
            "preference predicates to PrefLogicalIndex (see DatasetSearchEngine)"
        )
    return leaf.measure.rect
