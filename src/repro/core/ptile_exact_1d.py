"""Exact CPtile index in R^1 with a fixed theta (Appendix C.1, Theorem C.5).

The centralized lower bound (Theorem 3.4) kills exact structures for
``d >= 2``, but in one dimension an exact index exists when the interval
``theta = [a_theta, b_theta]`` is known at preprocessing time.

For each dataset ``P_i`` (sorted ``p_1 < ... < p_n``) every point ``p_j`` is
mapped to the 4-dimensional point ``(q_j, r_j, p_j, s_j)`` where

- ``r_j``: the point such that ``[r_j, p_j]`` contains exactly
  ``A = ceil(a_theta * n)`` points (so ``|P ∩ [R^-, p_j]| >= A  ⇔  R^- <= r_j``),
- ``q_j``: the point one below the window of ``B = floor(b_theta * n)``
  points ending at ``p_j`` (so the count is ``<= B  ⇔  q_j < R^-``),
- ``s_j = p_{j+1}`` (``+inf`` for the last point), making ``p_j`` the unique
  largest point of ``P_i`` inside ``R``: ``p_j <= R^+ < s_j``.

A query ``R = [R^-, R^+]`` then maps to the orthant
``(-inf, R^-) x [R^-, inf) x (-inf, R^+] x (R^+, inf)``; the points found
are in one-to-one correspondence with the qualifying datasets, so the query
procedure never reports duplicates (Lemma C.1) and is exact (Lemma C.2).

Strict versus non-strict sides are handled exactly by the open/closed bounds
of :class:`~repro.index.query_box.QueryBox` — no general-position assumption
is needed (the paper assumes distinct points; we require that too).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.core.results import QueryResult
from repro.errors import ConstructionError, QueryError
from repro.geometry.interval import Interval
from repro.index.backend import build_backend
from repro.index.query_box import QueryBox

#: Sentinels standing in for -inf/+inf coordinates (kd bboxes need finites).
_NEG = -1e300
_POS = 1e300


class ExactPtile1DIndex:
    """Exact centralized Ptile index over 1-d datasets, fixed ``theta``.

    Parameters
    ----------
    datasets:
        Raw 1-d datasets: each an ``(n_i,)`` or ``(n_i, 1)`` array with
        distinct values (the paper's assumption).
    theta:
        The fixed query interval ``[a_theta, b_theta] ⊆ (0, 1]`` —
        ``a_theta`` must be positive so the count window ``A >= 1`` exists.
    engine:
        Any registered range-search backend (``"kd"`` default,
        ``"rangetree"``, ``"columnar"``).

    Examples
    --------
    >>> import numpy as np
    >>> idx = ExactPtile1DIndex(
    ...     [np.array([1.0, 2.0, 3.0, 4.0]), np.array([10.0, 11.0])],
    ...     theta=Interval(0.5, 1.0))
    >>> idx.query(1.5, 4.5).indexes   # dataset 0 has mass 3/4 in [1.5, 4.5]
    [0]
    """

    def __init__(
        self,
        datasets: Iterable[np.ndarray],
        theta: Interval,
        engine: str = "kd",
        leaf_size: int = 16,
    ) -> None:
        self.theta = theta
        a = theta.lo
        b = min(1.0, theta.hi)
        if not 0.0 < a <= b:
            raise ConstructionError(
                "ExactPtile1DIndex requires 0 < a_theta <= b_theta (the zero-"
                "mass corner cannot be certified by a stored point)"
            )
        self._sorted: list[np.ndarray] = []
        rows: list[tuple[float, float, float, float]] = []
        ids: list = []
        for key, data in enumerate(datasets):
            pts = np.asarray(data, dtype=float).reshape(-1)
            if pts.size == 0:
                raise ConstructionError(f"dataset {key} is empty")
            pts = np.sort(pts)
            if np.unique(pts).size != pts.size:
                raise ConstructionError(
                    f"dataset {key} has duplicate values (paper assumption)"
                )
            self._sorted.append(pts)
            n = pts.size
            cnt_min = math.ceil(a * n - 1e-12)   # need count >= cnt_min
            cnt_max = math.floor(b * n + 1e-12)  # need count <= cnt_max
            if cnt_min < 1 or cnt_min > cnt_max or cnt_max < 1:
                continue  # this dataset can never satisfy theta
            for j in range(n):  # j is 0-based rank of p_j
                if j + 1 < cnt_min:
                    continue  # too few points at or below p_j
                r_j = pts[j - cnt_min + 1]
                q_j = pts[j - cnt_max] if j - cnt_max >= 0 else _NEG
                s_j = pts[j + 1] if j + 1 < n else _POS
                rows.append((q_j, r_j, pts[j], s_j))
                ids.append((key, j))
        self.n_datasets = len(self._sorted)
        self.total_points = sum(p.size for p in self._sorted)
        if not rows:
            # No dataset can ever qualify; keep a stub tree for uniformity.
            rows = [(_NEG, _NEG, _NEG, _NEG)]
            ids = [(-1, -1)]
        self._tree = build_backend(
            np.asarray(rows), ids, engine=engine, leaf_size=leaf_size
        )

    @property
    def n_mapped_points(self) -> int:
        """Number of stored 4-dimensional points."""
        return len(self._tree)

    def query(self, r_lo: float, r_hi: float, record_times: bool = False) -> QueryResult:
        """Report exactly ``{i : M_{[r_lo, r_hi]}(P_i) ∈ theta}``."""
        if r_lo > r_hi:
            raise QueryError("query interval has r_lo > r_hi")
        import time as _time

        result = QueryResult()
        if record_times:
            result.start_time = _time.perf_counter()
        box = QueryBox(
            [
                (_NEG, r_lo, False, True),    # q_j < R^-
                (r_lo, _POS, False, False),   # r_j >= R^-
                (_NEG, r_hi, False, False),   # p_j <= R^+
                (r_hi, _POS, True, False),    # s_j > R^+
            ]
        )
        for key, _j in self._tree.report(box):
            if key < 0:
                continue  # stub point of an all-empty index
            result.indexes.append(key)
            if record_times:
                result.emit_times.append(_time.perf_counter())
        if record_times:
            result.end_time = _time.perf_counter()
        return result

    def brute_force(self, r_lo: float, r_hi: float) -> set[int]:
        """Exact answer by per-dataset counting (for verification)."""
        out = set()
        for key, pts in enumerate(self._sorted):
            count = int(np.searchsorted(pts, r_hi, side="right")) - int(
                np.searchsorted(pts, r_lo, side="left")
            )
            if count / pts.size in self.theta:
                out.add(key)
        return out
