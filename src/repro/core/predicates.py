"""Predicates and logical expressions (Section 1.1).

A range-predicate ``Pred_{M, theta}(P)`` is true when ``M(P) ∈ theta``; a
threshold-predicate is the one-sided special case.  Complex predicates are
conjunctions/disjunctions of predicates.  This module provides the AST:

- :class:`Predicate` — a leaf (measure + interval);
- :class:`And` / :class:`Or` — internal nodes over sub-expressions;
- :func:`pred` — convenience constructor.

Expressions are evaluated exactly on raw datasets (ground truth for the
tests and benchmarks) and routed to indexes by
:class:`~repro.core.engine.DatasetSearchEngine`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Sequence

from repro.core.framework import Dataset, Repository
from repro.core.measures import MeasureFunction
from repro.geometry.interval import Interval


class Expression(ABC):
    """A logical expression ``Pi`` over predicates."""

    @abstractmethod
    def evaluate(self, dataset: Dataset) -> bool:
        """Exact truth value ``Pi(P)`` on a raw dataset."""

    @abstractmethod
    def leaves(self) -> Iterator["Predicate"]:
        """All predicate leaves, left to right."""

    @abstractmethod
    def canonical_key(self) -> tuple:
        """A hashable structural key identifying the expression.

        Two expressions with equal keys are semantically identical (same
        operator tree over semantically equal leaves), so the service-layer
        planner may evaluate one and reuse the answer for the other.  Keys
        are order-sensitive for And/Or children; the planner's
        canonicalization sorts children first so logically equal
        conjunctions/disjunctions collide.
        """

    def ground_truth(self, repository: Repository) -> set[int]:
        """``q_Pi(P) = {i : Pi(P_i) = True}`` by brute force (exact)."""
        return {
            i for i, ds in enumerate(repository) if self.evaluate(ds)
        }

    @property
    def n_predicates(self) -> int:
        """Number of predicate leaves ``m``."""
        return sum(1 for _ in self.leaves())

    def __and__(self, other: "Expression") -> "And":
        return And([self, other])

    def __or__(self, other: "Expression") -> "Or":
        return Or([self, other])


class Predicate(Expression):
    """A leaf predicate ``Pred_{M, theta}``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.measures import PercentileMeasure
    >>> from repro.geometry.rectangle import Rectangle
    >>> p = Predicate(PercentileMeasure(Rectangle([0.0], [1.0])), Interval(0.5, 1.0))
    >>> p.evaluate(Dataset(np.array([[0.5], [0.7], [2.0]])))
    True
    """

    def __init__(self, measure: MeasureFunction, theta: Interval) -> None:
        self.measure = measure
        self.theta = theta

    @property
    def is_threshold(self) -> bool:
        """Whether ``theta`` is one-sided (a threshold-predicate)."""
        return self.theta.is_threshold

    def evaluate(self, dataset: Dataset) -> bool:
        return self.measure.evaluate(dataset) in self.theta

    def leaves(self) -> Iterator["Predicate"]:
        yield self

    def canonical_key(self) -> tuple:
        return (
            "leaf",
            self.measure.canonical_key(),
            (self.theta.lo, self.theta.hi, self.theta.lo_open, self.theta.hi_open),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pred({self.measure!r}, theta={self.theta})"


class And(Expression):
    """Conjunction of sub-expressions."""

    def __init__(self, children: Sequence[Expression]) -> None:
        if len(children) < 1:
            raise ValueError("And needs at least one child")
        self.children = list(children)

    def evaluate(self, dataset: Dataset) -> bool:
        return all(child.evaluate(dataset) for child in self.children)

    def leaves(self) -> Iterator[Predicate]:
        for child in self.children:
            yield from child.leaves()

    def canonical_key(self) -> tuple:
        return ("and", tuple(c.canonical_key() for c in self.children))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "And(" + ", ".join(repr(c) for c in self.children) + ")"


class Or(Expression):
    """Disjunction of sub-expressions."""

    def __init__(self, children: Sequence[Expression]) -> None:
        if len(children) < 1:
            raise ValueError("Or needs at least one child")
        self.children = list(children)

    def evaluate(self, dataset: Dataset) -> bool:
        return any(child.evaluate(dataset) for child in self.children)

    def leaves(self) -> Iterator[Predicate]:
        for child in self.children:
            yield from child.leaves()

    def canonical_key(self) -> tuple:
        return ("or", tuple(c.canonical_key() for c in self.children))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Or(" + ", ".join(repr(c) for c in self.children) + ")"


def pred(measure: MeasureFunction, lo: float, hi: float = float("inf")) -> Predicate:
    """Convenience constructor: ``pred(M, a)`` is the threshold predicate
    ``M(P) >= a``; ``pred(M, a, b)`` is the range predicate ``M(P) ∈ [a, b]``.
    """
    return Predicate(measure, Interval(lo, hi))
