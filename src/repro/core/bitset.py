"""Packed ``uint64`` bitsets over dataset indexes — the warm-path algebra.

Every warm answer in the serving stack is a subset of ``range(N)`` for the
current dataset count ``N``.  Representing those subsets as Python
``set[int]`` objects costs ~50-80 bytes *per member* and one hash probe per
element per logical operation; at the ROADMAP's millions-of-datasets scale
the per-element work dominates warm latency, the same observation that
makes bitmap posting lists the standard representation in dataset-search
systems (Fainder-style indexes, roaring bitmaps in IR engines).

:class:`DatasetBitmap` packs the subset into a little-endian array of
``uint64`` words (64 datasets per word, 8 bytes per 64 members):

- **logical combination** is word-wise ``&`` / ``|`` / ``& ~`` — one NumPy
  pass over ``ceil(N / 64)`` words regardless of how many indexes are set;
- **cardinality** is a vectorized popcount;
- **shard merges** are offset-shifted ORs (a shard's local universe is a
  contiguous slice of the global one), with a scatter fallback for
  arbitrary index mappings;
- **removals** stay a persistent ANDNOT mask, applied word-wise at read
  time;
- **watermark upgrades** (delta-shard ingestion) are ORs of bitmaps with
  different universe sizes — operands align by zero-padding, so an answer
  cached at dataset count ``W`` unions cleanly with a delta answer at
  count ``N > W``.

Bitmaps convert to index lists / sets only at API boundaries; the HTTP
server can skip even that and ship the raw words (:meth:`to_wire`).

Examples
--------
>>> a = DatasetBitmap.from_indices([1, 3, 70], 80)
>>> b = DatasetBitmap.from_indices([3, 70, 79], 80)
>>> (a & b).to_list()
[3, 70]
>>> (a | b).count()
4
>>> a.andnot(b).to_list()
[1]
>>> DatasetBitmap.from_indices([0, 2], 4).shift_into(64, 80).to_list()
[64, 66]
"""

from __future__ import annotations

import base64
from typing import Callable, Iterable, Sequence, Union

import numpy as np

__all__ = ["DatasetBitmap", "bitmap_from_wire", "make_remapper"]

#: Bits per word.
_W = 64

if hasattr(np, "bitwise_count"):  # NumPy >= 2.0
    _popcount_words = np.bitwise_count
else:  # pragma: no cover - exercised only on NumPy 1.x images
    _POP8 = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(
        axis=1
    )

    def _popcount_words(words: np.ndarray) -> np.ndarray:
        return _POP8[words.view(np.uint8)]


def _n_words(nbits: int) -> int:
    return (nbits + _W - 1) // _W


class DatasetBitmap:
    """An immutable-by-convention packed subset of ``range(nbits)``.

    Instances are cheap value objects: binary operators return new bitmaps
    and never mutate their operands, so one bitmap can safely live in the
    leaf cache while being combined into many query answers.  Operands
    with different universe sizes align by zero-padding the shorter one;
    the result's universe is the larger of the two.

    The invariant that makes popcount/equality exact: bits at positions
    ``>= nbits`` (the tail of the last word) are always zero.
    """

    __slots__ = ("words", "nbits")

    def __init__(self, words: np.ndarray, nbits: int) -> None:
        nbits = int(nbits)
        if nbits < 0:
            raise ValueError("nbits must be >= 0")
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.shape != (_n_words(nbits),):
            raise ValueError(
                f"expected {_n_words(nbits)} words for {nbits} bits, "
                f"got shape {words.shape}"
            )
        self.words = words
        self.nbits = nbits

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, nbits: int) -> "DatasetBitmap":
        """The empty subset of ``range(nbits)``."""
        return cls(np.zeros(_n_words(nbits), dtype=np.uint64), nbits)

    @classmethod
    def full(cls, nbits: int) -> "DatasetBitmap":
        """The whole universe ``range(nbits)`` (tail bits kept zero)."""
        words = np.full(_n_words(nbits), ~np.uint64(0), dtype=np.uint64)
        tail = nbits % _W
        if words.size and tail:
            words[-1] = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
        return cls(words, nbits)

    @classmethod
    def from_indices(
        cls, indices: Union[Iterable[int], np.ndarray], nbits: int
    ) -> "DatasetBitmap":
        """Pack an iterable/array of indexes (duplicates are harmless)."""
        idx = np.asarray(
            indices if not isinstance(indices, (set, frozenset)) else list(indices),
            dtype=np.int64,
        ).ravel()
        words = np.zeros(_n_words(nbits), dtype=np.uint64)
        if idx.size:
            if int(idx.min()) < 0 or int(idx.max()) >= nbits:
                raise ValueError(
                    f"indices must lie in [0, {nbits}), got range "
                    f"[{int(idx.min())}, {int(idx.max())}]"
                )
            np.bitwise_or.at(
                words,
                idx >> 6,
                np.uint64(1) << (idx & 63).astype(np.uint64),
            )
        return cls(words, nbits)

    # ------------------------------------------------------------------
    # Conversion (the API boundary)
    # ------------------------------------------------------------------
    def to_array(self) -> np.ndarray:
        """Sorted member indexes as an ``int64`` array."""
        bits = np.unpackbits(
            self.words.astype("<u8", copy=False).view(np.uint8),
            bitorder="little",
        )
        return np.flatnonzero(bits[: self.nbits]).astype(np.int64)

    def to_list(self) -> list[int]:
        """Sorted member indexes as plain Python ints."""
        return self.to_array().tolist()

    def to_set(self) -> set[int]:
        """Members as a mutable ``set`` (for set-algebra consumers)."""
        return set(self.to_list())

    def to_frozenset(self) -> frozenset[int]:
        return frozenset(self.to_list())

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _aligned(
        self, other: "DatasetBitmap"
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Zero-pad the shorter operand; returns (a, b, nbits)."""
        if self.nbits == other.nbits:
            return self.words, other.words, self.nbits
        nbits = max(self.nbits, other.nbits)
        nw = _n_words(nbits)
        a, b = self.words, other.words
        if a.size < nw:
            a = np.concatenate([a, np.zeros(nw - a.size, dtype=np.uint64)])
        if b.size < nw:
            b = np.concatenate([b, np.zeros(nw - b.size, dtype=np.uint64)])
        return a, b, nbits

    def __and__(self, other: "DatasetBitmap") -> "DatasetBitmap":  # lint: hot-path
        a, b, nbits = self._aligned(other)
        return DatasetBitmap(a & b, nbits)

    def __or__(self, other: "DatasetBitmap") -> "DatasetBitmap":  # lint: hot-path
        a, b, nbits = self._aligned(other)
        return DatasetBitmap(a | b, nbits)

    def andnot(self, other: "DatasetBitmap") -> "DatasetBitmap":  # lint: hot-path
        """``self \\ other`` (set difference), word-wise ``a & ~b``."""
        a, b, nbits = self._aligned(other)
        return DatasetBitmap(a & ~b, nbits)

    def count(self) -> int:  # lint: hot-path
        """``|self|`` via vectorized popcount."""
        return int(_popcount_words(self.words).sum())

    def any(self) -> bool:
        """Whether any bit is set (cheaper than ``count() > 0``)."""
        return bool(self.words.any())

    def __contains__(self, index: int) -> bool:
        i = int(index)
        if not 0 <= i < self.nbits:
            return False
        return bool(
            (self.words[i >> 6] >> np.uint64(i & 63)) & np.uint64(1)
        )

    def __eq__(self, other: object) -> bool:
        """Set equality — universe sizes may differ (tails are zero)."""
        if not isinstance(other, DatasetBitmap):
            return NotImplemented
        a, b, _ = self._aligned(other)
        return bool(np.array_equal(a, b))

    def __hash__(self) -> int:
        # Hash the trimmed word content so equal sets collide across sizes.
        trimmed = np.trim_zeros(self.words, trim="b")
        return hash((len(trimmed), trimmed.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n = self.count()
        head = self.to_list()[:8]
        ell = ", ..." if n > 8 else ""
        return f"DatasetBitmap({head}{ell} |{n}| of {self.nbits})"

    # ------------------------------------------------------------------
    # Universe surgery (shard merges, delta upgrades)
    # ------------------------------------------------------------------
    def resize(self, nbits: int) -> "DatasetBitmap":
        """The same set inside a universe of ``nbits``.

        Growing zero-pads.  Shrinking is legal only when no member falls
        outside the new range (ValueError otherwise) — branch on the
        logical size, not the word count, so a shrink within the same
        word never smuggles out-of-range bits past the tail invariant.
        """
        if nbits == self.nbits:
            return self
        if nbits > self.nbits:
            nw = _n_words(nbits)
            if nw == self.words.size:
                return DatasetBitmap(self.words, nbits)
            words = np.zeros(nw, dtype=np.uint64)
            words[: self.words.size] = self.words
            return DatasetBitmap(words, nbits)
        # from_indices re-validates the range, raising on stray members.
        return DatasetBitmap.from_indices(self.to_array(), nbits)

    def shift_into(self, offset: int, nbits: int) -> "DatasetBitmap":
        """Members translated by ``+offset`` inside a ``nbits`` universe.

        This is the shard-merge primitive: a shard's local universe is the
        contiguous slice ``[offset, offset + self.nbits)`` of the global
        one, so translating local answers is a word shift, not a Python
        loop over members.
        """
        offset = int(offset)
        if offset < 0:
            raise ValueError("offset must be >= 0")
        if offset + self.nbits > nbits:
            raise ValueError("shifted members would fall outside the universe")
        q, r = divmod(offset, _W)
        out = np.zeros(_n_words(nbits), dtype=np.uint64)
        src = self.words
        if src.size:
            if r == 0:
                out[q : q + src.size] = src
            else:
                lo = src << np.uint64(r)
                hi = src >> np.uint64(_W - r)
                out[q : q + src.size] |= lo
                out[q + 1 : q + 1 + src.size] |= hi[: out.size - q - 1]
        return DatasetBitmap(out, nbits)

    def remap(self, mapping: Sequence[int], nbits: int) -> "DatasetBitmap":
        """Members translated through ``mapping`` (local id -> global id).

        ``mapping`` must cover the local universe (``len(mapping) >=
        self.nbits``).  Contiguous mappings (``mapping[i] == mapping[0] +
        i``) take the word-shift fast path; arbitrary mappings scatter the
        member indexes through the mapping array.  Callers translating
        many bitmaps through one mapping should compile it once with
        :func:`make_remapper` instead.
        """
        return make_remapper(mapping, nbits)(self)

    # ------------------------------------------------------------------
    # Memory / wire
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Payload bytes (the packed words)."""
        return int(self.words.nbytes)

    def to_wire(self) -> dict:
        """JSON-ready zero-copy encoding: base64 of the little-endian words.

        The payload is the raw word buffer — no per-index Python objects
        are materialized.  Decode with :func:`bitmap_from_wire`.
        """
        return {
            "encoding": "u64le+b64",
            "n_bits": self.nbits,
            "words": base64.b64encode(
                self.words.astype("<u8", copy=False).tobytes()
            ).decode("ascii"),
        }


def make_remapper(
    mapping: Sequence[int], nbits: int
) -> "Callable[[DatasetBitmap], DatasetBitmap]":
    """Compile a local→global index mapping into a bitmap translator.

    The O(len(mapping)) analysis — array conversion and the contiguity
    probe that selects the word-shift fast path over the scatter fallback
    — runs once here; the returned callable translates any number of
    local bitmaps at O(words) each.  This is the primitive behind both
    :meth:`DatasetBitmap.remap` and the sharded executor's per-unit merge.

    Examples
    --------
    >>> to_global = make_remapper([10, 11, 12, 13], 14)
    >>> to_global(DatasetBitmap.from_indices([0, 2], 4)).to_list()
    [10, 12]
    """
    m = np.asarray(mapping, dtype=np.int64)

    def _check(local: DatasetBitmap) -> None:
        if m.size < local.nbits:
            raise ValueError("mapping shorter than the local universe")

    if m.size == 0:
        def translate(local: DatasetBitmap) -> DatasetBitmap:
            _check(local)
            return DatasetBitmap.zeros(nbits)
    elif m.size == 1 or (
        int(m[-1]) - int(m[0]) == m.size - 1
        and bool(np.array_equal(m, m[0] + np.arange(m.size, dtype=np.int64)))
    ):
        offset = int(m[0])

        def translate(local: DatasetBitmap) -> DatasetBitmap:
            _check(local)
            return local.shift_into(offset, nbits)
    else:
        def translate(local: DatasetBitmap) -> DatasetBitmap:
            _check(local)
            return DatasetBitmap.from_indices(m[local.to_array()], nbits)

    return translate


def bitmap_from_wire(obj: dict) -> DatasetBitmap:
    """Decode :meth:`DatasetBitmap.to_wire` output (client-side helper).

    Examples
    --------
    >>> bm = DatasetBitmap.from_indices([5, 64, 199], 200)
    >>> bitmap_from_wire(bm.to_wire()) == bm
    True
    """
    if not isinstance(obj, dict) or obj.get("encoding") != "u64le+b64":
        raise ValueError("not a u64le+b64 bitset payload")
    nbits = int(obj["n_bits"])
    raw = base64.b64decode(obj["words"])
    words = np.frombuffer(raw, dtype="<u8").astype(np.uint64, copy=False)
    if words.shape != (_n_words(nbits),):
        raise ValueError("bitset payload length does not match n_bits")
    tail = nbits % _W
    if words.size and tail:
        stray = words[-1] >> np.uint64(tail)
        if stray:
            # Bits past n_bits would break the zero-tail invariant that
            # count/equality/hash rely on; a well-formed encoder never
            # produces them, so treat them as corruption.
            raise ValueError("bitset payload has stray bits beyond n_bits")
    return DatasetBitmap(words, nbits)
