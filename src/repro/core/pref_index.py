"""Approximate Pref index for one threshold-predicate (Section 5).

Implements Algorithms 5 (construction) and 6 (query) and therefore
Theorem 5.4: ``~O(N)`` space, construction dominated by the synopsis
``Score`` calls, query time ``O(log N + OUT)``, and for a query
``(u, theta = [a_theta, 1])``:

- (recall)    every dataset with ``omega_k(P_i, u) >= a_theta`` is reported;
- (precision) every reported ``j`` has
  ``omega_k(P_j, u) >= a_theta - 2 eps - 2 delta_j`` (Lemma 5.2; the theorem
  folds the factor 2 by halving eps).

Construction builds a centrally symmetric ε-net ``C`` of unit vectors and,
for each net vector ``v``, a 1-dimensional search tree over the estimated
scores ``gamma_v^(i) = S_{P_i}.Score(v, k)``.  A query snaps ``u`` to its
nearest net vector (error ``<= eps`` per Lemma 5.1, points in the unit
ball — for general data the error scales with the data radius, which the
index exposes as ``score_slack``).

Per-dataset deltas (Remark 2) are supported by storing the shifted score
``gamma + delta_i`` so the slack becomes a global threshold.  Dynamics
(Remark 1) use a buffered sorted list per direction with amortized rebuilds.
"""

from __future__ import annotations

import math
import time
from typing import Iterable, Optional

import numpy as np

from repro.core.results import QueryResult
from repro.errors import ConstructionError, QueryError
from repro.geometry.epsilon_net import build_epsilon_net, nearest_net_vector
from repro.geometry.interval import Interval
from repro.index.backend import check_engine
from repro.index.sorted_list import SortedListIndex
from repro.synopsis.base import Synopsis


class _DirectionList:
    """Per-direction score structure: sorted core + linear insert buffer."""

    REBUILD_FRACTION = 0.25
    MIN_BUFFER = 16

    def __init__(self, values: list[float], ids: list) -> None:
        self._core = SortedListIndex(values, ids=ids)
        self._buffer: dict = {}

    def insert(self, entry_id, value: float) -> None:
        self._buffer[entry_id] = float(value)
        if len(self._buffer) >= max(
            self.MIN_BUFFER, int(self.REBUILD_FRACTION * len(self._core))
        ):
            self._rebuild()

    def _rebuild(self) -> None:
        values, ids = [], []
        for pid in self._core_active_ids():
            values.append(self._core.values_of(pid))
            ids.append(pid)
        for pid, val in self._buffer.items():
            values.append(val)
            ids.append(pid)
        self._core = SortedListIndex(values, ids=ids)
        self._buffer = {}

    def _core_active_ids(self) -> list:
        return self._core.report(Interval.everything())

    def remove(self, entry_id) -> None:
        if entry_id in self._buffer:
            del self._buffer[entry_id]
        else:
            self._core.deactivate(entry_id)

    def iter_at_least(self, threshold: float):
        """Yield ids with value >= threshold (core in order, then buffer)."""
        yield from self._core.iter_report(Interval.at_least(threshold))
        for pid, val in self._buffer.items():
            if val >= threshold:
                yield pid


class _SortedListScores:
    """Per-direction sorted score lists — the paper's Algorithm 5 layout."""

    def __init__(self, matrix: np.ndarray, keys: list) -> None:
        self._lists = [
            _DirectionList(matrix[vi].tolist(), list(keys))
            for vi in range(matrix.shape[0])
        ]

    def insert(self, key, shifted: np.ndarray) -> None:
        for vi, lst in enumerate(self._lists):
            lst.insert(key, float(shifted[vi]))

    def remove(self, key) -> None:
        for lst in self._lists:
            lst.remove(key)

    def iter_at_least(self, vi: int, threshold: float):
        yield from self._lists[vi].iter_at_least(threshold)


class _ColumnarScores:
    """Columnar score backend: one ``(|C|, N)`` matrix + live mask.

    A query reads one row and answers the threshold with a single
    vectorized comparison — the Pref analogue of the columnar orthant
    store.  Inserts append columns into amortized-doubling capacity.
    """

    def __init__(self, matrix: np.ndarray, keys: list) -> None:
        self._scores = np.array(matrix, dtype=float)  # (m, n)
        self._keys = list(keys)
        self._n = len(self._keys)
        self._live = np.ones(self._n, dtype=bool)
        self._pos_of_key = {k: pos for pos, k in enumerate(self._keys)}

    def insert(self, key, shifted: np.ndarray) -> None:
        if self._n == self._scores.shape[1]:
            cap = max(self._n + 1, 2 * self._n)
            grown = np.empty((self._scores.shape[0], cap))
            grown[:, : self._n] = self._scores[:, : self._n]
            self._scores = grown
            live = np.zeros(cap, dtype=bool)
            live[: self._n] = self._live[: self._n]
            self._live = live
        pos = self._n
        self._scores[:, pos] = np.asarray(shifted, dtype=float)
        self._keys.append(key)
        self._live[pos] = True
        self._pos_of_key[key] = pos
        self._n += 1

    def remove(self, key) -> None:
        self._live[self._pos_of_key.pop(key)] = False

    def iter_at_least(self, vi: int, threshold: float):
        row = self._scores[vi, : self._n]
        mask = self._live[: self._n] & (row >= threshold)
        for pos in np.flatnonzero(mask):
            yield self._keys[int(pos)]


class PrefIndex:
    """The Pref data structure for one threshold-predicate (Theorem 5.4).

    Parameters
    ----------
    synopses:
        One synopsis per dataset (must support the preference class).
    k:
        The rank of the top-k preference measure (fixed per structure, as in
        the paper's Problem 2).
    eps:
        Direction-net resolution (the paper's eps).
    delta:
        Optional global synopsis-error bound; default: per-synopsis
        ``delta_pref`` (Remark 2 semantics).
    engine:
        Score-store backend, using the shared backend vocabulary
        (:data:`repro.index.backend.ENGINES`): ``"columnar"`` keeps one
        ``(|C|, N)`` score matrix and answers thresholds with a vectorized
        comparison; ``"kd"`` (default) and ``"rangetree"`` both select the
        per-direction sorted lists of Algorithm 5 (the Pref structure has
        no orthant search for a tree to accelerate).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.synopsis import ExactSynopsis
    >>> rng = np.random.default_rng(2)
    >>> data = [rng.uniform(-1, 1, size=(300, 2)) * 0.5 for _ in range(5)]
    >>> idx = PrefIndex([ExactSynopsis(p) for p in data], k=3, eps=0.1)
    >>> res = idx.query(np.array([1.0, 0.0]), a_theta=-1.0)
    >>> sorted(res.indexes)
    [0, 1, 2, 3, 4]
    """

    def __init__(
        self,
        synopses: Iterable[Synopsis],
        k: int,
        eps: float = 0.1,
        delta: Optional[float] = None,
        engine: str = "kd",
    ) -> None:
        syn_list = list(synopses)
        if not syn_list:
            raise ConstructionError("need at least one synopsis")
        if k < 1:
            raise ConstructionError("k must be >= 1")
        if not 0.0 < eps < 1.0:
            raise ConstructionError(f"eps must be in (0, 1), got {eps}")
        dims = {s.dim for s in syn_list}
        if len(dims) != 1:
            raise ConstructionError("all synopses must share the same dimension")
        self.dim = dims.pop()
        self.k = int(k)
        self.eps = float(eps)
        self.engine_kind = check_engine(engine)
        self.net = build_epsilon_net(self.dim, eps)
        self._synopses: dict[int, Synopsis] = {}
        self._deltas: dict[int, float] = {}
        self._next_key = 0
        per_dataset: list[np.ndarray] = []
        ids: list[int] = []
        for syn in syn_list:
            key = self._admit(syn, delta)
            ids.append(key)
            per_dataset.append(self._shifted_scores(key))
        score_matrix = np.column_stack(per_dataset)  # (|C|, N)
        store = _ColumnarScores if engine == "columnar" else _SortedListScores
        self._scores_store = store(score_matrix, ids)

    # ------------------------------------------------------------------
    def _admit(self, synopsis: Synopsis, delta: Optional[float]) -> int:
        if synopsis.dim != self.dim:
            raise ConstructionError("synopsis dimension mismatch")
        d_i = delta if delta is not None else synopsis.delta_pref
        if d_i is None:
            raise ConstructionError("synopsis does not support the class F_k")
        key = self._next_key
        self._next_key += 1
        self._synopses[key] = synopsis
        self._deltas[key] = float(d_i)
        return key

    def _shifted_scores(self, key: int) -> np.ndarray:
        """``gamma_v^(i) + delta_i`` over all net directions at once.

        The shift makes the per-dataset slack a global threshold; ``-inf``
        scores (``k`` exceeds the dataset) stay ``-inf`` so such datasets
        never qualify.
        """
        gamma = np.asarray(
            self._synopses[key].score_batch(self.net, self.k), dtype=float
        )
        return np.where(np.isneginf(gamma), gamma, gamma + self._deltas[key])

    @property
    def n_datasets(self) -> int:
        """Current number of indexed datasets."""
        return len(self._synopses)

    @property
    def n_directions(self) -> int:
        """Size of the ε-net ``|C| = O(eps^{-(d-1)})``."""
        return int(self.net.shape[0])

    def delta_of(self, key: int) -> float:
        """The synopsis error ``delta_i`` used for a dataset."""
        return self._deltas[key]

    # ------------------------------------------------------------------
    # Query (Algorithm 6)
    # ------------------------------------------------------------------
    def query(
        self,
        vector: np.ndarray,
        a_theta: float,
        record_times: bool = False,
    ) -> QueryResult:
        """Report datasets with (approximately) ``omega_k(P_i, u) >= a_theta``."""
        u = np.asarray(vector, dtype=float)
        if u.ndim != 1 or u.shape[0] != self.dim:
            raise QueryError(f"query vector must have shape ({self.dim},)")
        vi = nearest_net_vector(self.net, u)
        result = QueryResult()
        if record_times:
            result.start_time = time.perf_counter()
        threshold = a_theta - self.eps
        for key in self._scores_store.iter_at_least(vi, threshold):
            result.indexes.append(key)
            if record_times:
                result.emit_times.append(time.perf_counter())
        if record_times:
            result.end_time = time.perf_counter()
        result.stats["net_vector"] = vi
        return result

    def query_expression(
        self, vector: np.ndarray, theta: Interval, **kwargs
    ) -> QueryResult:
        """Interval-flavoured entry point (requires a threshold interval)."""
        if not math.isinf(theta.hi) and theta.hi < math.inf:
            # The Pref problem is defined on one-sided intervals; a finite
            # upper bound would need the symmetric net direction.  We accept
            # [a, inf)-style intervals only, as the paper does.
            if theta.hi != math.inf:
                raise QueryError("Pref supports one-sided theta = [a, inf)")
        return self.query(vector, theta.lo, **kwargs)

    # ------------------------------------------------------------------
    # Dynamics (Remark 1 after Theorem 5.4)
    # ------------------------------------------------------------------
    def insert_synopsis(self, synopsis: Synopsis, delta: Optional[float] = None) -> int:
        """Add a dataset in ``O(Lambda_S + |C| log N)`` amortized."""
        key = self._admit(synopsis, delta)
        self._scores_store.insert(key, self._shifted_scores(key))
        return key

    def delete_synopsis(self, key: int) -> None:
        """Remove a dataset by key."""
        if key not in self._synopses:
            raise KeyError(f"unknown dataset key {key}")
        self._scores_store.remove(key)
        del self._synopses[key], self._deltas[key]
