"""Pref index for logical expressions of m threshold-predicates (App. D.1).

Theorem D.4: conjunctions of ``m`` preference predicates are answered by an
``m``-dimensional range tree per subset ``V = (v_1, ..., v_m)`` of ε-net
vectors, over the points ``(gamma_{v_1}^(i), ..., gamma_{v_m}^(i))``.

The paper precomputes a tree for *every* subset (``O(eps^{-m(d-1)})`` of
them).  We build them **lazily, keyed by the queried subset, with a cache**
— identical outputs and identical per-query asymptotics after first touch
(see ``DESIGN.md``, substitution 4); ``precompute_all=True`` restores the
paper's eager behaviour for small nets.

Disjunctions reduce to per-predicate queries with de-duplication, exactly
as the paper notes.
"""

from __future__ import annotations

import itertools
import math
import time
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.results import QueryResult
from repro.errors import ConstructionError, QueryError
from repro.geometry.epsilon_net import build_epsilon_net, nearest_net_vector
from repro.index.query_box import QueryBox
from repro.index.range_tree import RangeTree
from repro.synopsis.base import Synopsis

_NEG = -1e300


class PrefLogicalIndex:
    """Pref structure for conjunctions/disjunctions of m predicates.

    Parameters
    ----------
    synopses:
        One synopsis per dataset (preference class).
    k:
        The fixed rank of the top-k measure class.
    eps:
        Direction-net resolution.
    delta:
        Optional global synopsis-error bound (default per-synopsis).
    precompute_all / max_subset_size:
        Eagerly build every subset tree up to the given ``m`` (paper's
        behaviour) — exponential in ``m``; keep nets tiny.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.synopsis import ExactSynopsis
    >>> rng = np.random.default_rng(4)
    >>> data = [rng.uniform(-0.5, 0.5, size=(200, 2)) for _ in range(6)]
    >>> idx = PrefLogicalIndex([ExactSynopsis(p) for p in data], k=2, eps=0.2)
    >>> res = idx.query_conjunction(
    ...     [np.array([1.0, 0.0]), np.array([0.0, 1.0])], [-1.0, -1.0])
    >>> sorted(res.indexes)
    [0, 1, 2, 3, 4, 5]
    """

    def __init__(
        self,
        synopses: Iterable[Synopsis],
        k: int,
        eps: float = 0.1,
        delta: Optional[float] = None,
        precompute_all: bool = False,
        max_subset_size: int = 2,
    ) -> None:
        syn_list = list(synopses)
        if not syn_list:
            raise ConstructionError("need at least one synopsis")
        if k < 1:
            raise ConstructionError("k must be >= 1")
        dims = {s.dim for s in syn_list}
        if len(dims) != 1:
            raise ConstructionError("all synopses must share the same dimension")
        self.dim = dims.pop()
        self.k = int(k)
        self.eps = float(eps)
        self.net = build_epsilon_net(self.dim, eps)
        self._synopses = syn_list
        self._deltas = []
        for i, syn in enumerate(syn_list):
            d_i = delta if delta is not None else syn.delta_pref
            if d_i is None:
                raise ConstructionError(f"synopsis {i} does not support class F_k")
            self._deltas.append(float(d_i))
        # gamma cache: net index -> shifted scores over all datasets.
        self._gamma: dict[int, np.ndarray] = {}
        # subset trees: sorted tuple of net indices -> RangeTree.
        self._trees: dict[tuple[int, ...], RangeTree] = {}
        if precompute_all:
            for m in range(1, max_subset_size + 1):
                for combo in itertools.combinations(range(self.net.shape[0]), m):
                    self._tree_for(combo)

    @property
    def n_datasets(self) -> int:
        """Number of indexed datasets."""
        return len(self._synopses)

    @property
    def n_cached_trees(self) -> int:
        """Number of subset trees currently materialized."""
        return len(self._trees)

    # ------------------------------------------------------------------
    def _gamma_for(self, vi: int) -> np.ndarray:
        if vi not in self._gamma:
            v = self.net[vi]
            vals = np.empty(len(self._synopses))
            for i, syn in enumerate(self._synopses):
                gamma = syn.score(v, self.k)
                vals[i] = _NEG if math.isinf(gamma) and gamma < 0 else gamma + self._deltas[i]
            self._gamma[vi] = vals
        return self._gamma[vi]

    def _tree_for(self, net_indices: Sequence[int]) -> RangeTree:
        key = tuple(net_indices)
        if key not in self._trees:
            cols = [self._gamma_for(vi) for vi in key]
            pts = np.column_stack(cols)
            self._trees[key] = RangeTree(pts)
        return self._trees[key]

    # ------------------------------------------------------------------
    def query_conjunction(
        self,
        vectors: Sequence[np.ndarray],
        thresholds: Sequence[float],
        record_times: bool = False,
    ) -> QueryResult:
        """Datasets satisfying every ``omega_k(P_i, u_l) >= a_l`` (approx.).

        Guarantee (Theorem D.4): no dataset satisfying all predicates is
        missed, and every reported ``j`` has
        ``omega_k(P_j, u_l) >= a_l - 2 eps - 2 delta_j`` for every ``l``.
        """
        if len(vectors) != len(thresholds) or not vectors:
            raise QueryError("need equally many vectors and thresholds (>= 1)")
        result = QueryResult()
        if record_times:
            result.start_time = time.perf_counter()
        net_idx = [nearest_net_vector(self.net, np.asarray(u, float)) for u in vectors]
        # De-duplicate repeated snapped directions by keeping the tightest
        # threshold (a conjunction over one direction is its max threshold).
        tightest: dict[int, float] = {}
        for vi, a in zip(net_idx, thresholds):
            tightest[vi] = max(tightest.get(vi, -math.inf), float(a))
        key = tuple(sorted(tightest))
        tree = self._tree_for(key)
        box = QueryBox(
            [(tightest[vi] - self.eps, math.inf, False, False) for vi in key]
        )
        for idx in tree.report(box):
            result.indexes.append(int(idx))
            if record_times:
                result.emit_times.append(time.perf_counter())
        if record_times:
            result.end_time = time.perf_counter()
        result.stats["net_vectors"] = key
        return result

    def query_disjunction(
        self,
        vectors: Sequence[np.ndarray],
        thresholds: Sequence[float],
        record_times: bool = False,
    ) -> QueryResult:
        """Datasets satisfying at least one predicate (union, de-duplicated)."""
        if len(vectors) != len(thresholds) or not vectors:
            raise QueryError("need equally many vectors and thresholds (>= 1)")
        result = QueryResult()
        if record_times:
            result.start_time = time.perf_counter()
        seen: set[int] = set()
        for u, a in zip(vectors, thresholds):
            sub = self.query_conjunction([u], [a])
            for idx in sub.indexes:
                if idx not in seen:
                    seen.add(idx)
                    result.indexes.append(idx)
                    if record_times:
                        result.emit_times.append(time.perf_counter())
        if record_times:
            result.end_time = time.perf_counter()
        return result
