"""Unified distribution-aware dataset search engine.

``DatasetSearchEngine`` is the user-facing facade: it accepts a repository
(centralized setting) or a list of synopses (federated setting), lazily
builds the appropriate data structures, and routes arbitrary logical
expressions mixing percentile and preference predicates:

- percentile leaves go to the Ptile range structure (Theorem 4.11), with
  the threshold structure as a special case;
- preference leaves go to a Pref structure per rank ``k`` (Theorem 5.4);
- conjunctions/disjunctions combine index sets recursively, preserving the
  per-leaf guarantees (recall is exact; precision error ``eps + 2 delta``
  per leaf).

The engine also computes exact ground truth (centralized only) so examples,
tests and benchmarks can report recall/precision directly.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.core.bitset import DatasetBitmap
from repro.core.framework import Repository
from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.core.predicates import And, Expression, Or, Predicate
from repro.core.ptile_range import PtileRangeIndex
from repro.core.pref_index import PrefIndex
from repro.core.results import QueryResult
from repro.errors import ConstructionError, DeadlineExceeded, QueryError
from repro.geometry.rectangle import Rectangle
from repro.index.backend import check_engine
from repro.synopsis.base import Synopsis
from repro.synopsis.exact import ExactSynopsis


class DatasetSearchEngine:
    """Search a repository of datasets by distributional predicates.

    Parameters
    ----------
    synopses:
        One synopsis per dataset (federated setting), or None to derive
        exact synopses from ``repository`` (centralized setting).
    repository:
        The raw repository; optional in the federated setting (enables
        ground-truth evaluation when present).
    eps:
        Accuracy parameter shared by all structures.
    phi:
        Coreset failure probability (default ``1/N``).
    delta:
        Optional global synopsis-error bound.
    engine:
        Range-search backend name shared by every structure the engine
        builds (``"kd"`` default, ``"columnar"``, ``"rangetree"`` — see
        :mod:`repro.index.backend`).
    leaf_size:
        kd-tree leaf size (ignored by the other backends).
    rng:
        Randomness for coreset sampling.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.predicates import pred
    >>> rng = np.random.default_rng(0)
    >>> repo = Repository.from_arrays([rng.uniform(0, 1, (400, 2)) for _ in range(6)])
    >>> eng = DatasetSearchEngine(repository=repo, eps=0.1, rng=rng)
    >>> expr = pred(PercentileMeasure(Rectangle([0, 0], [1, 1])), 0.9)
    >>> sorted(eng.search(expr).indexes)
    [0, 1, 2, 3, 4, 5]
    """

    def __init__(
        self,
        synopses: Optional[Sequence[Synopsis]] = None,
        repository: Optional[Repository] = None,
        eps: float = 0.1,
        phi: Optional[float] = None,
        delta: Optional[float] = None,
        sample_size: Optional[int] = None,
        bounding_box: Optional[Rectangle] = None,
        engine: str = "kd",
        leaf_size: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if synopses is None and repository is None:
            raise ConstructionError("provide synopses and/or a repository")
        if synopses is None:
            synopses = [ExactSynopsis(ds.points) for ds in repository]
        self.synopses = list(synopses)
        self.repository = repository
        if repository is not None and len(self.synopses) != repository.n_datasets:
            raise ConstructionError("one synopsis per repository dataset required")
        dims = {s.dim for s in self.synopses}
        if len(dims) != 1:
            raise ConstructionError("all synopses must share the same dimension")
        self.dim = dims.pop()
        self.eps = float(eps)
        self._phi = phi
        self._delta = delta
        self._sample_size = sample_size
        self._bounding_box = bounding_box
        self.engine_kind = check_engine(engine)
        self._leaf_size = int(leaf_size)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._ptile: Optional[PtileRangeIndex] = None
        self._pref: dict[int, PrefIndex] = {}

    # ------------------------------------------------------------------
    # Lazy index construction
    # ------------------------------------------------------------------
    @property
    def ptile_index(self) -> PtileRangeIndex:
        """The (lazily built) Ptile range structure."""
        if self._ptile is None:
            box = self._bounding_box
            if box is None and self.repository is not None:
                box = self.repository.bounding_box()
            self._ptile = PtileRangeIndex(
                self.synopses,
                eps=self.eps,
                phi=self._phi,
                delta=self._delta,
                sample_size=self._sample_size,
                bounding_box=box,
                engine=self.engine_kind,
                leaf_size=self._leaf_size,
                rng=self._rng,
            )
        return self._ptile

    def pref_index(self, k: int) -> PrefIndex:
        """The (lazily built, cached) Pref structure for rank ``k``."""
        if k not in self._pref:
            self._pref[k] = PrefIndex(
                self.synopses, k=k, eps=self.eps, delta=self._delta,
                engine=self.engine_kind,
            )
        return self._pref[k]

    @property
    def n_datasets(self) -> int:
        """``N``."""
        return len(self.synopses)

    def build(self) -> "DatasetSearchEngine":
        """Eagerly build the Ptile structure (cold-start warmup hook).

        The engine is lazy by default: the first percentile query pays the
        full coreset-enumeration build.  Serving layers call ``build()``
        up front — ``repro serve`` warmup and the sharded executor's
        parallel :meth:`~repro.service.sharding.ShardedBatchExecutor.warm`
        both route through here — so no user query eats the cold build.
        Pref structures stay lazy (their rank ``k`` is query-dependent).
        Returns ``self`` for chaining.
        """
        _ = self.ptile_index
        return self

    def save(self, path, generation: int = 0) -> dict:
        """Persist the engine (synopses, built Ptile state, repository)
        into one snapshot container; see :mod:`repro.service.snapshot`."""
        from repro.service import snapshot

        return snapshot.save(self, path, generation=generation)

    @classmethod
    def load(cls, path, mmap: bool = True) -> "DatasetSearchEngine":
        """Reconstruct an engine saved by :meth:`save` (mmap-backed by
        default); refuses containers holding a different kind."""
        from repro.service import snapshot

        return snapshot.load_expected(path, "engine", mmap=mmap)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, expression: Expression, record_times: bool = False) -> QueryResult:
        """Answer ``q_Pi(P)`` approximately with the paper's guarantees.

        With ``record_times=True`` the expression's deduplicated leaves are
        evaluated in one batched pass (multi-box kernels, same structure
        as the cold service path) and each reported index is stamped with
        the completion time of the leaf at which its membership in the
        final answer became logically determined, so
        ``QueryResult.delays()`` measures real inter-report gaps.  Leaf
        completion stamps are taken as each leaf's answer is unpacked from
        the batch — still strictly per-leaf and monotone, but adjacent
        leaves that shared one backend call complete almost together.
        Indexes are then in emission order; without timing they are sorted.
        """
        if not record_times:
            return QueryResult(bitmap=self._eval_bits(expression))
        # Local import: the planner lives in the service layer, which
        # imports this module — a module-level import would be circular.
        from repro.service.planner import emit_schedule, plan_query

        result = QueryResult()
        result.start_time = time.perf_counter()
        plan = plan_query(expression)
        order = list(plan.leaves)
        answers = self.eval_leaf_batch_bits(list(plan.leaves.values()))
        leaf_results: dict = {}
        leaf_times: dict = {}
        for key, bits in zip(order, answers):
            # Stamp at unpack time: the instant this leaf's answer became
            # available to the evaluator (per-leaf, strictly monotone).
            leaf_results[key] = bits
            leaf_times[key] = time.perf_counter()
        schedule = emit_schedule(
            plan.expression,
            order,
            leaf_results,
            leaf_times,
            DatasetBitmap.full(self.n_datasets),
        )
        result.indexes = [idx for idx, _t in schedule]
        result.emit_times = [t for _idx, t in schedule]
        result.end_time = time.perf_counter()
        return result

    def _eval(self, expression: Expression) -> set[int]:
        """Set-algebra evaluation (compat shim over the bitset evaluator)."""
        return self._eval_bits(expression).to_set()

    def _eval_bits(self, expression: Expression) -> DatasetBitmap:
        if isinstance(expression, Predicate):
            return self.eval_leaf_bits(expression)
        if isinstance(expression, And):
            bits = [self._eval_bits(c) for c in expression.children]
            out = bits[0]
            for b in bits[1:]:
                out = out & b
            return out
        if isinstance(expression, Or):
            bits = [self._eval_bits(c) for c in expression.children]
            out = bits[0]
            for b in bits[1:]:
                out = out | b
            return out
        raise QueryError(f"unsupported expression node {type(expression).__name__}")

    def _leaf_query(self, leaf: Predicate) -> QueryResult:
        """Route one predicate leaf to the appropriate structure."""
        measure = leaf.measure
        if isinstance(measure, PercentileMeasure):
            return self.ptile_index.query(measure.rect, leaf.theta)
        if isinstance(measure, PreferenceMeasure):
            if not leaf.theta.is_threshold:
                raise QueryError(
                    "preference predicates support one-sided theta = [a, inf)"
                )
            return self.pref_index(measure.k).query(measure.vector, leaf.theta.lo)
        raise QueryError(f"unsupported measure {type(measure).__name__}")

    def eval_leaf(self, leaf: Predicate) -> set[int]:
        """Answer one predicate leaf against the appropriate structure.

        This is the reusable evaluation hook the service layer builds on:
        the sharded executor calls it per shard and the leaf-result cache
        stores its answers keyed by ``leaf.canonical_key()``.
        """
        return self._leaf_query(leaf).index_set

    def eval_leaf_bits(self, leaf: Predicate) -> DatasetBitmap:
        """One leaf's answer as a packed bitset over ``range(n_datasets)``."""
        return DatasetBitmap.from_indices(
            self._leaf_query(leaf).indexes, self.n_datasets
        )

    # Backwards-compatible alias (pre-service releases named the hook this).
    _eval_leaf = eval_leaf

    def _leaf_batch_query(
        self, leaves: Sequence[Predicate]
    ) -> list[QueryResult]:
        """Raw per-leaf results, batching percentile leaves where it pays.

        All percentile leaves are routed through
        :meth:`~repro.core.ptile_range.PtileRangeIndex.query_many` — one
        multi-box backend call for the whole batch instead of one tree
        walk per leaf.  Preference leaves are evaluated individually (each
        rank ``k`` owns a separate Pref structure).  Answers are aligned
        with the input order.
        """
        leaves = list(leaves)
        results: list[Optional[QueryResult]] = [None] * len(leaves)
        ptile_pos: list[int] = []
        ptile_queries: list[tuple] = []
        for i, leaf in enumerate(leaves):
            if isinstance(leaf.measure, PercentileMeasure):
                ptile_pos.append(i)
                ptile_queries.append((leaf.measure.rect, leaf.theta))
            else:
                results[i] = self._leaf_query(leaf)
        if ptile_queries:
            batched = self.ptile_index.query_many(ptile_queries)
            for i, res in zip(ptile_pos, batched):
                results[i] = res
        return results

    def eval_leaf_batch(self, leaves: Sequence[Predicate]) -> list[set[int]]:
        """A batch of leaf answers as sets, identical to
        ``[self.eval_leaf(l) for l in leaves]`` but batched."""
        return [r.index_set for r in self._leaf_batch_query(leaves)]

    def eval_leaf_batch_bits(  # lint: hot-path
        self, leaves: Sequence[Predicate], tracer=None, deadline=None
    ) -> list[DatasetBitmap]:
        """A batch of leaf answers as packed bitsets (same batching).

        With a tracer the whole kernel call runs under an
        ``engine_leaf_batch`` span, nested inside whatever span the
        calling thread currently has open (the sharded executor's
        per-shard span on the warm path).

        With a ``deadline`` (a :class:`~repro.service.deadline.Deadline`)
        the batch switches to the polled per-leaf path: the budget is
        checked between leaves and :class:`~repro.errors.DeadlineExceeded`
        carries the prefix of answers already computed.  The deadline-free
        hot path is untouched (one extra pointer check).
        """
        if deadline is not None:
            return self._eval_leaf_batch_bits_polled(leaves, deadline, tracer)
        if tracer is None:
            n = self.n_datasets
            return [
                DatasetBitmap.from_indices(r.indexes, n)
                for r in self._leaf_batch_query(leaves)
            ]
        with tracer.span(
            "engine_leaf_batch", n_leaves=len(leaves), n_datasets=self.n_datasets
        ):
            n = self.n_datasets
            return [
                DatasetBitmap.from_indices(r.indexes, n)
                for r in self._leaf_batch_query(leaves)
            ]

    def _eval_leaf_batch_bits_polled(
        self, leaves: Sequence[Predicate], deadline, tracer=None
    ) -> list[DatasetBitmap]:
        """Leaf-at-a-time evaluation with a deadline poll between leaves.

        Trades the multi-box batching away for checkpoint granularity —
        this path only runs when the caller asked for a budget, i.e. when
        bounded latency matters more than peak throughput.  The raised
        ``DeadlineExceeded.partial`` is an aligned prefix of the input
        order, so callers can keep the exact answers already computed.
        """
        del tracer  # per-leaf spans would dominate the budget being guarded
        leaves = list(leaves)
        n = self.n_datasets
        out: list[DatasetBitmap] = []
        for i, leaf in enumerate(leaves):
            if deadline.expired():
                raise DeadlineExceeded(
                    f"deadline expired after {i}/{len(leaves)} leaves",
                    stage="engine_leaf_batch",
                    partial=out,
                )
            out.append(
                DatasetBitmap.from_indices(self._leaf_query(leaf).indexes, n)
            )
        return out

    # ------------------------------------------------------------------
    # Dynamics (Remark 1)
    # ------------------------------------------------------------------
    def insert_synopsis(self, synopsis: Synopsis, delta: Optional[float] = None) -> int:
        """Dynamically add a dataset; returns its index (``= old N``).

        Structures that are already built are updated in place (the Ptile
        range structure and every cached Pref structure support Remark 1
        insertions); lazily-built ones will simply include the new synopsis
        when first constructed.  The raw ``repository`` — used only for
        ground truth — is not extended here; callers that track it (e.g. the
        service layer) extend it themselves.
        """
        if synopsis.dim != self.dim:
            raise ConstructionError("synopsis dimension mismatch")
        if delta is None:
            delta = self._delta
        self.synopses.append(synopsis)
        if self._ptile is not None:
            self._ptile.insert_synopsis(synopsis, delta=delta)
        for index in self._pref.values():
            index.insert_synopsis(synopsis, delta=delta)
        return len(self.synopses) - 1

    # ------------------------------------------------------------------
    # Ground truth (centralized only)
    # ------------------------------------------------------------------
    def ground_truth(self, expression: Expression) -> set[int]:
        """Exact ``q_Pi(P)`` by brute force over the raw repository."""
        if self.repository is None:
            raise QueryError("ground truth requires the raw repository")
        return expression.ground_truth(self.repository)

    def evaluate_quality(self, expression: Expression) -> dict:
        """Recall/precision diagnostics of one search against ground truth."""
        truth = self.ground_truth(expression)
        got = self.search(expression).index_set
        recall = 1.0 if not truth else len(truth & got) / len(truth)
        precision = 1.0 if not got else len(truth & got) / len(got)
        return {
            "truth_size": len(truth),
            "reported_size": len(got),
            "recall": recall,
            "precision": precision,
            "false_positives": sorted(got - truth),
            "missed": sorted(truth - got),
        }
