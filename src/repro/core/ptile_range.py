"""Approximate Ptile index for general range-predicates (Section 4.3).

Implements Algorithms 3 (construction) and 4 (query) and therefore
Theorem 4.11: for ``theta = [a_theta, b_theta]`` the returned ``J``
satisfies ``q_Pi(P) ⊆ J`` and every ``j ∈ J`` has

    a_theta - 2 eps' - 2 delta_j  <=  M_R(P_j)  <=  b_theta + 2 eps' + 2 delta_j

(Lemmas 4.7-4.8; the theorem folds the factor 2 by halving eps upfront),
with no duplicates (Lemma 4.9).

The crux versus the threshold structure: an arbitrary coreset rectangle
inside ``R`` can under-count (Figure 2), so only the *maximal* coreset
rectangle inside ``R`` may decide membership.  Algorithm 3 realizes this by
storing pairs ``(rho, rho_hat)`` such that a query orthant hit certifies
``rho ⊆ R ⊂⊂ rho_hat`` — which forces ``rho`` maximal (Lemma 4.5).  The
pair set is built by :func:`~repro.geometry.rect_enum.enumerate_maximal_pairs`
(the exact pruning proved in that module: each inner rectangle pairs with
its one-step neighbour expansion over the coreset-plus-bounding-box grid).

Mapped points live in ``R^{4d+2}``: the 4d pair coordinates plus two shifted
weight coordinates ``w + delta_i`` and ``w - delta_i``, so both sides of the
per-dataset slack become global box constraints (Remark 2 support).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core._ptile_common import (
    PtileIndexBase,
    build_engine,
    draw_coreset,
    range_point_matrix,
)
from repro.core.results import QueryResult
from repro.errors import ConstructionError, QueryError
from repro.geometry.interval import Interval
from repro.geometry.rect_enum import RectangleGrid, generalized_pairs_arrays
from repro.geometry.rectangle import Rectangle
from repro.index.query_box import QueryBox
from repro.synopsis.base import Synopsis

#: Fraction of the coreset span used to pad the automatic bounding box.
AUTO_BOX_PAD = 0.25


class PtileRangeIndex(PtileIndexBase):
    """The Ptile data structure for one range-predicate (Theorem 4.11).

    Parameters are as in
    :class:`~repro.core.ptile_threshold.PtileThresholdIndex`, plus:

    bounding_box:
        The box ``B`` of Section 4.3.  All data and all query rectangles are
        assumed to lie inside ``B``; queries are clipped to (a slight
        shrinking of) ``B``.  When omitted, a box is derived from the drawn
        coresets, padded by ``AUTO_BOX_PAD`` of the span per axis.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.synopsis import ExactSynopsis
    >>> rng = np.random.default_rng(1)
    >>> data = [rng.uniform(0, 1, size=(400, 1)) for _ in range(6)]
    >>> idx = PtileRangeIndex([ExactSynopsis(p) for p in data], eps=0.1, rng=rng)
    >>> res = idx.query(Rectangle([0.0], [0.5]), Interval(0.3, 0.7))
    >>> len(res.indexes) == 6   # uniform data: every dataset has mass ~0.5
    True
    """

    def __init__(
        self,
        synopses: Iterable[Synopsis],
        eps: float = 0.1,
        phi: Optional[float] = None,
        delta: Optional[float] = None,
        sample_size: Optional[int] = None,
        bounding_box: Optional[Rectangle] = None,
        engine: str = "kd",
        leaf_size: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(synopses, eps, phi, delta, sample_size, engine, leaf_size, rng)
        # Draw all coresets first: the automatic bounding box must cover
        # every coreset point before pair enumeration can begin.
        for synopsis, delta_i in self._pending:
            self._register(synopsis, delta_i)
        del self._pending
        self.bounding_box = (
            bounding_box
            if bounding_box is not None
            else self._auto_bounding_box()
        )
        all_points: list[np.ndarray] = []
        all_ids: list = []
        for key in list(self._synopses):
            pts, ids = self._mapped_points(key)
            all_points.append(pts)
            all_ids.extend(ids)
        stacked = np.vstack(all_points)
        if stacked.shape[0] == 0:
            raise ConstructionError(
                "no generalized pairs could be enumerated (is the bounding "
                "box degenerate on some axis?); widen the box or the data"
            )
        self._tree = build_engine(
            stacked, all_ids, self.engine_kind, self._leaf_size
        )

    # ------------------------------------------------------------------
    # Construction (Algorithm 3)
    # ------------------------------------------------------------------
    def _register(self, synopsis: Synopsis, delta_i: float) -> int:
        key = self._next_key
        self._next_key += 1
        self._synopses[key] = synopsis
        self._deltas[key] = delta_i
        self._coresets[key] = draw_coreset(synopsis, self._sample_size, self._rng)
        return key

    def _auto_bounding_box(self) -> Rectangle:
        pts = np.vstack(list(self._coresets.values()))
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        return Rectangle(lo - AUTO_BOX_PAD * span, hi + AUTO_BOX_PAD * span)

    def _mapped_points(self, key: int) -> tuple[np.ndarray, list]:
        """Map maximal pairs to ``(rho^-, rho_hat^-, rho^+, rho_hat^+, w±delta)``.

        Fully vectorized: the pair family arrives as coordinate block
        matrices from :func:`~repro.geometry.rect_enum.generalized_pairs_arrays`
        and the ``(P, 4d+2)`` point matrix is assembled in one shot — no
        per-pair Python concatenation.  A coreset yielding zero pairs
        returns a correctly shaped ``(0, 4d+2)`` matrix.
        """
        coreset = self._coresets[key]
        if not self.bounding_box.contains_points(coreset).all():
            raise ConstructionError(
                "bounding box does not contain a coreset; pass a larger box"
            )
        grid = RectangleGrid(coreset, bounding_box=self.bounding_box)
        in_lo, in_hi, out_lo, out_hi, weights = generalized_pairs_arrays(grid)
        pts = range_point_matrix(
            in_lo, in_hi, out_lo, out_hi, weights, self._deltas[key]
        )
        ids = [(key, local) for local in range(pts.shape[0])]
        self._point_ids[key] = ids
        return pts, ids

    # ------------------------------------------------------------------
    # Query (Algorithm 4)
    # ------------------------------------------------------------------
    def _clip_to_box(self, rect: Rectangle) -> Rectangle:
        """Clip the query to (slightly inside) the bounding box ``B``.

        Section 4.3 assumes ``R ⊆ B``; clipping discards only regions where
        no coreset point can lie.  Shrinking by a hair keeps ``R`` strictly
        inside ``B`` so Lemma 4.6's facet expansion always has room.
        """
        span = self.bounding_box.hi - self.bounding_box.lo
        nudge = 1e-9 * np.where(span > 0, span, 1.0)
        lo = np.maximum(rect.lo, self.bounding_box.lo + nudge)
        hi = np.minimum(rect.hi, self.bounding_box.hi - nudge)
        hi = np.maximum(hi, lo)  # degenerate but valid if fully outside
        return Rectangle(lo, hi)

    def _query_box(self, rect: Rectangle, theta: Interval) -> QueryBox:
        """Validate one ``(R, theta)`` query and build its Algorithm-4 box."""
        self._check_query_rect(rect)
        a = max(0.0, theta.lo)
        b = min(1.0, theta.hi)
        if a > b:
            raise QueryError(f"theta {theta} does not intersect [0, 1]")
        rect = self._clip_to_box(rect)
        cons = rect.query_orthant_4d()
        eps = self.eps_effective
        cons.append((a - eps, np.inf, False, False))   # w + delta_i
        cons.append((-np.inf, b + eps, False, False))  # w - delta_i
        return QueryBox(cons)

    def query(
        self,
        rect: Rectangle,
        theta: Interval,
        record_times: bool = False,
    ) -> QueryResult:
        """Report all datasets with (approximately) ``M_R(P_i) ∈ theta``."""
        return self._report_loop(self._query_box(rect, theta), record_times)

    def query_many(
        self, queries: Sequence[tuple[Rectangle, Interval]]
    ) -> list[QueryResult]:
        """Answer a batch of ``(rect, theta)`` queries in one backend call.

        The batched, untimed form of :meth:`query`: all boxes go through
        the backend's multi-box kernel (shared kd traversal / broadcast
        columnar pass) at once, with identical answer sets to the per-query
        loop.  This is what the service's cold path feeds each shard's
        deduplicated leaf schedule through.
        """
        boxes = [self._query_box(rect, theta) for rect, theta in queries]
        return self._report_groups_batch(boxes)

    # ------------------------------------------------------------------
    # Dynamics (Remark 1)
    # ------------------------------------------------------------------
    def insert_synopsis(
        self, synopsis: Synopsis, delta: Optional[float] = None
    ) -> int:
        """Add a dataset; returns its stable key."""
        if not self._tree.supports_insert:
            raise ConstructionError(
                f"engine {self.engine_kind!r} is static; dynamic updates "
                "require a dynamic backend ('kd' or 'columnar')"
            )
        if synopsis.dim != self.dim:
            raise ConstructionError("synopsis dimension mismatch")
        if delta is None:
            delta = synopsis.delta_ptile
            if delta is None:
                raise ConstructionError("synopsis does not support class F_□")
        key = self._register(synopsis, float(delta))
        pts, ids = self._mapped_points(key)
        self._tree.insert(pts, ids)
        return key

    def delete_synopsis(self, key: int) -> None:
        """Remove a dataset by key."""
        if key not in self._synopses:
            raise KeyError(f"unknown dataset key {key}")
        for pid in self._point_ids[key]:
            self._tree.remove(pid)
        del self._synopses[key], self._deltas[key]
        del self._coresets[key], self._point_ids[key]

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def coreset_mass(self, key: int, rect: Rectangle) -> float:
        """``|S_i ∩ R| / |S_i|`` — the coreset's estimate of ``M_R(P_i)``."""
        coreset = self._coresets[key]
        return rect.count_inside(coreset) / coreset.shape[0]
