"""Distribution-aware nearest-neighbor indexing (Section 6 extension).

Section 6: *"For nearest neighbor queries: given a query point q and a
threshold tau, return all datasets P_j such that dist(q, P_j) <= tau."*
The paper identifies the missing ingredient as a small coreset with
nearest-neighbor guarantees and points to additive-error constructions
[26].  This module realizes the extension with r-covers
(:class:`~repro.synopsis.cover.CoverSynopsis`):

- Construction: the covers of all datasets are merged into one dynamic
  kd-tree, each point tagged with its dataset key.
- Query ``(q, tau)``: a ball query (box prefilter + exact distance check)
  over cover points within ``tau + r_j``, de-duplicated by dataset.

Guarantees (with per-dataset cover radius ``r_j``):

- (recall)    if ``dist(q, P_j) <= tau`` then ``dist(q, C_j) <= tau + r_j``
  and ``j`` is reported;
- (precision) if ``j`` is reported then ``dist(q, C_j) <= tau + r_j``, so
  ``dist(q, P_j) <= tau + 2 r_j`` — the additive ``2r`` analogue of the
  Ptile/Pref ``eps + 2 delta`` slack.

Both are verified in ``tests/core/test_nn_index.py`` and measured by the
T-NN ablation benchmark.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from repro.core.results import QueryResult
from repro.errors import ConstructionError, QueryError
from repro.index.kd_tree import DynamicKDTree
from repro.index.query_box import QueryBox
from repro.synopsis.cover import CoverSynopsis


class NearestNeighborIndex:
    """Report all datasets within distance ``tau`` of a query point.

    Parameters
    ----------
    covers:
        One :class:`~repro.synopsis.cover.CoverSynopsis` per dataset.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(1)
    >>> near = rng.uniform(0.0, 0.2, size=(200, 2))
    >>> far = rng.uniform(0.8, 1.0, size=(200, 2))
    >>> idx = NearestNeighborIndex([CoverSynopsis(near, 0.05),
    ...                             CoverSynopsis(far, 0.05)])
    >>> idx.query(np.array([0.1, 0.1]), tau=0.2).index_set
    {0}
    """

    def __init__(self, covers: Iterable[CoverSynopsis]) -> None:
        self._covers: dict[int, CoverSynopsis] = {}
        self._next_key = 0
        cover_list = list(covers)
        if not cover_list:
            raise ConstructionError("need at least one cover synopsis")
        dims = {c.dim for c in cover_list}
        if len(dims) != 1:
            raise ConstructionError("all covers must share the same dimension")
        self.dim = dims.pop()
        rows, ids = [], []
        for cov in cover_list:
            key = self._admit(cov)
            for local, point in enumerate(cov.cover_points):
                rows.append(point)
                ids.append((key, local))
        self._tree = DynamicKDTree(np.asarray(rows), ids=ids)

    def _admit(self, cov: CoverSynopsis) -> int:
        if cov.dim != self.dim:
            raise ConstructionError("cover dimension mismatch")
        key = self._next_key
        self._next_key += 1
        self._covers[key] = cov
        return key

    @property
    def n_datasets(self) -> int:
        """Number of indexed datasets."""
        return len(self._covers)

    @property
    def max_radius(self) -> float:
        """Largest per-dataset cover radius (drives the box prefilter)."""
        return max(c.radius for c in self._covers.values())

    def radius_of(self, key: int) -> float:
        """The cover radius ``r_j`` of a dataset."""
        return self._covers[key].radius

    # ------------------------------------------------------------------
    def query(
        self, point: np.ndarray, tau: float, record_times: bool = False
    ) -> QueryResult:
        """Report datasets with (approximately) ``dist(q, P_j) <= tau``."""
        q = np.asarray(point, dtype=float)
        if q.shape != (self.dim,):
            raise QueryError(f"query point must have shape ({self.dim},)")
        if tau < 0.0:
            raise QueryError("tau must be non-negative")
        result = QueryResult()
        if record_times:
            result.start_time = time.perf_counter()
        reach = tau + self.max_radius
        box = QueryBox.closed(q - reach, q + reach)
        best: dict[int, float] = {}
        for key, local in self._tree.report(box):
            dist = float(
                np.linalg.norm(self._covers[key].cover_points[local] - q)
            )
            if dist < best.get(key, np.inf):
                best[key] = dist
        for key, dist in best.items():
            if dist <= tau + self._covers[key].radius:
                result.indexes.append(key)
                if record_times:
                    result.emit_times.append(time.perf_counter())
        if record_times:
            result.end_time = time.perf_counter()
        result.stats["candidates"] = len(best)
        return result

    # ------------------------------------------------------------------
    def insert_cover(self, cover: CoverSynopsis) -> int:
        """Add a dataset's cover; returns its stable key."""
        key = self._admit(cover)
        ids = [(key, local) for local in range(cover.size)]
        self._tree.insert(cover.cover_points, ids)
        return key

    def delete_cover(self, key: int) -> None:
        """Remove a dataset by key."""
        if key not in self._covers:
            raise KeyError(f"unknown dataset key {key}")
        for local in range(self._covers[key].size):
            self._tree.remove((key, local))
        del self._covers[key]
