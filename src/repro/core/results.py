"""Query results with reporting-order metadata.

The paper's data structures are *enumeration* structures: indexes are
reported one at a time with bounded delay (Section 2, "Delay guarantees").
``QueryResult`` therefore records the order in which indexes were emitted
and per-emission timestamps, so the T-DELAY benchmark can measure the gap
between consecutive reports directly.

The warm serving path produces answers as packed
:class:`~repro.core.bitset.DatasetBitmap` bitsets rather than index lists;
a result may carry the bitmap and materialize ``indexes`` lazily, so the
Python-int list is only built when a consumer actually reads it (the HTTP
server's bitset wire format never does).
"""

from __future__ import annotations

from typing import Optional

from repro.core.bitset import DatasetBitmap


class QueryResult:
    """The outcome of one distribution-aware query.

    Attributes
    ----------
    indexes:
        Reported dataset indexes, in emission order (no duplicates).
        Materialized lazily (in sorted order) from ``bitmap`` when the
        result was produced by the bitset warm path.
    bitmap:
        The answer as a packed bitset, when the producer had one; None for
        enumeration-structure results that report indexes one at a time.
    emit_times:
        ``time.perf_counter()`` stamps, one per emitted index (same order),
        plus the query start time in ``start_time`` — enabling delay
        measurements.  Populated only when the query was issued with
        ``record_times=True``.
    stats:
        Free-form per-query counters (nodes visited, points deleted, ...).
    trace:
        Serialized span tree (a plain dict) when the query was issued with
        tracing enabled; None otherwise.  See
        :mod:`repro.service.observability` for the schema.
    maybe_bitmap:
        For *degraded* answers only (``stats["degraded"]`` is set): the
        datasets that might additionally belong to the answer beyond the
        certain ones in ``bitmap``/``indexes`` — disjoint from them, so
        the engine's answer satisfies ``must ⊆ answer ⊆ must ∪ maybe``.
        None for exact results.  See :mod:`repro.service.degrade`.
    """

    __slots__ = (
        "_indexes",
        "bitmap",
        "start_time",
        "end_time",
        "emit_times",
        "stats",
        "trace",
        "maybe_bitmap",
        "_index_set",
        "_index_set_len",
    )

    def __init__(
        self,
        indexes: Optional[list[int]] = None,
        start_time: Optional[float] = None,
        end_time: Optional[float] = None,
        emit_times: Optional[list[float]] = None,
        stats: Optional[dict] = None,
        bitmap: Optional[DatasetBitmap] = None,
        trace: Optional[dict] = None,
        maybe_bitmap: Optional[DatasetBitmap] = None,
    ) -> None:
        self._indexes = indexes if indexes is not None else ([] if bitmap is None else None)
        self.bitmap = bitmap
        self.start_time = start_time
        self.end_time = end_time
        self.emit_times = emit_times if emit_times is not None else []
        self.stats = stats if stats is not None else {}
        self.trace = trace
        self.maybe_bitmap = maybe_bitmap
        self._index_set: Optional[set[int]] = None
        self._index_set_len = -1

    # ------------------------------------------------------------------
    @property
    def indexes(self) -> list[int]:
        """Reported indexes; materialized from ``bitmap`` on first read."""
        if self._indexes is None:
            self._indexes = self.bitmap.to_list()
        return self._indexes

    @indexes.setter
    def indexes(self, value: list[int]) -> None:
        self._indexes = value
        # The assigned list is now the sole answer; a bitmap from a
        # previous producer would silently disagree with it (and the wire
        # encoder prefers the bitmap), so drop it.
        self.bitmap = None
        self._index_set = None
        self._index_set_len = -1

    @property
    def index_set(self) -> set[int]:
        """The reported indexes as a set ``J``.

        Computed once and cached (rebuilding a fresh set per access made
        every recall/precision loop quadratic).  Enumeration structures
        only ever *append* to ``indexes``, so the cache revalidates by
        length and is transparent to the report loops.
        """
        if self._indexes is None and self.bitmap is not None:
            if self._index_set is None:
                self._index_set = self.bitmap.to_set()
                self._index_set_len = len(self._index_set)
            return self._index_set
        if self._index_set is None or self._index_set_len != len(self.indexes):
            self._index_set = set(self.indexes)
            self._index_set_len = len(self._index_set)
        return self._index_set

    @property
    def out_size(self) -> int:
        """``OUT = |J|`` (popcount when only the bitmap is materialized)."""
        if self._indexes is None and self.bitmap is not None:
            return self.bitmap.count()
        return len(self.indexes)

    def delays(self) -> list[float]:
        """Gaps between consecutive emissions (incl. start→first, last→end).

        Empty when timing was not recorded.
        """
        if self.start_time is None or self.end_time is None or not self.emit_times:
            return []
        stamps = [self.start_time, *self.emit_times, self.end_time]
        return [b - a for a, b in zip(stamps, stamps[1:])]

    def max_delay(self) -> Optional[float]:
        """Largest inter-report gap, or None without timing data."""
        gaps = self.delays()
        return max(gaps) if gaps else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryResult(out_size={self.out_size}, "
            f"timed={self.start_time is not None})"
        )
