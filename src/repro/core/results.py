"""Query results with reporting-order metadata.

The paper's data structures are *enumeration* structures: indexes are
reported one at a time with bounded delay (Section 2, "Delay guarantees").
``QueryResult`` therefore records the order in which indexes were emitted
and per-emission timestamps, so the T-DELAY benchmark can measure the gap
between consecutive reports directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class QueryResult:
    """The outcome of one distribution-aware query.

    Attributes
    ----------
    indexes:
        Reported dataset indexes, in emission order (no duplicates).
    emit_times:
        ``time.perf_counter()`` stamps, one per emitted index (same order),
        plus the query start time in ``start_time`` — enabling delay
        measurements.  Populated only when the query was issued with
        ``record_times=True``.
    stats:
        Free-form per-query counters (nodes visited, points deleted, ...).
    """

    indexes: list[int] = field(default_factory=list)
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    emit_times: list[float] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def index_set(self) -> set[int]:
        """The reported indexes as a set ``J``."""
        return set(self.indexes)

    @property
    def out_size(self) -> int:
        """``OUT = |J|``."""
        return len(self.indexes)

    def delays(self) -> list[float]:
        """Gaps between consecutive emissions (incl. start→first, last→end).

        Empty when timing was not recorded.
        """
        if self.start_time is None or self.end_time is None or not self.emit_times:
            return []
        stamps = [self.start_time, *self.emit_times, self.end_time]
        return [b - a for a, b in zip(stamps, stamps[1:])]

    def max_delay(self) -> Optional[float]:
        """Largest inter-report gap, or None without timing data."""
        gaps = self.delays()
        return max(gaps) if gaps else None
