"""The paper's primary contribution: distribution-aware indexing.

This subpackage implements the theoretical framework of Section 1.1 and all
data structures of Sections 4-5 and Appendices C-D:

- :mod:`~repro.core.framework` — datasets, repositories, schemas.
- :mod:`~repro.core.measures` — percentile (``F_□``) and top-k preference
  (``F_k``) measure functions.
- :mod:`~repro.core.predicates` — range/threshold predicates and logical
  expressions (conjunction/disjunction ASTs).
- :mod:`~repro.core.ptile_threshold` — Algorithms 1-2 (Theorem 4.4).
- :mod:`~repro.core.ptile_range` — Algorithms 3-4 (Theorem 4.11).
- :mod:`~repro.core.ptile_logical` — Appendix C.4 (Theorem C.8).
- :mod:`~repro.core.ptile_exact_1d` — Appendix C.1 (Theorem C.5).
- :mod:`~repro.core.pref_index` — Algorithms 5-6 (Theorem 5.4).
- :mod:`~repro.core.pref_logical` — Appendix D.1 (Theorem D.4).
- :mod:`~repro.core.engine` — a unified search engine routing arbitrary
  logical expressions to the appropriate index.
- :mod:`~repro.core.bitset` — packed ``uint64`` bitsets, the warm-path
  answer representation shared by the engine and the service layer.
"""

from repro.core.bitset import DatasetBitmap, bitmap_from_wire
from repro.core.framework import Dataset, Repository
from repro.core.measures import MeasureFunction, PercentileMeasure, PreferenceMeasure
from repro.core.predicates import And, Or, Predicate, pred
from repro.core.results import QueryResult
from repro.core.ptile_threshold import PtileThresholdIndex
from repro.core.ptile_range import PtileRangeIndex
from repro.core.ptile_logical import PtileLogicalIndex
from repro.core.ptile_exact_1d import ExactPtile1DIndex
from repro.core.pref_index import PrefIndex
from repro.core.pref_logical import PrefLogicalIndex
from repro.core.engine import DatasetSearchEngine
from repro.core.nn_index import NearestNeighborIndex
from repro.core.diversity_index import DiversityIndex

__all__ = [
    "Dataset",
    "DatasetBitmap",
    "bitmap_from_wire",
    "Repository",
    "MeasureFunction",
    "PercentileMeasure",
    "PreferenceMeasure",
    "Predicate",
    "And",
    "Or",
    "pred",
    "QueryResult",
    "PtileThresholdIndex",
    "PtileRangeIndex",
    "PtileLogicalIndex",
    "ExactPtile1DIndex",
    "PrefIndex",
    "PrefLogicalIndex",
    "DatasetSearchEngine",
    "NearestNeighborIndex",
    "DiversityIndex",
]
