"""Shared machinery of the two Ptile data structures (Sections 4.2-4.3).

Both indexes follow the same recipe (Section 4.1):

1. draw a coreset ``S_i`` of ``Theta(eps^-2 log(N/phi))`` samples from each
   synopsis (an ``(eps+delta_i)``-sample by Lemma 2.1);
2. enumerate combinatorially different rectangles over each coreset and map
   them (or maximal pairs of them) to weighted points in a higher-dimensional
   space;
3. index the mapped points with a pluggable range-search backend
   (:mod:`repro.index.backend`); and
4. answer queries with one ``report_groups`` bulk pass — the batched form
   of the paper's repeated ``ReportFirst`` + temporary deletion of all
   points of the reported dataset (Algorithms 2, 4), which is kept as the
   timed mode so per-report delays stay measurable.

Per-dataset deltas (Remark 2) are supported exactly by storing *two* weight
coordinates per mapped point, ``w + delta_i`` and ``w - delta_i``: the
per-dataset slack then becomes a global box constraint
(``w + delta_i >= a - eps`` and ``w - delta_i <= b + eps``).
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.results import QueryResult
from repro.errors import ConstructionError, QueryError
from repro.geometry.epsilon_sample import epsilon_of_sample_size, epsilon_sample_size
from repro.geometry.rectangle import Rectangle
from repro.index.backend import (
    build_backend,
    check_engine,
    report_groups_many_of,
)
from repro.index.query_box import QueryBox
from repro.synopsis.base import Synopsis


def resolve_deltas(
    synopses: Sequence[Synopsis], delta: Optional[float]
) -> list[float]:
    """Per-dataset synopsis errors ``delta_i``.

    ``delta`` overrides all synopsis-advertised errors (the paper's "known
    global upper bound" setting); otherwise each synopsis' own
    ``delta_ptile`` is used (Remark 2's per-dataset setting).
    """
    if delta is not None:
        if not 0.0 <= delta < 1.0:
            raise ConstructionError(f"delta must be in [0, 1), got {delta}")
        return [float(delta)] * len(synopses)
    deltas = []
    for i, syn in enumerate(synopses):
        d_i = syn.delta_ptile
        if d_i is None:
            raise ConstructionError(
                f"synopsis {i} does not support the percentile class F_□"
            )
        deltas.append(float(min(d_i, 1.0 - 1e-12)))
    return deltas


#: Default cap on mapped points contributed by one dataset.  The rectangle
#: enumeration grows as (s^2/2)^d in the coreset size s; this budget keeps
#: the structure laptop-sized while the query slack is widened to the
#: *effective* eps of the capped coreset so all guarantees stay honest.
DEFAULT_POINT_BUDGET = 4096


def max_sample_for_budget(dim: int, budget: int) -> int:
    """Largest coreset size whose rectangle family fits the point budget."""
    per_axis = budget ** (1.0 / dim)
    # s(s+1)/2 <= per_axis  =>  s ~ sqrt(2 * per_axis)
    s = int((2.0 * per_axis) ** 0.5)
    return max(2, s)


def resolve_phi(phi: Optional[float], n_datasets: int) -> float:
    """Effective coreset failure probability: explicit, or the 1/N default.

    Single owner of the default so the service-layer sharded executor
    resolves exactly what an unsharded engine would.
    """
    return phi if phi is not None else 1.0 / max(2, n_datasets)


def resolve_sample_size(
    eps: float,
    phi: Optional[float],
    n_datasets: int,
    sample_size: Optional[int],
    dim: int,
    point_budget: int = DEFAULT_POINT_BUDGET,
) -> int:
    """Coreset size: explicit override, or the Theta(eps^-2 log(N/phi))
    bound capped by the per-dataset mapped-point budget."""
    if sample_size is not None:
        if sample_size < 2:
            raise ConstructionError("sample_size must be >= 2")
        return int(sample_size)
    theoretical = epsilon_sample_size(eps, resolve_phi(phi, n_datasets), n_datasets)
    return min(theoretical, max_sample_for_budget(dim, point_budget))


def draw_coreset(
    synopsis: Synopsis, size: int, rng: np.random.Generator
) -> np.ndarray:
    """``S_i = S_{P_i}.Sample(size)`` with duplicate columns tolerated."""
    sample = synopsis.sample(size, rng)
    sample = np.asarray(sample, dtype=float)
    if sample.ndim != 2 or sample.shape[0] == 0:
        raise ConstructionError("synopsis returned an invalid sample")
    return sample


def range_point_matrix(
    inner_lo: np.ndarray,
    inner_hi: np.ndarray,
    outer_lo: np.ndarray,
    outer_hi: np.ndarray,
    weights: np.ndarray,
    delta: float,
) -> np.ndarray:
    """The ``(P, 4d+2)`` mapped-point matrix of Algorithm 3, in one shot.

    Column order matches the per-pair concatenation the builders used to
    do row by row: ``(rho^-, rho_hat^-, rho^+, rho_hat^+, w+delta,
    w-delta)``.  ``P = 0`` yields a correctly *shaped* ``(0, 4d+2)``
    matrix — never the ragged 1-d array ``np.asarray([])`` would produce —
    so empty coresets flow through ``np.vstack`` and backend ``insert``
    without special-casing.
    """
    n, d = inner_lo.shape
    out = np.empty((n, 4 * d + 2))
    out[:, 0:d] = inner_lo
    out[:, d : 2 * d] = outer_lo
    out[:, 2 * d : 3 * d] = inner_hi
    out[:, 3 * d : 4 * d] = outer_hi
    out[:, 4 * d] = weights + delta
    out[:, 4 * d + 1] = weights - delta
    return out


def threshold_point_matrix(
    lo: np.ndarray, hi: np.ndarray, weights: np.ndarray, delta: float
) -> np.ndarray:
    """The ``(P, 2d+1)`` mapped-point matrix of Algorithm 1, in one shot.

    Column order: ``(rho^-, rho^+, w+delta)`` — the row-by-row
    ``to_point_2d`` concatenation of the legacy builder, assembled as
    three block writes.  Shaped-empty behaviour as in
    :func:`range_point_matrix`.
    """
    n, d = lo.shape
    out = np.empty((n, 2 * d + 1))
    out[:, 0:d] = lo
    out[:, d : 2 * d] = hi
    out[:, 2 * d] = weights + delta
    return out


def build_engine(points: np.ndarray, ids: list, engine: str, leaf_size: int):
    """Instantiate the configured range-search backend over mapped points.

    Thin alias for :func:`repro.index.backend.build_backend`, kept so the
    core layer (and older callers) has a single construction entry point.
    """
    return build_backend(points, ids, engine=engine, leaf_size=leaf_size)


class PtileIndexBase:
    """Common bookkeeping for the threshold and range Ptile indexes."""

    def __init__(
        self,
        synopses: Iterable[Synopsis],
        eps: float,
        phi: Optional[float],
        delta: Optional[float],
        sample_size: Optional[int],
        engine: str,
        leaf_size: int,
        rng: Optional[np.random.Generator],
    ) -> None:
        self._synopses: dict[int, Synopsis] = {}
        self._deltas: dict[int, float] = {}
        self._coresets: dict[int, np.ndarray] = {}
        self._point_ids: dict[int, list] = {}
        syn_list = list(synopses)
        if not syn_list:
            raise ConstructionError("need at least one synopsis")
        if not 0.0 < eps < 1.0:
            raise ConstructionError(f"eps must be in (0, 1), got {eps}")
        dims = {s.dim for s in syn_list}
        if len(dims) != 1:
            raise ConstructionError("all synopses must share the same dimension")
        self.dim = dims.pop()
        self.eps = float(eps)
        self.engine_kind = check_engine(engine)
        self._leaf_size = leaf_size
        self._rng = rng if rng is not None else np.random.default_rng()
        self._next_key = 0
        self._phi_eff = resolve_phi(phi, len(syn_list))
        self._sample_size = resolve_sample_size(
            eps, phi, len(syn_list), sample_size, self.dim
        )
        # If the coreset was capped below the theoretical size for the
        # requested eps, widen the slack to the eps the coreset actually
        # buys — the recall guarantee is preserved at reduced precision.
        # ``eps_effective`` is a public attribute: callers who KNOW their
        # synopsis samples are an exact cover (e.g. the paper's toy
        # examples, or deterministic synopses) may assign it back to ``eps``.
        self.eps_effective = max(
            self.eps,
            epsilon_of_sample_size(self._sample_size, self._phi_eff, len(syn_list)),
        )
        deltas = resolve_deltas(syn_list, delta)
        self._pending = list(zip(syn_list, deltas))
        self._tree = None

    # ------------------------------------------------------------------
    # Shared accessors
    # ------------------------------------------------------------------
    @property
    def n_datasets(self) -> int:
        """Current number of indexed datasets."""
        return len(self._synopses)

    @property
    def sample_size(self) -> int:
        """Coreset size per dataset."""
        return self._sample_size

    @property
    def keys(self) -> list[int]:
        """Stable dataset keys (equal to 0..N-1 for a static repository)."""
        return sorted(self._synopses)

    @property
    def n_mapped_points(self) -> int:
        """Total number of mapped points stored in the engine."""
        return sum(len(ids) for ids in self._point_ids.values())

    def coreset(self, key: int) -> np.ndarray:
        """The coreset ``S_i`` drawn for a dataset (for diagnostics/tests)."""
        return self._coresets[key]

    def delta_of(self, key: int) -> float:
        """The synopsis error ``delta_i`` used for a dataset."""
        return self._deltas[key]

    def _check_query_rect(self, rect: Rectangle) -> None:
        if rect.dim != self.dim:
            raise QueryError(
                f"query rectangle has dim {rect.dim}, index has dim {self.dim}"
            )

    # ------------------------------------------------------------------
    # The report loop of Algorithms 2 and 4
    # ------------------------------------------------------------------
    def _report_loop(self, box: QueryBox, record_times: bool) -> QueryResult:
        """Report every dataset with an active mapped point in the box.

        Two modes, identical answer sets:

        - **batched** (default): one ``report_groups`` bulk call — a single
          vectorized pass on the columnar backend, a plain ``report``
          group-by on the trees.  No state is mutated.
        - **incremental** (``record_times=True``): the paper's Algorithm
          2/4 loop — repeat ReportFirst, emit the hit dataset, temporarily
          deactivate all its points — so every emission carries its own
          timestamp and the delay-guarantee benchmarks can measure real
          inter-report gaps.  All deactivated points are re-activated
          before returning, restoring the structure (Algorithm 2 line 7 /
          Algorithm 4 line 8).
        """
        result = QueryResult()
        if not record_times:
            keys = self._tree.report_groups(box)
            result.indexes = sorted(keys)
            result.stats["deleted_points"] = 0
            result.stats["loop_iterations"] = 1
            return result
        result.start_time = time.perf_counter()
        reported: list[int] = []
        deleted_total = 0
        guard = self.n_datasets + 1
        while True:
            hit = self._tree.report_first(box)
            if hit is None:
                break
            key = hit[0]
            reported.append(key)
            result.indexes.append(key)
            result.emit_times.append(time.perf_counter())
            for pid in self._point_ids[key]:
                self._tree.deactivate(pid)
            deleted_total += len(self._point_ids[key])
            guard -= 1
            if guard < 0:  # pragma: no cover - safety net
                raise QueryError("report loop exceeded dataset count; corrupt state")
        for key in reported:
            for pid in self._point_ids[key]:
                self._tree.activate(pid)
        result.end_time = time.perf_counter()
        result.stats["deleted_points"] = deleted_total
        result.stats["loop_iterations"] = len(reported) + 1
        return result

    def _report_groups_batch(self, boxes: Sequence[QueryBox]) -> list[QueryResult]:
        """Batched (untimed) report for many query boxes at once.

        One multi-box backend call — the shared-traversal walk on the
        kd-tree, a broadcast containment pass on the columnar store —
        instead of ``len(boxes)`` sequential ``report_groups`` calls.
        Backends without the batch kernels are served by the per-box
        fallback of :func:`~repro.index.backend.report_groups_many_of`,
        with identical answer sets either way.
        """
        results: list[QueryResult] = []
        for keys in report_groups_many_of(self._tree, boxes):
            result = QueryResult()
            result.indexes = sorted(keys)
            result.stats["deleted_points"] = 0
            result.stats["loop_iterations"] = 1
            results.append(result)
        return results
