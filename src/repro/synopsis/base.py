"""The synopsis interface (Section 1.1, "Synopsis").

The two index families consume synopses through two narrow procedures:

- ``sample(size, rng)`` — ``S_P.Sample(kappa)`` of Algorithm 1: ``kappa``
  random draws (with replacement) from the distribution the synopsis
  represents; combined with Lemma 2.1 this yields an ``(eps+delta)``-sample
  of the underlying dataset.
- ``score(vector, k)`` — ``S_P.Score(v, k)`` of Algorithm 5: an estimate of
  ``omega_k(P, v)``, the k-th largest inner product of ``P`` with the unit
  vector ``v``.

Each synopsis advertises its error bounds ``delta_ptile`` (for ``F_□``) and
``delta_pref`` (for ``F_k``); a synopsis that does not support a class
raises :class:`~repro.errors.CapabilityError` and reports ``None`` for the
corresponding delta.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.errors import CapabilityError
from repro.geometry.rectangle import Rectangle


class Synopsis(ABC):
    """Abstract base class for dataset synopses."""

    @property
    @abstractmethod
    def dim(self) -> int:
        """Dimension ``d`` of the represented dataset."""

    @property
    @abstractmethod
    def n_points(self) -> int:
        """Size ``n_i = |P_i|`` of the represented dataset."""

    # ------------------------------------------------------------------
    # Percentile-class capability (F_□)
    # ------------------------------------------------------------------
    @property
    def delta_ptile(self) -> Optional[float]:
        """Upper bound on ``Err_{S_P}(F_□)``, or None if unsupported."""
        return None

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """``size`` random draws (with replacement) from the synopsis.

        Raises
        ------
        CapabilityError
            If the synopsis does not support the percentile class.
        """
        raise CapabilityError(
            f"{type(self).__name__} does not support sampling (class F_□)"
        )

    def mass(self, rect: Rectangle) -> float:
        """Estimate of ``M_R(P) = |P ∩ R| / |P|`` for a rectangle.

        Default implementation is unsupported; subclasses that support the
        percentile class override it (it powers the Fainder-style baseline
        and diagnostics, not the paper's index itself).
        """
        raise CapabilityError(
            f"{type(self).__name__} does not support mass estimation (class F_□)"
        )

    # ------------------------------------------------------------------
    # Preference-class capability (F_k)
    # ------------------------------------------------------------------
    @property
    def delta_pref(self) -> Optional[float]:
        """Upper bound on ``Err_{S_P}(F_k)``, or None if unsupported."""
        return None

    def score(self, vector: np.ndarray, k: int) -> float:
        """Estimate of ``omega_k(P, v)``, the k-th largest projection.

        Raises
        ------
        CapabilityError
            If the synopsis does not support the preference class.
        """
        raise CapabilityError(
            f"{type(self).__name__} does not support scoring (class F_k)"
        )

    def score_batch(self, vectors: np.ndarray, k: int) -> np.ndarray:
        """``score`` over many unit vectors at once (``(m, d)`` array).

        The default loops; synopses with vectorizable scoring override it
        (this dominates Pref construction time: ``|C|`` calls per dataset).
        """
        vs = np.atleast_2d(np.asarray(vectors, dtype=float))
        return np.array([self.score(v, k) for v in vs])

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _check_sample_args(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"sample size must be positive, got {size}")

    def _check_score_args(self, vector: np.ndarray, k: int) -> np.ndarray:
        v = np.asarray(vector, dtype=float)
        if v.ndim != 1 or v.shape[0] != self.dim:
            raise ValueError(f"vector must have shape ({self.dim},)")
        norm = np.linalg.norm(v)
        if norm == 0.0:
            raise ValueError("preference vector must be nonzero")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return v / norm
