"""Per-attribute equi-depth (quantile) histogram synopsis.

This is the synopsis family the prior Ptile system actually ships:
Fainder [8] represents each dataset by per-attribute percentile/quantile
histograms.  Compared with the d-dimensional equi-width grid of
:class:`~repro.synopsis.histogram.HistogramSynopsis`:

- storage is ``O(d · q)`` for ``q`` quantiles — independent of how skewed
  the data is (equi-depth bins adapt to density);
- rectangle masses are estimated under a per-attribute *independence
  assumption* (product of marginal masses), whose error is measured at
  construction and advertised as ``delta`` — for correlated attributes
  this delta is honestly large, which is exactly the weakness of
  marginal-only synopses the paper's framework surfaces;
- sampling draws each attribute independently from its marginal.

Scoring for the preference class uses the same independence assumption
through sampling.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.rectangle import Rectangle
from repro.synopsis.base import Synopsis


class QuantileHistogramSynopsis(Synopsis):
    """Per-attribute equi-depth quantile sketch of a dataset.

    Parameters
    ----------
    points:
        ``(n, d)`` training data (consumed at construction).
    n_quantiles:
        Number of quantile knots per attribute.
    probe_rects:
        Probe rectangles used to *measure* the advertised ``delta_ptile``
        (the independence-assumption error is data-dependent).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(8)
    >>> data = rng.uniform(size=(5000, 2))       # independent attributes
    >>> syn = QuantileHistogramSynopsis(data, rng=rng)
    >>> abs(syn.mass(Rectangle([0.0, 0.0], [0.5, 0.5])) - 0.25) < 0.05
    True
    """

    def __init__(
        self,
        points: np.ndarray,
        n_quantiles: int = 64,
        probe_rects: int = 128,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        if n_quantiles < 2:
            raise ValueError("n_quantiles must be >= 2")
        rng = rng if rng is not None else np.random.default_rng()
        self._dim = int(pts.shape[1])
        self._n_points = int(pts.shape[0])
        self._levels = np.linspace(0.0, 1.0, n_quantiles)
        # knots[h][j] = the levels[j]-quantile of attribute h.
        self._knots = [
            np.quantile(pts[:, h], self._levels) for h in range(self._dim)
        ]
        # (d, q) matrix view of the same knots, for the vectorized
        # all-axes-at-once CDF used by ``mass`` (rows are sorted).
        self._knots_mat = np.vstack(self._knots)
        self._delta_ptile = self._measure_delta(pts, probe_rects, rng)
        self._delta_pref = self._measure_delta_pref(pts, rng)

    # ------------------------------------------------------------------
    def _marginal_cdf(self, axis: int, value: float) -> float:
        """P[attribute_axis <= value] from the quantile knots."""
        return float(
            self._marginal_cdf_all(
                np.full(self._dim, float(value), dtype=float)
            )[axis]
        )

    def _marginal_cdf_all(self, values: np.ndarray) -> np.ndarray:
        """Per-axis CDFs ``P[attribute_h <= values[h]]`` for all axes at once.

        One vectorized pass replaces the per-axis Python loop over
        ``np.interp`` calls: position each value within its row of the
        sorted knot matrix (a right-sided rank, matching ``np.searchsorted
        (..., side="right")``) and linearly interpolate the shared level
        grid.  Duplicate knots resolve exactly as ``np.interp`` does — the
        level of the *last* duplicate — because the right-sided rank lands
        one past the run and the interpolation weight degenerates to zero.
        """
        v = np.asarray(values, dtype=float)
        k = self._knots_mat
        q = k.shape[1]
        # rank[h] = #knots in row h that are <= v[h]  (== searchsorted
        # side="right" per row, vectorized across rows; q is small).
        rank = (k <= v[:, None]).sum(axis=1)
        idx = np.clip(rank, 1, q - 1)
        rows = np.arange(k.shape[0])
        x0 = k[rows, idx - 1]
        x1 = k[rows, idx]
        span = x1 - x0
        t = np.where(span > 0.0, (v - x0) / np.where(span > 0.0, span, 1.0), 0.0)
        cdf = self._levels[idx - 1] + t * (self._levels[idx] - self._levels[idx - 1])
        cdf = np.where(v < k[:, 0], 0.0, cdf)
        cdf = np.where(v >= k[:, -1], 1.0, cdf)
        return cdf

    def _measure_delta(
        self, pts: np.ndarray, probes: int, rng: np.random.Generator
    ) -> float:
        lo, hi = pts.min(axis=0), pts.max(axis=0)
        worst = 0.0
        for _ in range(probes):
            a = rng.uniform(lo, hi)
            b = rng.uniform(lo, hi)
            rect = Rectangle(np.minimum(a, b), np.maximum(a, b))
            exact = rect.count_inside(pts) / pts.shape[0]
            worst = max(worst, abs(self.mass(rect) - exact))
        return min(1.0, 1.25 * worst + 1e-3)

    def _measure_delta_pref(self, pts: np.ndarray, rng: np.random.Generator) -> float:
        worst = 0.0
        n = pts.shape[0]
        for _ in range(16):
            v = rng.normal(size=self._dim)
            v /= np.linalg.norm(v)
            proj = np.sort(pts @ v)
            for frac in (0.05, 0.25):
                k = max(1, int(frac * n))
                worst = max(worst, abs(self.score(v, k) - proj[n - k]))
        return 1.25 * worst + 1e-6

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._dim

    @property
    def n_points(self) -> int:
        return self._n_points

    @property
    def n_quantiles(self) -> int:
        """Knots per attribute."""
        return int(self._levels.size)

    # -- percentile class -------------------------------------------------
    @property
    def delta_ptile(self) -> float:
        return self._delta_ptile

    def mass(self, rect: Rectangle) -> float:
        """Independence-assumption mass: product of marginal masses.

        Both corner CDFs are computed for every axis in one vectorized
        pass (no per-axis Python loop).
        """
        if rect.dim != self._dim:
            raise ValueError("rectangle dimension mismatch")
        upper = self._marginal_cdf_all(np.asarray(rect.hi, dtype=float))
        lower = self._marginal_cdf_all(np.asarray(rect.lo, dtype=float))
        return float(np.prod(np.clip(upper - lower, 0.0, None)))

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw each attribute independently via inverse-CDF sampling."""
        self._check_sample_args(size)
        out = np.empty((size, self._dim))
        for h in range(self._dim):
            u = rng.uniform(0.0, 1.0, size=size)
            out[:, h] = np.interp(u, self._levels, self._knots[h])
        return out

    # -- preference class --------------------------------------------------
    @property
    def delta_pref(self) -> float:
        return self._delta_pref

    def score(self, vector: np.ndarray, k: int) -> float:
        """k-th largest projection under the independence model.

        Deterministic: combine per-attribute quantile grids into the
        projected distribution by Monte-Carlo with a fixed stream (the
        estimate must be stable across calls for index construction).
        """
        v = self._check_score_args(vector, k)
        if k > self._n_points:
            return float("-inf")
        rng = np.random.default_rng(0xC0FFEE)  # fixed: deterministic synopsis
        m = 2048
        sample = self.sample(m, rng)
        proj = np.sort(sample @ v)
        k_scaled = min(m, max(1, round(k * m / self._n_points)))
        return float(proj[m - k_scaled])
