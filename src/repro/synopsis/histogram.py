"""Equi-width d-dimensional histogram synopsis.

Histograms are the synopsis kind the prior Ptile system (Fainder [8]) uses
and one of those named in Section 1.2.  Mass inside a bin is assumed
uniform, which makes rectangle-mass estimation, sampling and scoring all
straightforward; the advertised error bound ``delta`` accounts for the bins
cut by a query rectangle's boundary.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

import numpy as np

from repro.geometry.rectangle import Rectangle
from repro.synopsis.base import Synopsis


class HistogramSynopsis(Synopsis):
    """A d-dimensional equi-width histogram of a dataset.

    Parameters
    ----------
    points:
        ``(n, d)`` array — consumed at construction only; the synopsis keeps
        just the ``bins^d`` counts plus the grid edges.
    bins:
        Number of bins per axis (same for all axes), or a per-axis sequence.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(3)
    >>> data = rng.uniform(0, 1, size=(4000, 2))
    >>> syn = HistogramSynopsis(data, bins=16)
    >>> abs(syn.mass(Rectangle([0.0, 0.0], [0.5, 0.5])) - 0.25) < 0.05
    True
    """

    def __init__(self, points: np.ndarray, bins: int | Sequence[int] = 16) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        d = pts.shape[1]
        if isinstance(bins, int):
            bin_counts = [bins] * d
        else:
            bin_counts = [int(b) for b in bins]
        if len(bin_counts) != d or any(b < 1 for b in bin_counts):
            raise ValueError("bins must be a positive int or one per axis")
        self._n_points = int(pts.shape[0])
        self._dim = d
        # Pad the range slightly so max-valued points land inside the grid.
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        hi = hi + 1e-9 * span
        self._edges = [
            np.linspace(lo[h], hi[h], bin_counts[h] + 1) for h in range(d)
        ]
        counts, _ = np.histogramdd(pts, bins=self._edges)
        self._probs = counts / self._n_points
        self._delta_ptile = self._boundary_error_bound()
        self._cell_radius = 0.5 * float(
            np.linalg.norm([e[1] - e[0] for e in self._edges])
        )
        # Flattened sampling distribution (built lazily on first sample()).
        self._flat_probs: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._dim

    @property
    def n_points(self) -> int:
        return self._n_points

    @property
    def bins_per_axis(self) -> list[int]:
        """Grid resolution per axis."""
        return [len(e) - 1 for e in self._edges]

    def _boundary_error_bound(self) -> float:
        """Conservative rectangle-mass error: boundary bins per axis.

        A query rectangle's boundary crosses at most two grid slabs per
        axis; within-slab mass can be fully mis-attributed under the
        uniform-within-bin assumption, so ``delta <= sum_h 2 * max-slab-mass``
        (clamped to 1).  The T-FED benchmark measures the much smaller
        typical error.
        """
        total = 0.0
        for h in range(self._dim):
            axes = tuple(a for a in range(self._dim) if a != h)
            slab = self._probs.sum(axis=axes) if axes else self._probs
            total += 2.0 * float(slab.max())
        return min(1.0, total)

    # -- percentile class -------------------------------------------------
    @property
    def delta_ptile(self) -> float:
        return self._delta_ptile

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw: pick a bin by mass, then uniform inside the bin."""
        self._check_sample_args(size)
        if self._flat_probs is None:
            self._flat_probs = self._probs.ravel()
        flat_idx = rng.choice(self._flat_probs.size, size=size, p=self._flat_probs)
        multi = np.unravel_index(flat_idx, self._probs.shape)
        out = np.empty((size, self._dim))
        for h in range(self._dim):
            left = self._edges[h][multi[h]]
            right = self._edges[h][multi[h] + 1]
            out[:, h] = rng.uniform(left, right)
        return out

    def mass(self, rect: Rectangle) -> float:
        """Fractional-overlap mass estimate for a rectangle."""
        if rect.dim != self._dim:
            raise ValueError("rectangle dimension mismatch")
        overlaps = []
        for h in range(self._dim):
            edges = self._edges[h]
            left = np.clip(rect.lo[h], edges[:-1], edges[1:])
            right = np.clip(rect.hi[h], edges[:-1], edges[1:])
            width = edges[1:] - edges[:-1]
            overlaps.append(np.maximum(0.0, right - left) / width)
        # mass = sum over cells of prob * prod_h overlap_h — an outer product
        # contraction, expressible as successive tensordots.
        acc = self._probs
        for h in range(self._dim):
            acc = np.tensordot(overlaps[h], acc, axes=(0, 0))
        return float(acc)

    # -- preference class --------------------------------------------------
    @property
    def delta_pref(self) -> float:
        # A point can sit anywhere in its cell: score error <= cell radius.
        return self._cell_radius

    def score(self, vector: np.ndarray, k: int) -> float:
        """k-th largest projection, scoring each cell at its center."""
        v = self._check_score_args(vector, k)
        if k > self._n_points:
            return float("-inf")
        centers_1d = [0.5 * (e[:-1] + e[1:]) for e in self._edges]
        # Iterate cells in descending center projection until rank k.
        cells = []
        for idx in itertools.product(*[range(len(c)) for c in centers_1d]):
            p = self._probs[idx]
            if p <= 0.0:
                continue
            center = np.array([centers_1d[h][idx[h]] for h in range(self._dim)])
            cells.append((float(center @ v), p))
        cells.sort(key=lambda t: -t[0])
        target = k / self._n_points
        cum = 0.0
        for proj, p in cells:
            cum += p
            if cum + 1e-12 >= target:
                return proj
        return cells[-1][0] if cells else float("-inf")
