"""The exact synopsis: the dataset itself (centralized setting, delta = 0)."""

from __future__ import annotations

import numpy as np

from repro.geometry.rectangle import Rectangle
from repro.synopsis.base import Synopsis


class ExactSynopsis(Synopsis):
    """Wraps the raw dataset; every estimate is exact.

    Setting ``S_{P_i} = P_i`` for every dataset makes the federated problem
    coincide with the centralized one (Section 1.1), so the centralized
    CPtile/CPref indexes are simply the federated indexes instantiated with
    exact synopses.

    Parameters
    ----------
    points:
        ``(n, d)`` array — the dataset ``P``.

    Examples
    --------
    >>> import numpy as np
    >>> syn = ExactSynopsis(np.array([[0.0], [1.0], [2.0], [3.0]]))
    >>> syn.mass(Rectangle([0.5], [2.5]))
    0.5
    >>> syn.score(np.array([1.0]), k=2)
    2.0
    """

    def __init__(self, points: np.ndarray) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        self._points = pts

    @property
    def points(self) -> np.ndarray:
        """The underlying dataset (read-only view)."""
        return self._points

    @property
    def dim(self) -> int:
        return int(self._points.shape[1])

    @property
    def n_points(self) -> int:
        return int(self._points.shape[0])

    # -- percentile class (exact) ---------------------------------------
    @property
    def delta_ptile(self) -> float:
        return 0.0

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        self._check_sample_args(size)
        idx = rng.integers(0, self.n_points, size=size)
        return self._points[idx]

    def mass(self, rect: Rectangle) -> float:
        return rect.count_inside(self._points) / self.n_points

    # -- preference class (exact) ---------------------------------------
    @property
    def delta_pref(self) -> float:
        return 0.0

    def score(self, vector: np.ndarray, k: int) -> float:
        """Exact ``omega_k(P, v)``; ``-inf`` when ``k > |P|`` (undefined)."""
        v = self._check_score_args(vector, k)
        if k > self.n_points:
            return float("-inf")
        proj = self._points @ v
        # k-th largest = (n-k)-th order statistic.
        return float(np.partition(proj, self.n_points - k)[self.n_points - k])

    def score_batch(self, vectors: np.ndarray, k: int) -> np.ndarray:
        """Vectorized exact scoring over many unit vectors at once."""
        vs = np.atleast_2d(np.asarray(vectors, dtype=float))
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if k > self.n_points:
            return np.full(vs.shape[0], float("-inf"))
        norms = np.linalg.norm(vs, axis=1, keepdims=True)
        if np.any(norms == 0.0):
            raise ValueError("preference vectors must be nonzero")
        proj = self._points @ (vs / norms).T  # (n, m)
        order = self.n_points - k
        return np.partition(proj, order, axis=0)[order]
