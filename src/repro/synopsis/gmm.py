"""Diagonal Gaussian mixture model synopsis, fitted with EM.

Mixture models are one of the synopsis kinds named in Section 1.2 for the
percentile class.  We implement expectation-maximization for diagonal-
covariance mixtures from scratch (numpy only):

- ``mass(rect)`` is analytic — a product of axis-wise normal CDFs per
  component;
- ``sample`` draws from the mixture;
- ``score(v, k)`` uses the fact that the projection of a diagonal Gaussian
  mixture onto ``v`` is a 1-d Gaussian mixture, whose quantile is found by
  bisection on the mixture CDF.

Because the fit error is data-dependent, the advertised ``delta`` bounds are
*measured* at construction on held-out probe rectangles/directions — this
matches the paper's model where each ``delta_i`` is known to the system.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.geometry.rectangle import Rectangle
from repro.synopsis.base import Synopsis

_SQRT2 = math.sqrt(2.0)


def _normal_cdf(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF via the error function (vectorized)."""
    return 0.5 * (1.0 + np.vectorize(math.erf)(x / _SQRT2))


class GMMSynopsis(Synopsis):
    """A diagonal-covariance Gaussian mixture fitted to a dataset.

    Parameters
    ----------
    points:
        ``(n, d)`` training data (consumed at construction).
    n_components:
        Number of mixture components.
    rng:
        Random generator (initialization + delta probing).
    n_iter:
        EM iterations.
    probe_rects, probe_dirs:
        Number of probe rectangles / directions used to *measure* the
        advertised ``delta`` bounds.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(11)
    >>> data = np.vstack([rng.normal(-2, 0.5, (1500, 2)), rng.normal(2, 0.5, (1500, 2))])
    >>> syn = GMMSynopsis(data, n_components=2, rng=rng)
    >>> syn.delta_ptile < 0.2
    True
    """

    def __init__(
        self,
        points: np.ndarray,
        n_components: int = 4,
        rng: Optional[np.random.Generator] = None,
        n_iter: int = 50,
        probe_rects: int = 128,
        probe_dirs: int = 32,
        probe_k_fracs: tuple[float, ...] = (0.01, 0.1, 0.25),
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        self._dim = int(pts.shape[1])
        self._n_points = int(pts.shape[0])
        self._fit(pts, n_components, n_iter, rng)
        self._delta_ptile = self._measure_delta_ptile(pts, probe_rects, rng)
        self._delta_pref = self._measure_delta_pref(pts, probe_dirs, probe_k_fracs, rng)

    # ------------------------------------------------------------------
    # EM fitting
    # ------------------------------------------------------------------
    def _fit(
        self, pts: np.ndarray, k: int, n_iter: int, rng: np.random.Generator
    ) -> None:
        n, d = pts.shape
        k = min(k, n)
        init = rng.choice(n, size=k, replace=False)
        means = pts[init].copy()
        var0 = pts.var(axis=0) + 1e-6
        variances = np.tile(var0, (k, 1))
        weights = np.full(k, 1.0 / k)
        var_floor = 1e-6 * (var0 + 1e-12)
        for _ in range(n_iter):
            # E-step: responsibilities via log-sum-exp.
            log_prob = (
                -0.5 * np.sum(np.log(2.0 * math.pi * variances), axis=1)  # (k,)
                - 0.5
                * np.sum(
                    (pts[:, None, :] - means[None, :, :]) ** 2 / variances[None, :, :],
                    axis=2,
                )  # (n, k)
            )
            log_prob = log_prob + np.log(weights + 1e-300)
            log_norm = np.logaddexp.reduce(log_prob, axis=1, keepdims=True)
            resp = np.exp(log_prob - log_norm)
            # M-step.
            nk = resp.sum(axis=0) + 1e-12
            weights = nk / n
            means = (resp.T @ pts) / nk[:, None]
            diff2 = (pts[:, None, :] - means[None, :, :]) ** 2
            variances = np.einsum("nk,nkd->kd", resp, diff2) / nk[:, None]
            variances = np.maximum(variances, var_floor)
        self._weights = weights
        self._means = means
        self._stds = np.sqrt(variances)

    # ------------------------------------------------------------------
    # delta measurement (the "known delta_i" of the paper's model)
    # ------------------------------------------------------------------
    def _measure_delta_ptile(
        self, pts: np.ndarray, probes: int, rng: np.random.Generator
    ) -> float:
        lo, hi = pts.min(axis=0), pts.max(axis=0)
        worst = 0.0
        for _ in range(probes):
            a = rng.uniform(lo, hi)
            b = rng.uniform(lo, hi)
            rect = Rectangle(np.minimum(a, b), np.maximum(a, b))
            exact = rect.count_inside(pts) / pts.shape[0]
            worst = max(worst, abs(self.mass(rect) - exact))
        return min(1.0, 1.25 * worst + 1e-3)  # small safety margin

    def _measure_delta_pref(
        self,
        pts: np.ndarray,
        probes: int,
        k_fracs: tuple[float, ...],
        rng: np.random.Generator,
    ) -> float:
        worst = 0.0
        n = pts.shape[0]
        for _ in range(probes):
            v = rng.normal(size=self._dim)
            v /= np.linalg.norm(v)
            proj = np.sort(pts @ v)
            for frac in k_fracs:
                k = max(1, int(frac * n))
                exact = proj[n - k]
                worst = max(worst, abs(self.score(v, k) - exact))
        return 1.25 * worst + 1e-6

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._dim

    @property
    def n_points(self) -> int:
        return self._n_points

    @property
    def n_components(self) -> int:
        """Number of mixture components."""
        return int(self._weights.size)

    # -- percentile class -------------------------------------------------
    @property
    def delta_ptile(self) -> float:
        return self._delta_ptile

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        self._check_sample_args(size)
        comp = rng.choice(self.n_components, size=size, p=self._weights)
        noise = rng.normal(size=(size, self._dim))
        return self._means[comp] + noise * self._stds[comp]

    def mass(self, rect: Rectangle) -> float:
        """Analytic mixture mass of an axis-parallel rectangle."""
        if rect.dim != self._dim:
            raise ValueError("rectangle dimension mismatch")
        upper = _normal_cdf((rect.hi[None, :] - self._means) / self._stds)
        lower = _normal_cdf((rect.lo[None, :] - self._means) / self._stds)
        per_comp = np.prod(np.maximum(0.0, upper - lower), axis=1)
        return float(np.dot(self._weights, per_comp))

    # -- preference class --------------------------------------------------
    @property
    def delta_pref(self) -> float:
        return self._delta_pref

    def score(self, vector: np.ndarray, k: int) -> float:
        """Quantile of the projected 1-d mixture at rank k (bisection)."""
        v = self._check_score_args(vector, k)
        if k > self._n_points:
            return float("-inf")
        mu = self._means @ v
        sigma = np.sqrt((self._stds ** 2) @ (v ** 2))
        target = 1.0 - (k - 0.5) / self._n_points  # CDF level of the k-th largest
        target = min(max(target, 1e-9), 1.0 - 1e-9)
        lo = float(np.min(mu - 8.0 * sigma))
        hi = float(np.max(mu + 8.0 * sigma))
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            cdf = float(np.dot(self._weights, _normal_cdf((mid - mu) / sigma)))
            if cdf < target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)
