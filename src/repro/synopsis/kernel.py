"""Direction/quantile kernel synopsis for preference queries.

Section 1.2 names "a kernel [5, 37, 55] or a histogram" as the common
synopsis for the top-k preference class.  This synopsis follows the
continuous-top-k sketch of Yu-Agarwal-Yang [55]: fix a centrally symmetric
ε-net ``D`` of directions; for each ``u ∈ D`` store a compact quantile
sketch of the projections ``{<p, u> : p ∈ P}``.  To score an arbitrary unit
vector ``v`` at rank ``k``, snap ``v`` to its nearest stored direction and
read the sketched quantile.  For points in a ball of radius ``r``,
Lemma 5.1 bounds the snapping error by ``eps_dir * r``; the quantile sketch
adds a rank-discretization error measured at build time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.epsilon_net import build_epsilon_net, nearest_net_vector
from repro.synopsis.base import Synopsis


class DirectionQuantileSynopsis(Synopsis):
    """Kernel-style synopsis: per-direction projection quantiles.

    Supports only the preference class ``F_k`` (requesting ``sample`` raises
    :class:`~repro.errors.CapabilityError`).

    Parameters
    ----------
    points:
        ``(n, d)`` training data (consumed at construction).
    eps_dir:
        Direction-net resolution; score error from snapping is
        ``<= eps_dir * max ||p||`` (Lemma 5.1).
    n_quantiles:
        Number of stored quantiles per direction.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(5)
    >>> data = rng.uniform(-1, 1, size=(2000, 2)) * 0.5
    >>> syn = DirectionQuantileSynopsis(data, eps_dir=0.1)
    >>> v = np.array([1.0, 0.0])
    >>> exact = np.sort(data @ v)[-10]
    >>> abs(syn.score(v, 10) - exact) <= syn.delta_pref + 1e-9
    True
    """

    def __init__(
        self,
        points: np.ndarray,
        eps_dir: float = 0.1,
        n_quantiles: int = 64,
        probe_dirs: int = 32,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        if n_quantiles < 2:
            raise ValueError("n_quantiles must be >= 2")
        rng = rng if rng is not None else np.random.default_rng()
        self._dim = int(pts.shape[1])
        self._n_points = int(pts.shape[0])
        self._radius = float(np.linalg.norm(pts, axis=1).max())
        self._eps_dir = float(eps_dir)
        self._net = build_epsilon_net(self._dim, eps_dir)
        # Quantiles at evenly spaced CDF levels including both extremes.
        self._levels = np.linspace(0.0, 1.0, n_quantiles)
        proj = pts @ self._net.T  # (n, m)
        self._quantiles = np.quantile(proj, self._levels, axis=0).T  # (m, q)
        self._delta_pref = self._measure_delta(pts, probe_dirs, rng)

    def _measure_delta(
        self, pts: np.ndarray, probes: int, rng: np.random.Generator
    ) -> float:
        worst = 0.0
        n = pts.shape[0]
        for _ in range(probes):
            v = rng.normal(size=self._dim)
            v /= np.linalg.norm(v)
            proj = np.sort(pts @ v)
            for frac in (0.01, 0.1, 0.25):
                k = max(1, int(frac * n))
                worst = max(worst, abs(self.score(v, k) - proj[n - k]))
        # Snapping bound (Lemma 5.1) plus measured sketch error.
        return float(self._eps_dir * self._radius + 1.25 * worst + 1e-9)

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._dim

    @property
    def n_points(self) -> int:
        return self._n_points

    @property
    def n_directions(self) -> int:
        """Number of stored net directions."""
        return int(self._net.shape[0])

    @property
    def delta_pref(self) -> float:
        return self._delta_pref

    def score(self, vector: np.ndarray, k: int) -> float:
        """Snap to the nearest stored direction, interpolate its quantile."""
        v = self._check_score_args(vector, k)
        if k > self._n_points:
            return float("-inf")
        u_idx = nearest_net_vector(self._net, v)
        # k-th largest projection sits at CDF level 1 - (k - 0.5)/n.
        level = min(1.0, max(0.0, 1.0 - (k - 0.5) / self._n_points))
        q = self._quantiles[u_idx]
        return float(np.interp(level, self._levels, q))

    def score_batch(self, vectors: np.ndarray, k: int) -> np.ndarray:
        """Vectorized snapping + interpolation over many unit vectors."""
        vs = np.atleast_2d(np.asarray(vectors, dtype=float))
        if k > self._n_points:
            return np.full(vs.shape[0], float("-inf"))
        norms = np.linalg.norm(vs, axis=1, keepdims=True)
        if np.any(norms == 0.0):
            raise ValueError("preference vectors must be nonzero")
        nearest = np.argmax((vs / norms) @ self._net.T, axis=1)
        level = min(1.0, max(0.0, 1.0 - (k - 0.5) / self._n_points))
        return np.array(
            [np.interp(level, self._levels, self._quantiles[i]) for i in nearest]
        )
