"""Synopses: compressed dataset representations for the federated setting.

A synopsis ``S_P`` (Section 1.1) is a compressed representation of a dataset
``P`` that supports, depending on the measure-function class:

- for the percentile class ``F_□``: random sampling over (an approximation
  of) ``P`` — ``Sample(kappa)`` in Algorithm 1 — and mass estimation for
  rectangles, with error ``Err_{S_P}(F_□) <= delta``;
- for the top-k preference class ``F_k``: a ``Score(v, k)`` procedure that
  estimates the k-th largest projection of ``P`` on a unit vector ``v``
  (Algorithm 5), with error ``Err_{S_P}(F_k) <= delta``.

Implementations (the kinds the paper names in Section 1.2):

- :class:`~repro.synopsis.exact.ExactSynopsis` — the dataset itself
  (centralized setting, ``delta = 0``).
- :class:`~repro.synopsis.sample.EpsilonSampleSynopsis` — a uniform
  subsample (an ε-sample).
- :class:`~repro.synopsis.histogram.HistogramSynopsis` — a d-dimensional
  equi-width histogram.
- :class:`~repro.synopsis.gmm.GMMSynopsis` — a diagonal Gaussian mixture
  model fitted with EM.
- :class:`~repro.synopsis.kernel.DirectionQuantileSynopsis` — a kernel-style
  direction/quantile sketch for preference queries [Yu-Agarwal-Yang 2012].
"""

from repro.synopsis.base import Synopsis
from repro.synopsis.exact import ExactSynopsis
from repro.synopsis.sample import EpsilonSampleSynopsis
from repro.synopsis.histogram import HistogramSynopsis
from repro.synopsis.gmm import GMMSynopsis
from repro.synopsis.kernel import DirectionQuantileSynopsis
from repro.synopsis.cover import CoverSynopsis
from repro.synopsis.quantile import QuantileHistogramSynopsis

__all__ = [
    "Synopsis",
    "ExactSynopsis",
    "EpsilonSampleSynopsis",
    "HistogramSynopsis",
    "GMMSynopsis",
    "DirectionQuantileSynopsis",
    "CoverSynopsis",
    "QuantileHistogramSynopsis",
]
