"""JSON-safe serialization for synopses.

In the federated setting a synopsis is *shipped*: data owners build it
locally and send it to the indexing service.  This module provides a
versioned, dependency-free wire format (plain ``dict`` of JSON types) for
the synopsis kinds whose state is pure data:

- :class:`~repro.synopsis.sample.EpsilonSampleSynopsis`
- :class:`~repro.synopsis.cover.CoverSynopsis`
- :class:`~repro.synopsis.quantile.QuantileHistogramSynopsis`

(Heavier synopses — GMM, grid histogram, kernel — are reconstructed from
their fitted parameters analogously; these three cover the shipping paths
the examples and benchmarks exercise.)

Round-trip is exact: ``loads(dumps(s))`` answers every query identically
(tested in ``tests/synopsis/test_serialize.py``).
"""

from __future__ import annotations

import json
from typing import Union

import numpy as np

from repro.errors import ConstructionError
from repro.synopsis.cover import CoverSynopsis
from repro.synopsis.quantile import QuantileHistogramSynopsis
from repro.synopsis.sample import EpsilonSampleSynopsis

FORMAT_VERSION = 1

Serializable = Union[EpsilonSampleSynopsis, CoverSynopsis, QuantileHistogramSynopsis]


def to_dict(synopsis: Serializable) -> dict:
    """Serialize a supported synopsis to a JSON-safe dict."""
    if isinstance(synopsis, EpsilonSampleSynopsis):
        return {
            "format": FORMAT_VERSION,
            "kind": "eps-sample",
            "n_points": synopsis.n_points,
            "delta": synopsis.delta_ptile,
            "delta_pref": synopsis.delta_pref,
            "subsample": synopsis.subsample.tolist(),
        }
    if isinstance(synopsis, CoverSynopsis):
        return {
            "format": FORMAT_VERSION,
            "kind": "cover",
            "n_points": synopsis.n_points,
            "radius": synopsis.radius,
            "cover": synopsis.cover_points.tolist(),
        }
    if isinstance(synopsis, QuantileHistogramSynopsis):
        return {
            "format": FORMAT_VERSION,
            "kind": "quantile-histogram",
            "n_points": synopsis.n_points,
            "delta": synopsis.delta_ptile,
            "delta_pref": synopsis.delta_pref,
            "levels": synopsis._levels.tolist(),
            "knots": [k.tolist() for k in synopsis._knots],
        }
    raise ConstructionError(
        f"{type(synopsis).__name__} has no wire format; supported kinds: "
        "EpsilonSampleSynopsis, CoverSynopsis, QuantileHistogramSynopsis"
    )


def from_dict(payload: dict) -> Serializable:
    """Reconstruct a synopsis from :func:`to_dict` output."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ConstructionError("payload is not a serialized synopsis")
    if payload.get("format") != FORMAT_VERSION:
        raise ConstructionError(
            f"unsupported format version {payload.get('format')!r}"
        )
    kind = payload["kind"]
    if kind == "eps-sample":
        return EpsilonSampleSynopsis(
            np.asarray(payload["subsample"], dtype=float),
            n_points=int(payload["n_points"]),
            delta=float(payload["delta"]),
            delta_pref=float(payload["delta_pref"]),
        )
    if kind == "cover":
        cov = CoverSynopsis.__new__(CoverSynopsis)
        cov._dim = int(np.asarray(payload["cover"]).shape[1])
        cov._n_points = int(payload["n_points"])
        cov.radius = float(payload["radius"])
        cov._cover = np.asarray(payload["cover"], dtype=float)
        return cov
    if kind == "quantile-histogram":
        syn = QuantileHistogramSynopsis.__new__(QuantileHistogramSynopsis)
        syn._levels = np.asarray(payload["levels"], dtype=float)
        syn._knots = [np.asarray(k, dtype=float) for k in payload["knots"]]
        syn._dim = len(syn._knots)
        syn._n_points = int(payload["n_points"])
        syn._delta_ptile = float(payload["delta"])
        syn._delta_pref = float(payload["delta_pref"])
        return syn
    raise ConstructionError(f"unknown synopsis kind {kind!r}")


def dumps(synopsis: Serializable) -> str:
    """Serialize to a JSON string."""
    return json.dumps(to_dict(synopsis))


def loads(text: str) -> Serializable:
    """Reconstruct from a JSON string."""
    return from_dict(json.loads(text))
