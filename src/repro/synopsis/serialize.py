"""JSON-safe serialization for synopses.

In the federated setting a synopsis is *shipped*: data owners build it
locally and send it to the indexing service.  This module provides a
versioned, dependency-free wire format (plain ``dict`` of JSON types) for
every synopsis kind whose state is pure data:

- :class:`~repro.synopsis.sample.EpsilonSampleSynopsis`
- :class:`~repro.synopsis.cover.CoverSynopsis`
- :class:`~repro.synopsis.quantile.QuantileHistogramSynopsis`
- :class:`~repro.synopsis.gmm.GMMSynopsis` (fitted mixture parameters plus
  the measured delta bounds — EM is *not* re-run on load)
- :class:`~repro.synopsis.histogram.HistogramSynopsis` (grid edges + bin
  probabilities)
- :class:`~repro.synopsis.kernel.DirectionQuantileSynopsis` (direction net
  + per-direction quantile sketches)

Only :class:`~repro.synopsis.exact.ExactSynopsis` has no wire format: its
state *is* the raw dataset, which the federated setting exists to avoid
shipping.

Round-trip is exact: ``loads(dumps(s))`` answers every query identically
(tested in ``tests/synopsis/test_serialize.py``) — Python's ``json``
emits shortest-round-trip ``repr`` floats, so binary64 values survive the
wire bit-for-bit.
"""

from __future__ import annotations

import json
from typing import Union

import numpy as np

from repro.errors import ConstructionError
from repro.synopsis.cover import CoverSynopsis
from repro.synopsis.gmm import GMMSynopsis
from repro.synopsis.histogram import HistogramSynopsis
from repro.synopsis.kernel import DirectionQuantileSynopsis
from repro.synopsis.quantile import QuantileHistogramSynopsis
from repro.synopsis.sample import EpsilonSampleSynopsis

FORMAT_VERSION = 1

Serializable = Union[
    EpsilonSampleSynopsis,
    CoverSynopsis,
    QuantileHistogramSynopsis,
    GMMSynopsis,
    HistogramSynopsis,
    DirectionQuantileSynopsis,
]


def to_dict(synopsis: Serializable) -> dict:
    """Serialize a supported synopsis to a JSON-safe dict."""
    if isinstance(synopsis, EpsilonSampleSynopsis):
        return {
            "format": FORMAT_VERSION,
            "kind": "eps-sample",
            "n_points": synopsis.n_points,
            "delta": synopsis.delta_ptile,
            "delta_pref": synopsis.delta_pref,
            "subsample": synopsis.subsample.tolist(),
        }
    if isinstance(synopsis, CoverSynopsis):
        return {
            "format": FORMAT_VERSION,
            "kind": "cover",
            "n_points": synopsis.n_points,
            "radius": synopsis.radius,
            "cover": synopsis.cover_points.tolist(),
        }
    if isinstance(synopsis, QuantileHistogramSynopsis):
        return {
            "format": FORMAT_VERSION,
            "kind": "quantile-histogram",
            "n_points": synopsis.n_points,
            "delta": synopsis.delta_ptile,
            "delta_pref": synopsis.delta_pref,
            "levels": synopsis._levels.tolist(),
            "knots": [k.tolist() for k in synopsis._knots],
        }
    if isinstance(synopsis, GMMSynopsis):
        return {
            "format": FORMAT_VERSION,
            "kind": "gmm",
            "n_points": synopsis.n_points,
            "delta": synopsis.delta_ptile,
            "delta_pref": synopsis.delta_pref,
            "weights": synopsis._weights.tolist(),
            "means": synopsis._means.tolist(),
            "stds": synopsis._stds.tolist(),
        }
    if isinstance(synopsis, HistogramSynopsis):
        return {
            "format": FORMAT_VERSION,
            "kind": "grid-histogram",
            "n_points": synopsis.n_points,
            "delta": synopsis.delta_ptile,
            "edges": [e.tolist() for e in synopsis._edges],
            "probs": synopsis._probs.tolist(),
        }
    if isinstance(synopsis, DirectionQuantileSynopsis):
        return {
            "format": FORMAT_VERSION,
            "kind": "direction-quantile",
            "n_points": synopsis.n_points,
            "delta_pref": synopsis.delta_pref,
            "radius": synopsis._radius,
            "eps_dir": synopsis._eps_dir,
            "net": synopsis._net.tolist(),
            "levels": synopsis._levels.tolist(),
            "quantiles": synopsis._quantiles.tolist(),
        }
    raise ConstructionError(
        f"{type(synopsis).__name__} has no wire format; supported kinds: "
        "EpsilonSampleSynopsis, CoverSynopsis, QuantileHistogramSynopsis, "
        "GMMSynopsis, HistogramSynopsis, DirectionQuantileSynopsis"
    )


def from_dict(payload: dict) -> Serializable:
    """Reconstruct a synopsis from :func:`to_dict` output."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ConstructionError("payload is not a serialized synopsis")
    if payload.get("format") != FORMAT_VERSION:
        raise ConstructionError(
            f"unsupported format version {payload.get('format')!r}"
        )
    kind = payload["kind"]
    if kind == "eps-sample":
        return EpsilonSampleSynopsis(
            np.asarray(payload["subsample"], dtype=float),
            n_points=int(payload["n_points"]),
            delta=float(payload["delta"]),
            delta_pref=float(payload["delta_pref"]),
        )
    if kind == "cover":
        cov = CoverSynopsis.__new__(CoverSynopsis)
        cov._dim = int(np.asarray(payload["cover"]).shape[1])
        cov._n_points = int(payload["n_points"])
        cov.radius = float(payload["radius"])
        cov._cover = np.asarray(payload["cover"], dtype=float)
        return cov
    if kind == "quantile-histogram":
        syn = QuantileHistogramSynopsis.__new__(QuantileHistogramSynopsis)
        syn._levels = np.asarray(payload["levels"], dtype=float)
        syn._knots = [np.asarray(k, dtype=float) for k in payload["knots"]]
        # Derived state, recomputed exactly as the constructor does.
        syn._knots_mat = np.vstack(syn._knots)
        syn._dim = len(syn._knots)
        syn._n_points = int(payload["n_points"])
        syn._delta_ptile = float(payload["delta"])
        syn._delta_pref = float(payload["delta_pref"])
        return syn
    if kind == "gmm":
        gmm = GMMSynopsis.__new__(GMMSynopsis)
        gmm._weights = np.asarray(payload["weights"], dtype=float)
        gmm._means = np.asarray(payload["means"], dtype=float)
        gmm._stds = np.asarray(payload["stds"], dtype=float)
        gmm._dim = int(gmm._means.shape[1])
        gmm._n_points = int(payload["n_points"])
        gmm._delta_ptile = float(payload["delta"])
        gmm._delta_pref = float(payload["delta_pref"])
        return gmm
    if kind == "grid-histogram":
        hist = HistogramSynopsis.__new__(HistogramSynopsis)
        hist._edges = [np.asarray(e, dtype=float) for e in payload["edges"]]
        hist._dim = len(hist._edges)
        hist._n_points = int(payload["n_points"])
        hist._probs = np.asarray(payload["probs"], dtype=float)
        hist._delta_ptile = float(payload["delta"])
        # Derived state, recomputed exactly as the constructor does.
        hist._cell_radius = 0.5 * float(
            np.linalg.norm([e[1] - e[0] for e in hist._edges])
        )
        hist._flat_probs = None
        return hist
    if kind == "direction-quantile":
        ker = DirectionQuantileSynopsis.__new__(DirectionQuantileSynopsis)
        ker._net = np.asarray(payload["net"], dtype=float)
        ker._dim = int(ker._net.shape[1])
        ker._n_points = int(payload["n_points"])
        ker._radius = float(payload["radius"])
        ker._eps_dir = float(payload["eps_dir"])
        ker._levels = np.asarray(payload["levels"], dtype=float)
        ker._quantiles = np.asarray(payload["quantiles"], dtype=float)
        ker._delta_pref = float(payload["delta_pref"])
        return ker
    raise ConstructionError(f"unknown synopsis kind {kind!r}")


def dumps(synopsis: Serializable) -> str:
    """Serialize to a JSON string."""
    return json.dumps(to_dict(synopsis))


def loads(text: str) -> Serializable:
    """Reconstruct from a JSON string."""
    return from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Container-aware serialization (snapshot files)
# ----------------------------------------------------------------------
# Snapshot containers (``repro.service.snapshot``) keep bulk arrays out of
# the JSON header: ``to_state`` hands each large array to ``add_array`` and
# stores only the returned segment reference, extending the wire format to
# the two kinds the federated format deliberately excludes —
# ``ExactSynopsis`` (its state is the raw dataset, which a local snapshot
# *should* persist) and the service layer's deterministic coreset wrapper
# ``SeededSampleSynopsis``.  All other kinds delegate to the wire dicts
# above, so one format version covers both paths.


def to_state(synopsis, add_array) -> dict:
    """Serialize any snapshot-supported synopsis to a JSON-safe dict.

    ``add_array(name_hint, array)`` must register a raw array segment and
    return its reference string; everything else lands in the dict.
    """
    from repro.service.sharding import SeededSampleSynopsis
    from repro.synopsis.exact import ExactSynopsis

    if isinstance(synopsis, SeededSampleSynopsis):
        return {
            "format": FORMAT_VERSION,
            "kind": "seeded",
            "seed": int(synopsis.seed),
            "index": int(synopsis.index),
            "base": to_state(synopsis.base, add_array),
        }
    if isinstance(synopsis, ExactSynopsis):
        return {
            "format": FORMAT_VERSION,
            "kind": "exact",
            "points": add_array("exact_points", synopsis._points),
        }
    return to_dict(synopsis)


def from_state(payload: dict, arrays) -> object:
    """Reconstruct a synopsis from :func:`to_state` output.

    ``arrays`` maps segment references back to ndarrays (possibly
    read-only ``np.memmap`` views — every synopsis only reads its state).
    """
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ConstructionError("payload is not a serialized synopsis")
    if payload.get("format") != FORMAT_VERSION:
        raise ConstructionError(
            f"unsupported format version {payload.get('format')!r}"
        )
    kind = payload["kind"]
    if kind == "seeded":
        from repro.service.sharding import SeededSampleSynopsis

        return SeededSampleSynopsis(
            from_state(payload["base"], arrays),
            seed=int(payload["seed"]),
            index=int(payload["index"]),
        )
    if kind == "exact":
        from repro.synopsis.exact import ExactSynopsis

        syn = ExactSynopsis.__new__(ExactSynopsis)
        syn._points = np.asarray(arrays[payload["points"]])
        return syn
    return from_dict(payload)
