"""ε-sample synopsis: a uniform subsample of the dataset.

One of the synopsis kinds named in Section 1.2 for the percentile class.
A uniform subsample ``C`` of size ``m`` is an ε-sample for rectangles with
``eps = O(sqrt(log(1/phi) / m))`` (Section 2), so the synopsis error is
``delta = O(1/sqrt(m))``.  The subsample also supports preference scoring:
the k-th largest projection of ``P`` is estimated by the
``ceil(k * m / n)``-th largest projection of ``C`` (rank scaling), whose
rank error is again ``O(m^{-1/2})`` relative mass.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.geometry.rectangle import Rectangle
from repro.synopsis.base import Synopsis

#: Default failure-probability knob for the advertised delta bound.
DEFAULT_PHI = 0.01


def epsilon_for_sample_size(m: int, phi: float = DEFAULT_PHI) -> float:
    """The rectangle-class ε-sample error of a uniform subsample of size m.

    Uses the classic VC bound ``eps = sqrt(ln(2/phi) / (2 m))`` (a
    Dvoretzky-Kiefer-Wolfowitz-style constant, empirically conservative for
    axis-parallel rectangles; the T-FED benchmark measures the true error).
    """
    if m < 1:
        raise ValueError("sample size must be positive")
    return min(1.0, math.sqrt(math.log(2.0 / phi) / (2.0 * m)))


class EpsilonSampleSynopsis(Synopsis):
    """A uniform subsample of the dataset, used as its synopsis.

    Parameters
    ----------
    subsample:
        ``(m, d)`` array of points drawn uniformly from the dataset.
    n_points:
        Size ``n`` of the original dataset (kept for rank scaling).
    delta:
        Optional explicit error bound; defaults to
        :func:`epsilon_for_sample_size`.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(7)
    >>> data = rng.normal(size=(5000, 2))
    >>> syn = EpsilonSampleSynopsis.from_points(data, size=400, rng=rng)
    >>> abs(syn.mass(Rectangle([-1, -1], [1, 1])) -
    ...     Rectangle([-1, -1], [1, 1]).count_inside(data) / 5000) < syn.delta_ptile
    True
    """

    def __init__(
        self,
        subsample: np.ndarray,
        n_points: int,
        delta: Optional[float] = None,
        delta_pref: Optional[float] = None,
    ) -> None:
        pts = np.asarray(subsample, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("subsample must be a non-empty (m, d) array")
        if n_points < pts.shape[0]:
            raise ValueError("n_points cannot be smaller than the subsample")
        self._subsample = pts
        self._n_points = int(n_points)
        self._delta = (
            float(delta) if delta is not None else epsilon_for_sample_size(pts.shape[0])
        )
        # Score error is data-dependent (rank error times local projection
        # density); prefer a measured bound from from_points().  Fallback:
        # rank error delta converted through the empirical projection spread.
        if delta_pref is not None:
            self._delta_pref = float(delta_pref)
        else:
            spread = float(np.linalg.norm(pts.max(axis=0) - pts.min(axis=0)))
            self._delta_pref = min(1.0, 2.0 * self._delta) * max(1.0, spread)

    @staticmethod
    def from_points(
        points: np.ndarray,
        size: int,
        rng: np.random.Generator,
        delta: Optional[float] = None,
        probe_dirs: int = 32,
    ) -> "EpsilonSampleSynopsis":
        """Draw the subsample from a raw dataset (the data-owner side).

        While the raw data is in hand, the preference-score error
        ``delta_pref`` is *measured* on probe directions (the paper's model
        assumes each ``delta_i`` is known to the data owner).
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        size = min(size, pts.shape[0])
        idx = rng.choice(pts.shape[0], size=size, replace=False)
        syn = EpsilonSampleSynopsis(pts[idx], n_points=pts.shape[0], delta=delta)
        worst = 0.0
        n = pts.shape[0]
        for _ in range(probe_dirs):
            v = rng.normal(size=pts.shape[1])
            v /= np.linalg.norm(v)
            proj = np.sort(pts @ v)
            for frac in (0.01, 0.1, 0.25):
                k = max(1, int(frac * n))
                worst = max(worst, abs(syn.score(v, k) - proj[n - k]))
        syn._delta_pref = 1.5 * worst + 1e-6
        return syn

    @property
    def subsample(self) -> np.ndarray:
        """The stored subsample (read-only view)."""
        return self._subsample

    @property
    def dim(self) -> int:
        return int(self._subsample.shape[1])

    @property
    def n_points(self) -> int:
        return self._n_points

    @property
    def size(self) -> int:
        """Subsample size ``m``."""
        return int(self._subsample.shape[0])

    # -- percentile class -------------------------------------------------
    @property
    def delta_ptile(self) -> float:
        return self._delta

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        self._check_sample_args(size)
        idx = rng.integers(0, self.size, size=size)
        return self._subsample[idx]

    def mass(self, rect: Rectangle) -> float:
        return rect.count_inside(self._subsample) / self.size

    # -- preference class --------------------------------------------------
    @property
    def delta_pref(self) -> float:
        return self._delta_pref

    def score(self, vector: np.ndarray, k: int) -> float:
        """Rank-scaled k-th largest projection of the subsample."""
        v = self._check_score_args(vector, k)
        if k > self._n_points:
            return float("-inf")
        # Rank k out of n maps to rank ~ k * m / n out of m.
        k_scaled = min(self.size, max(1, math.ceil(k * self.size / self._n_points)))
        proj = self._subsample @ v
        return float(np.partition(proj, self.size - k_scaled)[self.size - k_scaled])
