"""Metric r-cover synopsis (for the Section 6 extension queries).

Section 6 ("Future work") defines nearest-neighbor and diversity queries
over the framework and notes that the missing ingredient is a coreset;
additive-error coresets for nearest-neighbor search exist [26].  This
module provides the simplest such object: a greedy **r-cover** of the
dataset — a subset ``C ⊆ P`` such that every point of ``P`` is within
distance ``r`` of some point of ``C``.  Consequences used by the extension
indexes:

- ``|dist(q, C) - dist(q, P)| <= r`` for every query point ``q``
  (nearest-neighbor additive error);
- for every pair realizing the diameter of ``P ∩ R`` there are cover
  points within ``r``, so diameters are preserved up to ``±2r`` modulo a
  boundary expansion (see :mod:`repro.core.diversity_index`).

The greedy construction is grid-accelerated: points are bucketed into
cells of side ``r / sqrt(d)`` and one representative (an actual data
point) is kept per cell — every point shares a cell with its
representative, hence lies within the cell diagonal ``<= r``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConstructionError
from repro.synopsis.base import Synopsis


class CoverSynopsis(Synopsis):
    """A greedy r-cover of a dataset, stored as actual data points.

    Parameters
    ----------
    points:
        ``(n, d)`` dataset (consumed at construction; only the cover and
        its radius are kept — federated storage model).
    radius:
        Cover radius ``r > 0``; this is the synopsis error ``delta`` for
        the nearest-neighbor measure class.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> data = rng.uniform(size=(2000, 2))
    >>> cov = CoverSynopsis(data, radius=0.1)
    >>> cov.cover_points.shape[0] < 2000
    True
    >>> q = np.array([0.5, 0.5])
    >>> exact = np.linalg.norm(data - q, axis=1).min()
    >>> abs(cov.distance_to(q) - exact) <= 0.1 + 1e-12
    True
    """

    def __init__(self, points: np.ndarray, radius: float) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ConstructionError("points must be a non-empty (n, d) array")
        if radius <= 0.0:
            raise ConstructionError(f"radius must be positive, got {radius}")
        self._dim = int(pts.shape[1])
        self._n_points = int(pts.shape[0])
        self.radius = float(radius)
        cell = self.radius / np.sqrt(self._dim)
        keys = np.floor(pts / cell).astype(np.int64)
        _, first = np.unique(keys, axis=0, return_index=True)
        self._cover = pts[np.sort(first)]

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def n_points(self) -> int:
        return self._n_points

    @property
    def cover_points(self) -> np.ndarray:
        """The cover ``C ⊆ P`` (read-only view)."""
        return self._cover

    @property
    def size(self) -> int:
        """``|C|``."""
        return int(self._cover.shape[0])

    def distance_to(self, query: np.ndarray) -> float:
        """``dist(q, C)`` — within ``radius`` of ``dist(q, P)``."""
        q = np.asarray(query, dtype=float)
        if q.shape != (self._dim,):
            raise ValueError(f"query must have shape ({self._dim},)")
        return float(np.linalg.norm(self._cover - q, axis=1).min())

    def covers(self, points: np.ndarray) -> bool:
        """Verify the cover property on the given points (for tests)."""
        pts = np.asarray(points, dtype=float)
        for p in pts:
            if np.linalg.norm(self._cover - p, axis=1).min() > self.radius + 1e-9:
                return False
        return True
