"""repro — distribution-aware dataset search.

A complete reproduction of *"A Theoretical Framework for Distribution-Aware
Dataset Search"* (Esmailpour, Galhotra, Raychaudhury, Sintos; PODS 2025):
percentile-aware (Ptile) and preference-aware (Pref) indexing over dataset
repositories, in both the centralized and the federated (synopsis-only)
setting, with the paper's recall/precision guarantees.

Quick start::

    import numpy as np
    from repro import (DatasetSearchEngine, Repository, PercentileMeasure,
                       Rectangle, pred)

    rng = np.random.default_rng(0)
    repo = Repository.from_arrays([rng.normal(size=(1000, 2)) for _ in range(50)])
    engine = DatasetSearchEngine(repository=repo, eps=0.1, rng=rng)
    brooklyn = Rectangle([-1.0, -1.0], [0.0, 0.0])
    result = engine.search(pred(PercentileMeasure(brooklyn), 0.10))
    print(result.indexes)   # datasets with >= 10% of points in the region

For heavy query traffic, the :mod:`repro.service` layer wraps the engine in
a :class:`~repro.service.QueryService` — expression canonicalization, an
LRU leaf-result cache, and a sharded batch executor — and ``repro serve``
exposes it over HTTP.  See ``README.md`` for install, quickstart, and
service-layer usage; benchmark scripts under ``benchmarks/`` record the
paper-versus-measured evidence for every reproduced claim.
"""

from repro.errors import CapabilityError, ConstructionError, QueryError, ReproError
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.core.framework import Dataset, Repository
from repro.core.measures import MeasureFunction, PercentileMeasure, PreferenceMeasure
from repro.core.predicates import And, Or, Predicate, pred
from repro.core.results import QueryResult
from repro.core.ptile_threshold import PtileThresholdIndex
from repro.core.ptile_range import PtileRangeIndex
from repro.core.ptile_logical import PtileLogicalIndex
from repro.core.ptile_exact_1d import ExactPtile1DIndex
from repro.core.pref_index import PrefIndex
from repro.core.pref_logical import PrefLogicalIndex
from repro.core.engine import DatasetSearchEngine
from repro.core.nn_index import NearestNeighborIndex
from repro.core.diversity_index import DiversityIndex
from repro.synopsis import (
    CoverSynopsis,
    DirectionQuantileSynopsis,
    EpsilonSampleSynopsis,
    ExactSynopsis,
    GMMSynopsis,
    HistogramSynopsis,
    Synopsis,
)
from repro.service import LeafResultCache, QueryService, ShardedBatchExecutor

__version__ = "1.1.0"

__all__ = [
    "ReproError",
    "CapabilityError",
    "ConstructionError",
    "QueryError",
    "Interval",
    "Rectangle",
    "Dataset",
    "Repository",
    "MeasureFunction",
    "PercentileMeasure",
    "PreferenceMeasure",
    "Predicate",
    "And",
    "Or",
    "pred",
    "QueryResult",
    "PtileThresholdIndex",
    "PtileRangeIndex",
    "PtileLogicalIndex",
    "ExactPtile1DIndex",
    "PrefIndex",
    "PrefLogicalIndex",
    "DatasetSearchEngine",
    "NearestNeighborIndex",
    "DiversityIndex",
    "QueryService",
    "LeafResultCache",
    "ShardedBatchExecutor",
    "Synopsis",
    "ExactSynopsis",
    "EpsilonSampleSynopsis",
    "HistogramSynopsis",
    "GMMSynopsis",
    "DirectionQuantileSynopsis",
    "CoverSynopsis",
    "__version__",
]
