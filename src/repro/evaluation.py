"""Evaluation utilities: recall / precision / guarantee-slack audits.

The tests, benchmarks and examples all need the same three checks against
ground truth:

- **recall** — the paper's hard guarantee ``q_Π(P) ⊆ J``;
- **precision** — the fraction of reported indexes that exactly satisfy
  the predicate;
- **slack audit** — every false positive must sit within the documented
  additive band of the thresholds (``2·ε_eff + 2·δ_i`` for Ptile/Pref,
  ``2r`` / ``4r`` for the Section 6 extensions).

This module centralizes them so every consumer applies identical, audited
logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.geometry.interval import Interval


@dataclass
class GuaranteeReport:
    """Outcome of auditing one query against exact ground truth.

    Attributes
    ----------
    truth:
        The exact index set.
    reported:
        The index set returned by the structure under audit.
    slack_violations:
        False positives whose exact measure falls *outside* the widened
        interval — must be empty for a correct implementation.
    """

    truth: set = field(default_factory=set)
    reported: set = field(default_factory=set)
    slack_violations: list = field(default_factory=list)

    @property
    def missed(self) -> set:
        """False negatives — must be empty (the recall guarantee)."""
        return self.truth - self.reported

    @property
    def recall(self) -> float:
        """``|truth ∩ reported| / |truth|`` (1.0 when truth is empty)."""
        if not self.truth:
            return 1.0
        return len(self.truth & self.reported) / len(self.truth)

    @property
    def precision(self) -> float:
        """``|truth ∩ reported| / |reported|`` (1.0 when nothing reported)."""
        if not self.reported:
            return 1.0
        return len(self.truth & self.reported) / len(self.reported)

    @property
    def guarantees_hold(self) -> bool:
        """Recall is perfect and every false positive is inside the slack."""
        return not self.missed and not self.slack_violations


def audit_interval_query(
    exact_values: Sequence[float],
    reported: set,
    theta: Interval,
    slack_of: Callable[[int], float],
) -> GuaranteeReport:
    """Audit a range/threshold query over per-dataset exact measure values.

    Parameters
    ----------
    exact_values:
        ``exact_values[i]`` is the exact measure ``M(P_i)``.
    reported:
        The index set the structure returned.
    theta:
        The queried interval.
    slack_of:
        Per-dataset additive slack (e.g. ``lambda j: 2*eps_eff + 2*delta_j``).

    Examples
    --------
    >>> rep = audit_interval_query([0.5, 0.1], {0, 1}, Interval(0.4, 1.0),
    ...                            slack_of=lambda j: 0.2)
    >>> rep.recall, rep.precision, rep.slack_violations
    (1.0, 0.5, [])
    """
    truth = {i for i, v in enumerate(exact_values) if v in theta}
    violations = []
    for j in reported:
        slack = slack_of(j)
        widened = theta.expand(slack)
        if exact_values[j] not in widened:
            violations.append((j, float(exact_values[j]), slack))
    return GuaranteeReport(
        truth=truth, reported=set(reported), slack_violations=violations
    )


def exact_ptile_masses(datasets: Sequence[np.ndarray], rect) -> list[float]:
    """Exact ``M_R(P_i)`` for every raw dataset."""
    return [rect.count_inside(np.asarray(d)) / len(d) for d in datasets]


def exact_pref_scores(
    datasets: Sequence[np.ndarray], vector: np.ndarray, k: int
) -> list[float]:
    """Exact ``omega_k(P_i, v)`` for every raw dataset (``-inf`` if small)."""
    v = np.asarray(vector, dtype=float)
    v = v / np.linalg.norm(v)
    out = []
    for d in datasets:
        pts = np.asarray(d, dtype=float)
        if k > pts.shape[0]:
            out.append(float("-inf"))
        else:
            proj = pts @ v
            out.append(float(np.partition(proj, pts.shape[0] - k)[pts.shape[0] - k]))
    return out


def audit_ptile_query(
    datasets: Sequence[np.ndarray],
    index,
    rect,
    theta: Interval,
    key_map: Optional[dict] = None,
) -> GuaranteeReport:
    """End-to-end audit of a PtileRangeIndex / PtileThresholdIndex query.

    ``key_map`` translates index keys to dataset positions when the two
    differ (after dynamic churn); identity by default.
    """
    masses = exact_ptile_masses(datasets, rect)
    if hasattr(index, "query") and theta.is_threshold and not hasattr(index, "bounding_box"):
        result = index.query(rect, theta.lo)
    else:
        result = index.query(rect, theta)
    keys = result.index_set
    if key_map:
        keys = {key_map[k] for k in keys}
    return audit_interval_query(
        masses,
        keys,
        theta.clamp(0.0, 1.0),
        slack_of=lambda j: 2 * index.eps_effective + 2 * index.delta_of(j),
    )
