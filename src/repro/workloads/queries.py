"""Query workload generators: rectangles, vectors, thresholds, batches."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.core.predicates import And, Expression, Or, Predicate
from repro.errors import ConstructionError
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle


def random_rectangles(
    n: int,
    dim: int,
    rng: np.random.Generator,
    ambient: Optional[Rectangle] = None,
    min_extent: float = 0.05,
    max_extent: float = 0.6,
) -> list[Rectangle]:
    """Random axis-parallel query rectangles inside an ambient box.

    Extents are drawn per axis as a fraction of the ambient span, then the
    rectangle is placed uniformly at random so it stays inside the box.
    """
    if n < 1:
        raise ConstructionError("n must be positive")
    if not 0.0 < min_extent <= max_extent <= 1.0:
        raise ConstructionError("need 0 < min_extent <= max_extent <= 1")
    if ambient is None:
        ambient = Rectangle([0.0] * dim, [1.0] * dim)
    span = ambient.hi - ambient.lo
    out: list[Rectangle] = []
    for _ in range(n):
        extent = rng.uniform(min_extent, max_extent, size=dim) * span
        lo = ambient.lo + rng.uniform(0.0, 1.0, size=dim) * (span - extent)
        out.append(Rectangle(lo, lo + extent))
    return out


def random_unit_vectors(n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` uniform random unit vectors in ``R^dim``."""
    if n < 1 or dim < 1:
        raise ConstructionError("n and dim must be positive")
    v = rng.normal(size=(n, dim))
    return v / np.linalg.norm(v, axis=1, keepdims=True)


def threshold_grid(lo: float, hi: float, steps: int) -> np.ndarray:
    """Evenly spaced thresholds for sweep benchmarks."""
    if steps < 1:
        raise ConstructionError("steps must be positive")
    return np.linspace(lo, hi, steps)


def _fresh_leaf(
    dim: int,
    rng: np.random.Generator,
    pref_fraction: float,
    ambient: Optional[Rectangle],
    ks: Sequence[int],
    tau_range: tuple[float, float],
) -> Predicate:
    if rng.uniform() < pref_fraction:
        vector = random_unit_vectors(1, dim, rng)[0]
        k = int(rng.choice(np.asarray(ks)))
        tau = float(rng.uniform(*tau_range))
        return Predicate(PreferenceMeasure(vector, k=k), Interval.at_least(tau))
    rect = random_rectangles(1, dim, rng, ambient=ambient)[0]
    lo = float(rng.uniform(0.0, 0.6))
    if rng.uniform() < 0.5:
        theta = Interval.at_least(lo)
    else:
        theta = Interval(lo, min(1.0, lo + float(rng.uniform(0.1, 0.4))))
    return Predicate(PercentileMeasure(rect), theta)


def batched_query_workload(
    n_queries: int,
    dim: int,
    rng: np.random.Generator,
    pref_fraction: float = 0.3,
    duplicate_leaf_rate: float = 0.5,
    max_leaves: int = 3,
    ambient: Optional[Rectangle] = None,
    ks: Sequence[int] = (3, 5),
    tau_range: tuple[float, float] = (0.2, 1.0),
) -> list[Expression]:
    """A batch of mixed Ptile/Pref logical expressions with shared leaves.

    Models the leaf-repetition structure of production query streams: many
    queries reuse popular sub-predicates ("crime rate in Brooklyn above
    10%") while the rest of the expression varies.  Each query draws
    1..``max_leaves`` leaves; every leaf slot is, with probability
    ``duplicate_leaf_rate``, a uniform draw from the pool of previously
    generated leaves (both within and across queries), and otherwise a
    fresh leaf appended to the pool.  Multi-leaf queries combine their
    leaves with uniformly random And/Or folds.

    ``duplicate_leaf_rate = 0`` yields an all-distinct workload (worst case
    for a leaf cache); rates close to 1 yield heavy sharing (best case).

    Examples
    --------
    >>> import numpy as np
    >>> batch = batched_query_workload(8, 2, np.random.default_rng(0),
    ...                                duplicate_leaf_rate=0.8)
    >>> len(batch)
    8
    """
    if n_queries < 1:
        raise ConstructionError("n_queries must be positive")
    if not 0.0 <= duplicate_leaf_rate <= 1.0:
        raise ConstructionError("duplicate_leaf_rate must be in [0, 1]")
    if not 0.0 <= pref_fraction <= 1.0:
        raise ConstructionError("pref_fraction must be in [0, 1]")
    if max_leaves < 1:
        raise ConstructionError("max_leaves must be positive")
    pool: list[Predicate] = []

    def draw_leaf() -> Predicate:
        if pool and rng.uniform() < duplicate_leaf_rate:
            return pool[int(rng.integers(0, len(pool)))]
        leaf = _fresh_leaf(dim, rng, pref_fraction, ambient, ks, tau_range)
        pool.append(leaf)
        return leaf

    queries: list[Expression] = []
    for _ in range(n_queries):
        n_leaves = int(rng.integers(1, max_leaves + 1))
        expr: Expression = draw_leaf()
        for _ in range(n_leaves - 1):
            other = draw_leaf()
            expr = And([expr, other]) if rng.uniform() < 0.5 else Or([expr, other])
        queries.append(expr)
    return queries
