"""Query workload generators: rectangles, vectors, thresholds."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConstructionError
from repro.geometry.rectangle import Rectangle


def random_rectangles(
    n: int,
    dim: int,
    rng: np.random.Generator,
    ambient: Optional[Rectangle] = None,
    min_extent: float = 0.05,
    max_extent: float = 0.6,
) -> list[Rectangle]:
    """Random axis-parallel query rectangles inside an ambient box.

    Extents are drawn per axis as a fraction of the ambient span, then the
    rectangle is placed uniformly at random so it stays inside the box.
    """
    if n < 1:
        raise ConstructionError("n must be positive")
    if not 0.0 < min_extent <= max_extent <= 1.0:
        raise ConstructionError("need 0 < min_extent <= max_extent <= 1")
    if ambient is None:
        ambient = Rectangle([0.0] * dim, [1.0] * dim)
    span = ambient.hi - ambient.lo
    out: list[Rectangle] = []
    for _ in range(n):
        extent = rng.uniform(min_extent, max_extent, size=dim) * span
        lo = ambient.lo + rng.uniform(0.0, 1.0, size=dim) * (span - extent)
        out.append(Rectangle(lo, lo + extent))
    return out


def random_unit_vectors(n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` uniform random unit vectors in ``R^dim``."""
    if n < 1 or dim < 1:
        raise ConstructionError("n and dim must be positive")
    v = rng.normal(size=(n, dim))
    return v / np.linalg.norm(v, axis=1, keepdims=True)


def threshold_grid(lo: float, hi: float, steps: int) -> np.ndarray:
    """Evenly spaced thresholds for sweep benchmarks."""
    if steps < 1:
        raise ConstructionError("steps must be positive")
    return np.linspace(lo, hi, steps)
