"""Query workload generators: rectangles, vectors, thresholds, batches,
and churn streams mixing query batches with live repository mutations."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.core.predicates import And, Expression, Or, Predicate
from repro.errors import ConstructionError
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle


def random_rectangles(
    n: int,
    dim: int,
    rng: np.random.Generator,
    ambient: Optional[Rectangle] = None,
    min_extent: float = 0.05,
    max_extent: float = 0.6,
) -> list[Rectangle]:
    """Random axis-parallel query rectangles inside an ambient box.

    Extents are drawn per axis as a fraction of the ambient span, then the
    rectangle is placed uniformly at random so it stays inside the box.
    """
    if n < 1:
        raise ConstructionError("n must be positive")
    if not 0.0 < min_extent <= max_extent <= 1.0:
        raise ConstructionError("need 0 < min_extent <= max_extent <= 1")
    if ambient is None:
        ambient = Rectangle([0.0] * dim, [1.0] * dim)
    span = ambient.hi - ambient.lo
    out: list[Rectangle] = []
    for _ in range(n):
        extent = rng.uniform(min_extent, max_extent, size=dim) * span
        lo = ambient.lo + rng.uniform(0.0, 1.0, size=dim) * (span - extent)
        out.append(Rectangle(lo, lo + extent))
    return out


def random_unit_vectors(n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` uniform random unit vectors in ``R^dim``."""
    if n < 1 or dim < 1:
        raise ConstructionError("n and dim must be positive")
    v = rng.normal(size=(n, dim))
    return v / np.linalg.norm(v, axis=1, keepdims=True)


def threshold_grid(lo: float, hi: float, steps: int) -> np.ndarray:
    """Evenly spaced thresholds for sweep benchmarks."""
    if steps < 1:
        raise ConstructionError("steps must be positive")
    return np.linspace(lo, hi, steps)


def _fresh_leaf(
    dim: int,
    rng: np.random.Generator,
    pref_fraction: float,
    ambient: Optional[Rectangle],
    ks: Sequence[int],
    tau_range: tuple[float, float],
) -> Predicate:
    if rng.uniform() < pref_fraction:
        vector = random_unit_vectors(1, dim, rng)[0]
        k = int(rng.choice(np.asarray(ks)))
        tau = float(rng.uniform(*tau_range))
        return Predicate(PreferenceMeasure(vector, k=k), Interval.at_least(tau))
    rect = random_rectangles(1, dim, rng, ambient=ambient)[0]
    lo = float(rng.uniform(0.0, 0.6))
    if rng.uniform() < 0.5:
        theta = Interval.at_least(lo)
    else:
        theta = Interval(lo, min(1.0, lo + float(rng.uniform(0.1, 0.4))))
    return Predicate(PercentileMeasure(rect), theta)


def batched_query_workload(
    n_queries: int,
    dim: int,
    rng: np.random.Generator,
    pref_fraction: float = 0.3,
    duplicate_leaf_rate: float = 0.5,
    max_leaves: int = 3,
    ambient: Optional[Rectangle] = None,
    ks: Sequence[int] = (3, 5),
    tau_range: tuple[float, float] = (0.2, 1.0),
) -> list[Expression]:
    """A batch of mixed Ptile/Pref logical expressions with shared leaves.

    Models the leaf-repetition structure of production query streams: many
    queries reuse popular sub-predicates ("crime rate in Brooklyn above
    10%") while the rest of the expression varies.  Each query draws
    1..``max_leaves`` leaves; every leaf slot is, with probability
    ``duplicate_leaf_rate``, a uniform draw from the pool of previously
    generated leaves (both within and across queries), and otherwise a
    fresh leaf appended to the pool.  Multi-leaf queries combine their
    leaves with uniformly random And/Or folds.

    ``duplicate_leaf_rate = 0`` yields an all-distinct workload (worst case
    for a leaf cache); rates close to 1 yield heavy sharing (best case).

    Examples
    --------
    >>> import numpy as np
    >>> batch = batched_query_workload(8, 2, np.random.default_rng(0),
    ...                                duplicate_leaf_rate=0.8)
    >>> len(batch)
    8
    """
    if n_queries < 1:
        raise ConstructionError("n_queries must be positive")
    if not 0.0 <= duplicate_leaf_rate <= 1.0:
        raise ConstructionError("duplicate_leaf_rate must be in [0, 1]")
    if not 0.0 <= pref_fraction <= 1.0:
        raise ConstructionError("pref_fraction must be in [0, 1]")
    if max_leaves < 1:
        raise ConstructionError("max_leaves must be positive")
    pool: list[Predicate] = []

    def draw_leaf() -> Predicate:
        if pool and rng.uniform() < duplicate_leaf_rate:
            return pool[int(rng.integers(0, len(pool)))]
        leaf = _fresh_leaf(dim, rng, pref_fraction, ambient, ks, tau_range)
        pool.append(leaf)
        return leaf

    queries: list[Expression] = []
    for _ in range(n_queries):
        n_leaves = int(rng.integers(1, max_leaves + 1))
        expr: Expression = draw_leaf()
        for _ in range(n_leaves - 1):
            other = draw_leaf()
            expr = And([expr, other]) if rng.uniform() < 0.5 else Or([expr, other])
        queries.append(expr)
    return queries


def ambient_gaussian_dataset(
    rng: np.random.Generator,
    ambient: Rectangle,
    size: int,
    spread: float = 0.15,
) -> np.ndarray:
    """One clipped-Gaussian dataset inside an ambient box.

    The churn-stream primitive: a blob centered uniformly in the middle
    60% of ``ambient`` with per-axis sigma ``spread`` of the span, clipped
    to the box — so a service whose bounding box covers ``ambient`` always
    ingests it on the delta path.
    """
    span = ambient.hi - ambient.lo
    dim = ambient.dim
    center = ambient.lo + rng.uniform(0.2, 0.8, size=dim) * span
    pts = rng.normal(center, spread * span, size=(int(size), dim))
    return np.clip(pts, ambient.lo, ambient.hi)


def mutation_workload(
    n_events: int,
    dim: int,
    rng: np.random.Generator,
    n_initial: int,
    add_fraction: float = 0.15,
    remove_fraction: float = 0.1,
    batch_size: int = 8,
    datasets_per_add: int = 2,
    dataset_size: int = 150,
    pref_fraction: float = 0.3,
    duplicate_leaf_rate: float = 0.6,
    max_leaves: int = 3,
    ambient: Optional[Rectangle] = None,
    ks: Sequence[int] = (3, 5),
    tau_range: tuple[float, float] = (0.2, 1.0),
) -> list[tuple[str, object]]:
    """A churn stream: query batches interleaved with repository mutations.

    Models a live data lake under continuous dataset arrival (the
    Fainder-style dataset-search setting): most events are query batches
    that reuse popular leaves across the whole stream (so a leaf cache has
    something to hold on to *across* mutations), the rest ingest new
    datasets or retire old ones.  Events are ``(kind, payload)`` pairs:

    - ``("queries", [Expression, ...])`` — a batch to ``search_batch``;
    - ``("add", [np.ndarray, ...])`` — new point arrays for
      ``add_datasets``; points are drawn inside ``ambient`` (default unit
      box), so a service whose bounding box covers ``ambient`` ingests them
      on the delta path;
    - ``("remove", [int, ...])`` — global dataset indexes for
      ``remove_datasets``.  The generator tracks live indexes exactly as
      the service assigns them (appends get ``n_initial, n_initial+1, ...``)
      and never retires the last two datasets.

    The shared leaf pool spans the entire stream, so ``duplicate_leaf_rate``
    controls how much of the post-mutation traffic is cache-upgradeable.

    Examples
    --------
    >>> import numpy as np
    >>> events = mutation_workload(12, 1, np.random.default_rng(0), n_initial=8)
    >>> len(events)
    12
    >>> sorted({kind for kind, _ in events}) in (
    ...     ["add", "queries"], ["add", "queries", "remove"], ["queries"],
    ...     ["queries", "remove"])
    True
    """
    if n_events < 1:
        raise ConstructionError("n_events must be positive")
    if n_initial < 1:
        raise ConstructionError("n_initial must be positive")
    if not 0.0 <= add_fraction <= 1.0 or not 0.0 <= remove_fraction <= 1.0:
        raise ConstructionError("event fractions must be in [0, 1]")
    if add_fraction + remove_fraction > 1.0:
        raise ConstructionError("add_fraction + remove_fraction must be <= 1")
    if ambient is None:
        ambient = Rectangle([0.0] * dim, [1.0] * dim)
    pool: list[Predicate] = []

    def draw_leaf() -> Predicate:
        if pool and rng.uniform() < duplicate_leaf_rate:
            return pool[int(rng.integers(0, len(pool)))]
        leaf = _fresh_leaf(dim, rng, pref_fraction, ambient, ks, tau_range)
        pool.append(leaf)
        return leaf

    def draw_query() -> Expression:
        n_leaves = int(rng.integers(1, max_leaves + 1))
        expr: Expression = draw_leaf()
        for _ in range(n_leaves - 1):
            other = draw_leaf()
            expr = And([expr, other]) if rng.uniform() < 0.5 else Or([expr, other])
        return expr

    live: list[int] = list(range(n_initial))
    next_index = n_initial
    events: list[tuple[str, object]] = []
    for _ in range(n_events):
        u = rng.uniform()
        if u < add_fraction:
            arrays = [
                ambient_gaussian_dataset(rng, ambient, dataset_size)
                for _ in range(datasets_per_add)
            ]
            live.extend(range(next_index, next_index + len(arrays)))
            next_index += len(arrays)
            events.append(("add", arrays))
        elif u < add_fraction + remove_fraction and len(live) > 2:
            victim = live.pop(int(rng.integers(0, len(live))))
            events.append(("remove", [victim]))
        else:
            events.append(
                ("queries", [draw_query() for _ in range(batch_size)])
            )
    return events
