"""Parametric synthetic dataset families with known ground truth.

Every generator returns plain ``(n_i, d)`` numpy arrays so callers can wrap
them in :class:`~repro.core.framework.Repository`, raw synopses, or the
baselines alike.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConstructionError
from repro.geometry.rectangle import Rectangle

FAMILIES = ("uniform", "gaussian", "clustered", "skewed")


def lognormal_sizes(
    n: int, median: int, sigma: float, rng: np.random.Generator, min_size: int = 8
) -> np.ndarray:
    """Dataset sizes with the heavy-tailed skew of real data lakes."""
    if n < 1 or median < 1:
        raise ConstructionError("n and median must be positive")
    sizes = np.exp(rng.normal(np.log(median), sigma, size=n))
    return np.maximum(min_size, sizes.astype(int))


def synthetic_data_lake(
    n_datasets: int,
    dim: int,
    rng: np.random.Generator,
    family: str = "clustered",
    median_size: int = 1000,
    size_sigma: float = 0.6,
    sizes: Optional[Sequence[int]] = None,
) -> list[np.ndarray]:
    """A repository of ``N`` synthetic datasets in ``[0, 1]^d``.

    Families
    --------
    - ``uniform``   — i.i.d. uniform points (all datasets look alike);
    - ``gaussian``  — one Gaussian blob per dataset, random center/spread;
    - ``clustered`` — a per-dataset mixture of 1-4 blobs (realistic lakes:
      each table covers a few regions of attribute space);
    - ``skewed``    — exponential-ish mass piled toward a random corner.

    Points are clipped to ``[0, 1]^d``.
    """
    if family not in FAMILIES:
        raise ConstructionError(f"unknown family {family!r}; choose from {FAMILIES}")
    if n_datasets < 1 or dim < 1:
        raise ConstructionError("n_datasets and dim must be positive")
    if sizes is None:
        sizes = lognormal_sizes(n_datasets, median_size, size_sigma, rng)
    elif len(sizes) != n_datasets:
        raise ConstructionError("sizes must have one entry per dataset")
    out: list[np.ndarray] = []
    for n in sizes:
        n = int(n)
        if family == "uniform":
            pts = rng.uniform(0.0, 1.0, size=(n, dim))
        elif family == "gaussian":
            center = rng.uniform(0.2, 0.8, size=dim)
            spread = rng.uniform(0.05, 0.25)
            pts = rng.normal(center, spread, size=(n, dim))
        elif family == "clustered":
            n_blobs = int(rng.integers(1, 5))
            weights = rng.dirichlet(np.ones(n_blobs))
            counts = rng.multinomial(n, weights)
            parts = []
            for cnt in counts:
                if cnt == 0:
                    continue
                center = rng.uniform(0.1, 0.9, size=dim)
                spread = rng.uniform(0.03, 0.15)
                parts.append(rng.normal(center, spread, size=(cnt, dim)))
            pts = np.vstack(parts)
        else:  # skewed
            corner = rng.integers(0, 2, size=dim).astype(float)
            raw = rng.exponential(0.2, size=(n, dim))
            pts = np.abs(corner - raw)
        out.append(np.clip(pts, 0.0, 1.0))
    return out


def dataset_with_mass(
    n: int,
    rect: Rectangle,
    mass: float,
    rng: np.random.Generator,
    ambient: Optional[Rectangle] = None,
) -> np.ndarray:
    """A dataset with an *exact* fraction of points inside a rectangle.

    Used to plant precise ground truth: ``round(mass * n)`` points uniform
    inside ``rect``, the rest uniform in ``ambient \\ rect`` (by rejection).
    """
    if not 0.0 <= mass <= 1.0:
        raise ConstructionError(f"mass must be in [0, 1], got {mass}")
    if n < 1:
        raise ConstructionError("n must be positive")
    dim = rect.dim
    if ambient is None:
        ambient = Rectangle([0.0] * dim, [1.0] * dim)
    if not rect.contained_in(ambient):
        raise ConstructionError("rect must lie inside the ambient box")
    n_inside = int(round(mass * n))
    inside = rng.uniform(rect.lo, rect.hi, size=(n_inside, dim))
    outside_rows: list[np.ndarray] = []
    needed = n - n_inside
    while needed > 0:
        cand = rng.uniform(ambient.lo, ambient.hi, size=(max(needed * 2, 16), dim))
        keep = cand[~rect.contains_points(cand)][:needed]
        if keep.shape[0] == 0:
            raise ConstructionError(
                "rect covers the ambient box; cannot place outside points"
            )
        outside_rows.append(keep)
        needed -= keep.shape[0]
    outside = (
        np.vstack(outside_rows) if outside_rows else np.empty((0, dim))
    )
    pts = np.vstack([inside, outside])
    rng.shuffle(pts, axis=0)
    return pts
