"""Synthetic data-lake workloads.

The paper motivates the problems on open-data repositories of ~100K
datasets (Example 1.1).  Those repositories are proprietary-ish and huge;
we substitute controlled synthetic generators (DESIGN.md, substitution 1)
with known ground truth:

- :mod:`~repro.workloads.generators` — parametric dataset families
  (uniform, Gaussian mixtures, skewed, controlled-mass) with realistic
  dataset-size skew;
- :mod:`~repro.workloads.queries` — query workloads (rectangles with
  controlled selectivity, random preference vectors and thresholds);
- :mod:`~repro.workloads.opendata` — the running example: city incident
  records for percentile queries and neighborhood quality-of-life tables
  for preference queries.
"""

from repro.workloads.generators import (
    lognormal_sizes,
    synthetic_data_lake,
    dataset_with_mass,
)
from repro.workloads.queries import (
    ambient_gaussian_dataset,
    batched_query_workload,
    mutation_workload,
    random_rectangles,
    random_unit_vectors,
    threshold_grid,
)
from repro.workloads.opendata import (
    city_incident_repository,
    city_quality_repository,
    BROOKLYN_REGION,
)

__all__ = [
    "lognormal_sizes",
    "synthetic_data_lake",
    "dataset_with_mass",
    "ambient_gaussian_dataset",
    "batched_query_workload",
    "mutation_workload",
    "random_rectangles",
    "random_unit_vectors",
    "threshold_grid",
    "city_incident_repository",
    "city_quality_repository",
    "BROOKLYN_REGION",
]
