"""The paper's running example as a synthetic workload (Example 1.1).

Two repositories model the economist's two needs:

- :func:`city_incident_repository` — percentile queries.  Each dataset is a
  table of crime-incident records with (longitude, latitude) coordinates in
  a normalized ``[0, 1]^2`` map.  A designated "Brooklyn" region
  (:data:`BROOKLYN_REGION`) receives a per-dataset fraction of incidents,
  so "datasets with at least 10% of points from Brooklyn" has controlled
  ground truth.
- :func:`city_quality_repository` — preference queries.  Each dataset is a
  city: one row per neighborhood with columns
  ``(safety, clean_air, healthcare, education)`` in ``[0, 1]`` (higher is
  better).  "Cities with at least k neighborhoods of quality-of-life
  score >= tau" is a top-k preference query with a user-chosen linear
  weighting of the four factors.
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import Dataset, Repository
from repro.errors import ConstructionError
from repro.geometry.rectangle import Rectangle
from repro.workloads.generators import dataset_with_mass

#: The "Brooklyn" query region on the normalized map.
BROOKLYN_REGION = Rectangle([0.55, 0.15], [0.8, 0.4])

#: Attribute schema of the quality-of-life tables.
QUALITY_SCHEMA = ("safety", "clean_air", "healthcare", "education")


def city_incident_repository(
    n_cities: int,
    rng: np.random.Generator,
    median_incidents: int = 1500,
    brooklyn_fractions: np.ndarray | None = None,
) -> tuple[Repository, np.ndarray]:
    """Crime-incident datasets with controlled Brooklyn mass.

    Returns ``(repository, fractions)`` where ``fractions[i]`` is the exact
    fraction of dataset ``i``'s incidents inside :data:`BROOKLYN_REGION`.
    """
    if n_cities < 1:
        raise ConstructionError("n_cities must be positive")
    if brooklyn_fractions is None:
        # A mix of cities: many with little Brooklyn data, some with a lot.
        brooklyn_fractions = rng.beta(1.2, 6.0, size=n_cities)
    fractions = np.asarray(brooklyn_fractions, dtype=float)
    if fractions.shape != (n_cities,):
        raise ConstructionError("one Brooklyn fraction per city required")
    datasets = []
    for i in range(n_cities):
        n = max(50, int(rng.normal(median_incidents, median_incidents / 4)))
        pts = dataset_with_mass(n, BROOKLYN_REGION, float(fractions[i]), rng)
        exact = BROOKLYN_REGION.count_inside(pts) / n
        fractions[i] = exact
        datasets.append(
            Dataset(pts, name=f"crime-city-{i:03d}", schema=("lon", "lat"))
        )
    return Repository(datasets), fractions


def city_quality_repository(
    n_cities: int,
    rng: np.random.Generator,
    min_neighborhoods: int = 20,
    max_neighborhoods: int = 120,
) -> Repository:
    """Quality-of-life tables: one row per neighborhood, four factors.

    Cities differ in overall quality level and in within-city inequality,
    so top-k preference queries separate them meaningfully.
    """
    if n_cities < 1:
        raise ConstructionError("n_cities must be positive")
    if not 1 <= min_neighborhoods <= max_neighborhoods:
        raise ConstructionError("invalid neighborhood count range")
    datasets = []
    for i in range(n_cities):
        n = int(rng.integers(min_neighborhoods, max_neighborhoods + 1))
        city_level = rng.uniform(0.25, 0.75, size=4)     # per-factor mean
        inequality = rng.uniform(0.05, 0.25)             # within-city spread
        rows = rng.normal(city_level, inequality, size=(n, 4))
        # Factors are correlated in reality (safe areas tend to have better
        # services); blend in a shared per-neighborhood latent level.
        latent = rng.normal(0.0, inequality, size=(n, 1))
        rows = np.clip(rows + 0.5 * latent, 0.0, 1.0)
        datasets.append(
            Dataset(rows, name=f"quality-city-{i:03d}", schema=QUALITY_SCHEMA)
        )
    return Repository(datasets)
