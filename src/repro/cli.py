"""Command-line interface: explore the library without writing code.

Subcommands
-----------
``demo-ptile``
    Generate a synthetic data lake, build the Ptile range index, run one
    percentile query, and report quality versus ground truth.
``demo-pref``
    Same for the preference index.
``lake-stats``
    Generate a lake and print per-dataset summary statistics.
``serve``
    Build a :class:`~repro.service.QueryService` over a synthetic lake and
    expose it over a stdlib-HTTP JSON endpoint (see
    :mod:`repro.service.server` for the wire format), including the live
    mutation API (``POST /datasets`` / ``DELETE /datasets``).
``demo-mutation``
    Run a churn stream (query batches interleaved with live dataset
    ingestion and removal) against a query service and report per-event
    latencies plus how warm the leaf cache stayed across mutations.

Examples
--------
::

    python -m repro.cli demo-ptile --n 40 --dim 2 --theta 0.2 0.6
    python -m repro.cli demo-pref --n 40 --k 5 --tau 0.8
    python -m repro.cli lake-stats --n 10 --family gaussian
    python -m repro.cli serve --n 100 --shards 4 --port 8765
    python -m repro.cli demo-mutation --n 24 --events 20 --shards 2
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.bench.harness import TableReporter
from repro.core.pref_index import PrefIndex
from repro.index.backend import DYNAMIC_ENGINES, ENGINES
from repro.core.ptile_range import PtileRangeIndex
from repro.errors import ReproError
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis
from repro.workloads.generators import FAMILIES, synthetic_data_lake


def _add_lake_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=40, help="number of datasets")
    parser.add_argument("--dim", type=int, default=2, help="dimension d")
    parser.add_argument(
        "--family", choices=FAMILIES, default="clustered", help="data family"
    )
    parser.add_argument("--median-size", type=int, default=800)
    parser.add_argument("--seed", type=int, default=0)


def _make_lake(args: argparse.Namespace):
    rng = np.random.default_rng(args.seed)
    lake = synthetic_data_lake(
        args.n, args.dim, rng, family=args.family, median_size=args.median_size
    )
    return lake, rng


def cmd_demo_ptile(args: argparse.Namespace) -> int:
    lake, rng = _make_lake(args)
    region = Rectangle([args.region_lo] * args.dim, [args.region_hi] * args.dim)
    theta = Interval(args.theta[0], args.theta[1])
    index = PtileRangeIndex(
        [ExactSynopsis(p) for p in lake], eps=args.eps, rng=rng
    )
    result = index.query(region, theta)
    masses = [region.count_inside(p) / p.shape[0] for p in lake]
    truth = {i for i, m in enumerate(masses) if m in theta}
    table = TableReporter(
        f"Ptile demo: mass in {region} within [{theta.lo}, {theta.hi}]",
        ["dataset", "exact mass", "reported", "in exact answer"],
    )
    for i in sorted(result.index_set | truth):
        table.add_row([i, masses[i], i in result.index_set, i in truth])
    table.print()
    print(f"recall: {len(truth & result.index_set)}/{len(truth)} "
          f"(guaranteed {len(truth)}/{len(truth)}); "
          f"eps_effective = {index.eps_effective:.3f}")
    return 0 if truth <= result.index_set else 1


def cmd_demo_pref(args: argparse.Namespace) -> int:
    lake, _rng = _make_lake(args)
    index = PrefIndex(
        [ExactSynopsis(p) for p in lake], k=args.k, eps=args.eps
    )
    direction = np.ones(args.dim) / np.sqrt(args.dim)
    result = index.query(direction, args.tau)
    scores = [float(np.sort(p @ direction)[max(0, len(p) - args.k)]) for p in lake]
    truth = {i for i, s in enumerate(scores) if s >= args.tau}
    table = TableReporter(
        f"Pref demo: k={args.k}-th best projection on the diagonal >= {args.tau}",
        ["dataset", "exact score", "reported", "in exact answer"],
    )
    for i in sorted(result.index_set | truth):
        table.add_row([i, scores[i], i in result.index_set, i in truth])
    table.print()
    print(f"recall: {len(truth & result.index_set)}/{len(truth)} "
          f"(guaranteed {len(truth)}/{len(truth)}); "
          f"net directions = {index.n_directions}")
    return 0 if truth <= result.index_set else 1


def _build_lake_service(args: argparse.Namespace):
    from repro.core.framework import Repository
    from repro.service import QueryService

    lake, _rng = _make_lake(args)
    repo = Repository.from_arrays(lake)
    return QueryService(
        repository=repo,
        n_shards=args.shards,
        cache_capacity=args.cache_capacity,
        eps=args.eps,
        sample_size=args.sample_size,
        seed=args.seed,
        engine=args.engine,
        capacity=args.capacity,
        tracing=getattr(args, "trace", False),
        slow_query_threshold_ms=getattr(args, "slow_log", None),
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import os

    from repro.service import QueryService, serve

    if args.failpoints:
        from repro.service import faults

        faults.arm(args.failpoints)
        print(f"fault injection armed: {args.failpoints} (testing only)")

    if args.workers > 1:
        # Multi-process serving always goes through a snapshot file: the
        # parent loads it mmap'ed once, forks, and the workers share the
        # mapped pages (see repro.service.supervisor).
        from repro.service.supervisor import serve_forked

        if not args.snapshot:
            print("serve: --workers > 1 requires --snapshot PATH",
                  file=sys.stderr)
            return 2
        if not os.path.exists(args.snapshot):
            print(f"building snapshot {args.snapshot} from a synthetic lake "
                  f"({args.n} datasets) ...")
            service = _build_lake_service(args)
            service.warm()
            service.save(args.snapshot)
            service.close()
        serve_forked(
            args.snapshot, workers=args.workers, host=args.host,
            port=args.port, max_inflight=args.max_inflight,
            max_queue=args.max_queue,
        )
        return 0

    if args.snapshot and os.path.exists(args.snapshot):
        service = QueryService.load(args.snapshot)
        print(f"loaded snapshot {args.snapshot} "
              f"({service.n_datasets} datasets, engine "
              f"{service.engine_kind!r}, {service.n_shards} shard(s))")
    else:
        service = _build_lake_service(args)
        if args.snapshot:
            service.warm()
            service.save(args.snapshot)
            print(f"wrote snapshot {args.snapshot}")
        print(
            f"serving {service.n_datasets} datasets (d = "
            f"{service.repository.dim}, family = {args.family}) over "
            f"{service.n_shards} shard(s), engine {args.engine!r}, "
            f"cache capacity {args.cache_capacity}"
        )
    if args.trace:
        print("tracing every batch (per-stage spans feed /metrics; "
              "responses carry 'trace')")
    if args.slow_log is not None:
        print(f"slow-query log on: threshold {args.slow_log} ms "
              f"(dump with GET /stats/slow)")
    if args.warm:
        print("warming shard indexes ...")
        service.warm()
    import json as _json

    example = _json.dumps(
        {
            "expression": {
                "op": "ptile",
                "lo": [0.0] * service.repository.dim,
                "hi": [0.5] * service.repository.dim,
                "theta": [0.1],
            }
        }
    )
    print(f"try: curl -s -X POST -d '{example}' "
          f"http://{args.host}:{args.port}/search")
    serve(service, host=args.host, port=args.port,
          max_inflight=args.max_inflight, max_queue=args.max_queue)
    return 0


def cmd_federate(args: argparse.Namespace) -> int:
    from repro.service.federation import FederatedCoordinator, serve_federation

    coordinator = FederatedCoordinator(
        rpc_timeout_s=args.rpc_timeout,
        max_retries=args.max_retries,
        hedge_delay_s=args.hedge_delay if args.hedge_delay > 0 else None,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
        merge_margin=args.merge_margin,
        tracing=args.trace,
    )
    for url in args.node:
        try:
            receipt = coordinator.add_node(url)
        except ReproError as exc:
            print(f"federate: cannot register node {url}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"registered node {receipt['node_id']}: {receipt['url']} "
              f"({receipt['n_datasets']} datasets at offset "
              f"{receipt['offset']})")
    if not args.node:
        print("no --node given; register nodes at runtime with "
              "POST /nodes {\"url\": ..., \"synopses\": [...]}")
    serve_federation(coordinator, host=args.host, port=args.port)
    return 0


def cmd_demo_mutation(args: argparse.Namespace) -> int:
    import time

    from repro.core.framework import Repository
    from repro.geometry.rectangle import Rectangle
    from repro.service import QueryService
    from repro.workloads.queries import ambient_gaussian_dataset, mutation_workload

    rng = np.random.default_rng(args.seed)
    ambient = Rectangle([0.0] * args.dim, [1.0] * args.dim)
    lake = [
        ambient_gaussian_dataset(rng, ambient, args.median_size)
        for _ in range(args.n)
    ]
    service = QueryService(
        repository=Repository.from_arrays(lake),
        n_shards=args.shards,
        eps=args.eps,
        sample_size=args.sample_size,
        seed=args.seed,
        bounding_box=ambient,
        engine=args.engine,
        capacity=args.capacity if args.capacity is not None else 4 * args.n,
    )
    service.warm()
    events = mutation_workload(
        args.events, args.dim, rng, n_initial=args.n, ambient=ambient
    )
    table = TableReporter(
        f"churn stream: {args.n} initial datasets, {args.events} events, "
        f"{service.n_shards} shard(s)",
        ["event", "kind", "detail", "latency (ms)", "hits", "upgrades",
         "misses", "live"],
    )
    for ei, (kind, payload) in enumerate(events):
        before = service.cache.snapshot()
        t0 = time.perf_counter()
        if kind == "queries":
            service.search_batch(payload)
            detail = f"{len(payload)} queries"
        elif kind == "add":
            receipt = service.add_datasets(payload)
            detail = f"+{len(payload)} datasets" + (
                " (rebuilt)" if receipt["rebuilt"] else ""
            )
        else:
            service.remove_datasets(payload)
            detail = f"-{payload}"
        ms = (time.perf_counter() - t0) * 1e3
        after = service.cache.snapshot()
        table.add_row(
            [ei, kind, detail, ms,
             after["hits"] - before["hits"],
             after["upgrades"] - before["upgrades"],
             after["misses"] - before["misses"],
             service.n_live]
        )
    table.print()
    snap = service.cache.snapshot()
    print(
        f"cache after churn: hit rate {snap['hit_rate']:.2f}, "
        f"{snap['upgrades']} upgrades, {snap['invalidations']} invalidations "
        f"(mutations do not flush the cache)"
    )
    service.close()
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service import snapshot as snapshot_mod

    if args.snapshot_command == "inspect":
        print(_json.dumps(snapshot_mod.inspect(args.path), indent=2))
        return 0
    # build: synthesize a lake, warm every shard index, persist.
    service = _build_lake_service(args)
    print(f"building {args.n} datasets (d = {args.dim}, family = "
          f"{args.family}) on {args.shards} shard(s), engine {args.engine!r} ...")
    service.warm()
    info = service.save(args.out, generation=args.generation)
    service.close()
    print(f"wrote {info['path']}: kind {info['kind']!r}, generation "
          f"{info['generation']}, {info['n_arrays']} segments, "
          f"{info['file_bytes']} bytes")
    print(f"serve it: python -m repro.cli serve --snapshot {args.out} "
          f"--workers 4")
    return 0


def cmd_lake_stats(args: argparse.Namespace) -> int:
    lake, _rng = _make_lake(args)
    table = TableReporter(
        f"synthetic lake: {args.n} datasets, d = {args.dim}, family = {args.family}",
        ["dataset", "points", "mean", "std"],
    )
    for i, pts in enumerate(lake):
        table.add_row(
            [i, pts.shape[0],
             np.round(pts.mean(axis=0), 3).tolist(),
             np.round(pts.std(axis=0), 3).tolist()]
        )
    table.print()
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    # Deferred import: the analysis package is pure stdlib, but keeping it
    # off the demo/serve import path means a lint-only breakage cannot take
    # the serving CLI down with it.
    from repro.analysis.runner import main as lint_main

    argv: list = list(args.paths)
    argv += ["--format", args.format]
    if args.rules:
        argv += ["--rules", args.rules]
    if args.list_rules:
        argv.append("--list-rules")
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv += ["--write-baseline", args.write_baseline]
    return lint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distribution-aware dataset search (PODS 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo-ptile", help="run a percentile-query demo")
    _add_lake_args(p)
    p.add_argument("--eps", type=float, default=0.1)
    p.add_argument("--region-lo", type=float, default=0.0)
    p.add_argument("--region-hi", type=float, default=0.5)
    p.add_argument("--theta", type=float, nargs=2, default=(0.2, 0.6),
                   metavar=("A", "B"))
    p.set_defaults(func=cmd_demo_ptile)

    p = sub.add_parser("demo-pref", help="run a preference-query demo")
    _add_lake_args(p)
    p.add_argument("--eps", type=float, default=0.1)
    p.add_argument("--k", type=int, default=5)
    p.add_argument("--tau", type=float, default=0.8)
    p.set_defaults(func=cmd_demo_pref)

    p = sub.add_parser("lake-stats", help="summarize a generated lake")
    _add_lake_args(p)
    p.set_defaults(func=cmd_lake_stats)

    p = sub.add_parser(
        "serve", help="serve a query service over HTTP (JSON endpoint)"
    )
    _add_lake_args(p)
    p.add_argument("--eps", type=float, default=0.1)
    p.add_argument("--sample-size", type=int, default=None,
                   help="coreset size override (default: theoretical bound)")
    p.add_argument("--shards", type=int, default=4,
                   help="number of repository shards")
    p.add_argument("--cache-capacity", type=int, default=4096,
                   help="leaf-result cache capacity (0 disables)")
    p.add_argument("--engine", choices=ENGINES, default="kd",
                   help="range-search backend for every shard ('columnar' "
                        "is fastest at scale; 'rangetree' is static and "
                        "refuses live ingestion)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--warm", action="store_true",
                   help="build shard indexes before accepting requests")
    p.add_argument("--capacity", type=int, default=None,
                   help="dataset capacity the accuracy contract is sized "
                        "for (enables live ingestion up to this count "
                        "without precision drift)")
    p.add_argument("--trace", action="store_true",
                   help="trace every batch (per-stage spans on /metrics; "
                        "responses include a 'trace' span tree)")
    p.add_argument("--slow-log", type=float, default=None, metavar="MS",
                   help="log queries slower than MS milliseconds "
                        "(dump via GET /stats/slow)")
    p.add_argument("--snapshot", default=None, metavar="PATH",
                   help="serve from this snapshot file (mmap cold start); "
                        "built from the synthetic lake first if missing")
    p.add_argument("--workers", type=int, default=1,
                   help="pre-forked serving processes (> 1 needs --snapshot; "
                        "worker 0 is the single writer)")
    p.add_argument("--max-inflight", type=int, default=None, metavar="N",
                   help="admission control: cap concurrently-executing "
                        "search requests at N; excess load is shed with "
                        "429 + Retry-After (default: unbounded)")
    p.add_argument("--max-queue", type=int, default=0, metavar="N",
                   help="let N excess search requests wait briefly for an "
                        "inflight slot before shedding (default 0)")
    p.add_argument("--failpoints", default=None, metavar="SPEC",
                   help="arm fault injection, e.g. 'shard_eval=sleep:0.2' "
                        "(testing only; see repro.service.faults)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "federate",
        help="run a scatter-gather coordinator over running 'repro serve' "
             "nodes (circuit breakers, hedged retries, synopsis-screened "
             "degradation)",
    )
    p.add_argument("--node", action="append", default=[], metavar="URL",
                   help="a node's base URL, e.g. http://10.0.0.2:8765 "
                        "(repeatable; more can join later via POST /nodes)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8770)
    p.add_argument("--rpc-timeout", type=float, default=5.0, metavar="S",
                   help="per-attempt node RPC timeout, seconds")
    p.add_argument("--max-retries", type=int, default=2,
                   help="retries per node call after a failed attempt")
    p.add_argument("--hedge-delay", type=float, default=0.25, metavar="S",
                   help="fire one duplicate RPC if the primary hasn't "
                        "answered after S seconds (0 disables hedging)")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive failures that trip a node's breaker")
    p.add_argument("--breaker-reset", type=float, default=2.0, metavar="S",
                   help="seconds an open breaker waits before one "
                        "half-open probe")
    p.add_argument("--merge-margin", type=float, default=0.15,
                   help="fraction of a query deadline reserved for the "
                        "merge phase")
    p.add_argument("--trace", action="store_true",
                   help="record scatter/gather/merge spans per batch")
    p.set_defaults(func=cmd_federate)

    p = sub.add_parser(
        "snapshot",
        help="build or inspect engine snapshot files (mmap cold starts)",
    )
    snap_sub = p.add_subparsers(dest="snapshot_command", required=True)
    b = snap_sub.add_parser(
        "build", help="build a warmed query service over a synthetic lake "
                      "and persist it"
    )
    _add_lake_args(b)
    b.add_argument("out", help="snapshot file to write")
    b.add_argument("--eps", type=float, default=0.1)
    b.add_argument("--sample-size", type=int, default=None)
    b.add_argument("--shards", type=int, default=4)
    b.add_argument("--cache-capacity", type=int, default=4096)
    b.add_argument("--engine", choices=ENGINES, default="kd")
    b.add_argument("--capacity", type=int, default=None)
    b.add_argument("--generation", type=int, default=0,
                   help="generation counter to stamp into the header")
    b.set_defaults(func=cmd_snapshot)
    i = snap_sub.add_parser("inspect", help="print a snapshot's header summary")
    i.add_argument("path", help="snapshot file to inspect")
    i.set_defaults(func=cmd_snapshot)

    p = sub.add_parser(
        "demo-mutation",
        help="run a churn stream (queries + live ingest/remove) and report "
             "cache warmth",
    )
    # Not _add_lake_args: churn data is always ambient Gaussian blobs (the
    # mutation_workload distribution), so a --family flag would be a no-op.
    p.add_argument("--n", type=int, default=24, help="initial dataset count")
    p.add_argument("--dim", type=int, default=1, help="dimension d")
    p.add_argument("--median-size", type=int, default=150,
                   help="points per dataset")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--eps", type=float, default=0.2)
    p.add_argument("--sample-size", type=int, default=16,
                   help="coreset size override (default 16: keeps the demo "
                        "interactive)")
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--engine", choices=DYNAMIC_ENGINES, default="kd",
                   help="range-search backend (must be dynamic: the churn "
                        "stream ingests live)")
    p.add_argument("--events", type=int, default=20,
                   help="length of the churn stream")
    p.add_argument("--capacity", type=int, default=None,
                   help="accuracy-contract capacity (default: 4x the "
                        "initial dataset count)")
    p.set_defaults(func=cmd_demo_mutation)

    p = sub.add_parser(
        "lint",
        help="run the repo's AST invariant checks (lock discipline, "
             "hot-path purity, backend-protocol conformance, ...)",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--rules", default=None,
                   help="comma-separated rule subset (default: all)")
    p.add_argument("--list-rules", action="store_true",
                   help="list registered rules and exit")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="suppress findings recorded in FILE")
    p.add_argument("--write-baseline", default=None, metavar="FILE",
                   help="write current findings to FILE and exit 0")
    p.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
