"""pool-capture: closures handed to executor pools must not race.

A callable passed to ``pool.submit(...)`` runs on another thread.  Two
hazards have to be checked at the submission boundary:

- **Shared-state mutation without a lock.**  A nested function or lambda
  that mutates a variable captured from the enclosing scope (``x.append``,
  ``d[k] = v``), or a method mutating ``self`` state, races against the
  submitting thread unless the mutation happens inside ``with <lock>``.
- **Implicit span parents.**  ``Tracer.span`` parents via a thread-local
  stack; inside pool-executed code that stack is empty, so every
  ``tracer.span(...)`` there must pass an explicit ``parent=`` (the
  convention ``ShardedBatchExecutor._eval_on_unit`` follows).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Union

from repro.analysis.context import ModuleInfo
from repro.analysis.findings import Finding
from repro.analysis.registry import rule

_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "update",
    "extend",
    "insert",
    "pop",
    "popleft",
    "setdefault",
    "clear",
    "remove",
    "discard",
}

_Callable = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _is_lockish(expr: ast.expr) -> bool:
    name = None
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    return name is not None and "lock" in name.lower()


def _local_names(fn: _Callable) -> Set[str]:
    """Names bound inside *fn*: parameters plus anything stored to."""
    args = fn.args
    names = {
        a.arg
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
    }
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
    return names


def _submitted(call: ast.Call) -> Optional[ast.expr]:
    """The callable of ``<pool>.submit(callable, ...)``, if this is one."""
    fn = call.func
    if isinstance(fn, ast.Attribute) and fn.attr == "submit" and call.args:
        return call.args[0]
    return None


@rule("pool-capture")
def check(mod: ModuleInfo) -> Iterator[Finding]:
    for scope in mod.functions():
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            target = _submitted(node)
            if target is None:
                continue
            resolved = _resolve(mod, scope, target)
            if resolved is None:
                continue
            name, fn = resolved
            yield from _check_callable(mod, name, fn)


def _resolve(mod: ModuleInfo, scope: ast.FunctionDef, target: ast.expr):
    if isinstance(target, ast.Lambda):
        return "<lambda>", target
    if isinstance(target, ast.Name):
        for node in ast.walk(scope):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == target.id
            ):
                return node.name, node
        for fn in mod.functions():
            if fn.name == target.id:
                return fn.name, fn
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        for cls in mod.classes():
            methods = {
                s.name: s
                for s in cls.body
                if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if scope.name in methods and target.attr in methods:
                return target.attr, methods[target.attr]
    return None


def _check_callable(mod: ModuleInfo, name: str, fn: _Callable) -> Iterator[Finding]:
    locals_ = _local_names(fn)
    body: List[ast.stmt]
    if isinstance(fn, ast.Lambda):
        body = [ast.Expr(value=fn.body)]
    else:
        body = fn.body
    yield from _scan(mod, name, body, locals_, locked=False)


def _scan(
    mod: ModuleInfo, name: str, body: List[ast.stmt], locals_: Set[str], locked: bool
) -> Iterator[Finding]:
    for stmt in body:
        yield from _scan_node(mod, name, stmt, locals_, locked)


def _scan_node(
    mod: ModuleInfo, name: str, node: ast.AST, locals_: Set[str], locked: bool
) -> Iterator[Finding]:
    if isinstance(node, (ast.With, ast.AsyncWith)):
        inner = locked or any(_is_lockish(item.context_expr) for item in node.items)
        for item in node.items:
            yield from _scan_node(mod, name, item.context_expr, locals_, locked)
        yield from _scan(mod, name, node.body, locals_, inner)
        return
    if not locked:
        yield from _mutation_findings(mod, name, node, locals_)
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Attribute) and fn.attr == "span":
            if not any(kw.arg == "parent" for kw in node.keywords):
                yield mod.finding(
                    "pool-capture",
                    node.lineno,
                    f"{name}() runs on a pool thread but opens a span without "
                    "an explicit parent= (the thread-local parent stack does "
                    "not cross the pool boundary)",
                )
    for child in ast.iter_child_nodes(node):
        yield from _scan_node(mod, name, child, locals_, locked)


def _shared_base(node: ast.expr, locals_: Set[str]) -> Optional[str]:
    """Shared-state label when *node* is captured or ``self`` state."""
    if isinstance(node, ast.Name) and node.id not in locals_ and node.id != "self":
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def _mutation_findings(
    mod: ModuleInfo, name: str, node: ast.AST, locals_: Set[str]
) -> Iterator[Finding]:
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = [t for t in node.targets if isinstance(t, ast.Subscript)]
    elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Subscript):
        targets = [node.target]
    for target in targets:
        shared = _shared_base(target.value, locals_)
        if shared is not None:
            yield mod.finding(
                "pool-capture",
                node.lineno,
                f"{name}() runs on a pool thread and writes {shared}[...] "
                "without holding a lock",
            )
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Attribute) and fn.attr in _MUTATORS:
            shared = _shared_base(fn.value, locals_)
            if shared is not None:
                yield mod.finding(
                    "pool-capture",
                    node.lineno,
                    f"{name}() runs on a pool thread and mutates {shared} "
                    f"via .{fn.attr}() without holding a lock",
                )
