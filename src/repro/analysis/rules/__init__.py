"""Rule modules — each submodule registers itself via ``@rule(name)``."""
