"""hot-path: warm-path functions must stay allocation- and syscall-lean.

Functions marked ``# lint: hot-path`` on their ``def`` line are the ones
profiling has shown dominate serving latency (``Histogram.observe``, the
``DatasetBitmap`` word ops, ``eval_leaf_batch_bits``, the result-cache and
plan-cache hit paths).  This rule flags the regressions that have actually
cost QPS here before (PR 6 rewrote ``Histogram.observe`` off numpy for
exactly these reasons):

- building a list/set/dict (display or comprehension) inside a loop;
- acquiring a lock inside a loop (one acquisition per call is fine);
- any logging call;
- per-item numpy scalar extraction in a loop (``float(x[i])``,
  ``arr[i].item()``) — vectorise instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleInfo
from repro.analysis.findings import Finding
from repro.analysis.registry import rule

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_DISPLAYS = (ast.List, ast.Set, ast.Dict)
_LOG_METHODS = {"debug", "info", "warning", "error", "exception", "critical", "log"}


def _is_lockish(expr: ast.expr) -> bool:
    name = None
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    return name is not None and "lock" in name.lower()


def _is_log_call(call: ast.Call) -> bool:
    fn = call.func
    if not (isinstance(fn, ast.Attribute) and fn.attr in _LOG_METHODS):
        return False
    owner = fn.value
    owner_name = None
    if isinstance(owner, ast.Name):
        owner_name = owner.id
    elif isinstance(owner, ast.Attribute):
        owner_name = owner.attr
    return owner_name is not None and "log" in owner_name.lower()


def _has_subscript(node: ast.AST) -> bool:
    return any(isinstance(n, ast.Subscript) for n in ast.walk(node))


@rule("hot-path")
def check(mod: ModuleInfo) -> Iterator[Finding]:
    for fn in mod.hot_functions():
        yield from _scan(mod, fn.name, fn.body, in_loop=False)


def _scan(mod: ModuleInfo, fn_name: str, body, in_loop: bool) -> Iterator[Finding]:
    for stmt in body:
        yield from _scan_node(mod, fn_name, stmt, in_loop)


def _scan_node(
    mod: ModuleInfo, fn_name: str, node: ast.AST, in_loop: bool
) -> Iterator[Finding]:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return  # nested defs are their own (cold) call sites
    if isinstance(node, _LOOPS):
        for child in ast.iter_child_nodes(node):
            yield from _scan_node(mod, fn_name, child, in_loop=True)
        return
    if in_loop and isinstance(node, _DISPLAYS + _COMPS):
        kind = type(node).__name__.lower().replace("comp", " comprehension")
        yield mod.finding(
            "hot-path",
            node.lineno,
            f"{fn_name}() allocates a {kind} inside a loop on the hot path",
        )
        # still recurse: a comprehension may hide more violations
    if isinstance(node, (ast.With, ast.AsyncWith)) and in_loop:
        if any(_is_lockish(item.context_expr) for item in node.items):
            yield mod.finding(
                "hot-path",
                node.lineno,
                f"{fn_name}() acquires a lock inside a loop on the hot path "
                "(hoist the acquisition out of the loop)",
            )
    if isinstance(node, ast.Call):
        if _is_log_call(node):
            yield mod.finding(
                "hot-path",
                node.lineno,
                f"{fn_name}() logs on the hot path",
            )
        if in_loop:
            fn = node.func
            if (
                isinstance(fn, ast.Name)
                and fn.id in ("float", "int")
                and node.args
                and _has_subscript(node.args[0])
            ):
                yield mod.finding(
                    "hot-path",
                    node.lineno,
                    f"{fn_name}() extracts a scalar per item "
                    f"({fn.id}(...[...])) inside a loop — vectorise instead",
                )
            if isinstance(fn, ast.Attribute) and fn.attr == "item":
                yield mod.finding(
                    "hot-path",
                    node.lineno,
                    f"{fn_name}() calls .item() inside a loop — vectorise instead",
                )
    comp_loop = in_loop or isinstance(node, _COMPS)
    for child in ast.iter_child_nodes(node):
        yield from _scan_node(mod, fn_name, child, in_loop=comp_loop)
