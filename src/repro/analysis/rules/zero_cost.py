"""zero-cost-when-disabled: tracer touchpoints need a None pointer check.

The observability convention (PR 6) is that every traced function takes
``tracer=None`` and the disabled path must cost one pointer comparison —
no span objects, no attribute chases.  This rule finds attribute access on
a ``tracer`` parameter (``tracer.span(...)``, ``tracer.emit(...)``) that
is not dominated by a ``tracer is not None`` check.

Recognised guard shapes (all used in this repo):

- ``if tracer is not None: ...`` (body is guarded);
- ``if tracer is None: return ...`` (everything after is guarded — the
  early-return shape in ``eval_leaf_batch_bits`` / ``plan_batch``);
- ``x = tracer.span(...) if tracer is not None else nullcontext()``;
- ``tracer is not None and tracer.span(...)`` short-circuits.

Passing the bare name through (``f(tracer=tracer)``) is free and allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.context import ModuleInfo
from repro.analysis.findings import Finding
from repro.analysis.registry import rule

_PARAM = "tracer"


def _tracer_params(fn: ast.FunctionDef) -> bool:
    """True when *fn* takes a ``tracer`` argument defaulting to None."""
    args = fn.args
    all_args = list(args.posonlyargs) + list(args.args)
    defaults = list(args.defaults)
    # align defaults to the tail of positional args
    offset = len(all_args) - len(defaults)
    for i, a in enumerate(all_args):
        if a.arg == _PARAM:
            if i >= offset:
                d = defaults[i - offset]
                return isinstance(d, ast.Constant) and d.value is None
            return False
    for a, d in zip(args.kwonlyargs, args.kw_defaults):
        if a.arg == _PARAM:
            return isinstance(d, ast.Constant) and d.value is None
    return False


def _is_none_check(test: ast.expr, *, positive: bool) -> bool:
    """``tracer is not None`` (positive) or ``tracer is None`` (negative)."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return False
    left, op, right = test.left, test.ops[0], test.comparators[0]
    if not (isinstance(left, ast.Name) and left.id == _PARAM):
        return False
    if not (isinstance(right, ast.Constant) and right.value is None):
        return False
    return isinstance(op, ast.IsNot if positive else ast.Is)


def _terminates(body: List[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


@rule("zero-cost")
def check(mod: ModuleInfo) -> Iterator[Finding]:
    for fn in mod.functions():
        if not _tracer_params(fn):
            continue
        yield from _scan_body(mod, fn.name, fn.body, guarded=False)


def _scan_body(
    mod: ModuleInfo, fn_name: str, body: List[ast.stmt], guarded: bool
) -> Iterator[Finding]:
    rest_guarded = guarded
    for stmt in body:
        if isinstance(stmt, ast.If):
            if _is_none_check(stmt.test, positive=True):
                yield from _scan_body(mod, fn_name, stmt.body, guarded=True)
                yield from _scan_body(mod, fn_name, stmt.orelse, rest_guarded)
                continue
            if _is_none_check(stmt.test, positive=False):
                yield from _scan_body(mod, fn_name, stmt.body, rest_guarded)
                yield from _scan_body(mod, fn_name, stmt.orelse, guarded=True)
                if _terminates(stmt.body):
                    rest_guarded = True
                continue
        yield from _scan_stmt(mod, fn_name, stmt, rest_guarded)


def _scan_stmt(
    mod: ModuleInfo, fn_name: str, stmt: ast.stmt, guarded: bool
) -> Iterator[Finding]:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return  # nested def re-binds or shadows; checked on its own merits
    for field_name, value in ast.iter_fields(stmt):
        del field_name
        if isinstance(value, list):
            for item in value:
                if isinstance(item, ast.stmt):
                    yield from _scan_stmt(mod, fn_name, item, guarded)
                elif isinstance(item, ast.AST):
                    yield from _scan_expr(mod, fn_name, item, guarded)
        elif isinstance(value, ast.stmt):
            yield from _scan_stmt(mod, fn_name, value, guarded)
        elif isinstance(value, ast.AST):
            yield from _scan_expr(mod, fn_name, value, guarded)


def _scan_expr(
    mod: ModuleInfo, fn_name: str, node: ast.AST, guarded: bool
) -> Iterator[Finding]:
    if isinstance(node, ast.IfExp):
        if _is_none_check(node.test, positive=True):
            yield from _scan_expr(mod, fn_name, node.body, guarded=True)
            yield from _scan_expr(mod, fn_name, node.orelse, guarded)
            return
        if _is_none_check(node.test, positive=False):
            yield from _scan_expr(mod, fn_name, node.body, guarded)
            yield from _scan_expr(mod, fn_name, node.orelse, guarded=True)
            return
    if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
        inner = guarded
        for value in node.values:
            yield from _scan_expr(mod, fn_name, value, inner)
            if _is_none_check(value, positive=True):
                inner = True
        return
    if (
        not guarded
        and isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == _PARAM
    ):
        yield mod.finding(
            "zero-cost",
            node.lineno,
            f"{fn_name}() touches tracer.{node.attr} without a "
            "`tracer is not None` guard — the disabled path must cost one "
            "pointer check",
        )
    for child in ast.iter_child_nodes(node):
        yield from _scan_expr(mod, fn_name, child, guarded)
