"""snapshot-schema: engine persistence only via the versioned container.

PR 8 made the on-disk snapshot a compatibility surface: one magic-tagged,
versioned container (:mod:`repro.service.snapshot`) whose reader validates
magic, version, header shape and segment bounds before touching a byte.
Any state that bypasses the container — a bare ``pickle`` blob, an
``np.save``\\ d array next to the file — silently escapes that
versioning: the next format bump would load it wrong instead of refusing
loudly, and ``pickle.load`` on a served file is an arbitrary-code-execution
surface besides.

This rule runs on snapshot-layer modules (path ending
``service/snapshot.py``, or any module under ``service/`` importing it)
and flags inside them:

- importing an unversioned serializer: ``pickle``, ``cPickle``, ``dill``,
  ``shelve``, ``marshal``;
- calling ``np.save``/``np.savez``/``np.savez_compressed``/``np.load``
  or ``<arr>.dump``/``tofile`` — raw array files have neither magic nor
  version and bypass the container's segment table.

Mirrors ``wire-schema``: the wire format and the disk format are the two
schema boundaries other processes (and future versions) depend on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleInfo
from repro.analysis.findings import Finding
from repro.analysis.registry import rule

_BANNED_MODULES = {"pickle", "cPickle", "dill", "shelve", "marshal"}
_BANNED_NP_CALLS = {"save", "savez", "savez_compressed", "load", "fromregex"}
_BANNED_METHODS = {"dump", "dumps", "tofile"}


def _is_snapshot_module(mod: ModuleInfo) -> bool:
    path = mod.path.replace("\\", "/")
    if path.endswith("service/snapshot.py"):
        return True
    if "/service/" not in path:
        return False
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module and node.module.endswith("service.snapshot"):
                return True
            if node.module and node.module.endswith("repro.service"):
                if any(alias.name == "snapshot" for alias in node.names):
                    return True
        elif isinstance(node, ast.Import):
            if any(a.name.endswith("service.snapshot") for a in node.names):
                return True
    return False


def _numpy_aliases(tree: ast.AST) -> set[str]:
    names = {"numpy"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    names.add(alias.asname or "numpy")
    return names


@rule("snapshot-schema")
def check(mod: ModuleInfo) -> Iterator[Finding]:
    if not _is_snapshot_module(mod):
        return
    np_names = _numpy_aliases(mod.tree)
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _BANNED_MODULES:
                    yield mod.finding(
                        "snapshot-schema",
                        node.lineno,
                        f"snapshot layer imports {root!r} — persist only "
                        "through the versioned container "
                        "(repro.service.snapshot save/load)",
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in _BANNED_MODULES:
                yield mod.finding(
                    "snapshot-schema",
                    node.lineno,
                    f"snapshot layer imports from {root!r} — persist only "
                    "through the versioned container "
                    "(repro.service.snapshot save/load)",
                )
        elif isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Attribute):
                owner = fn.value
                if (
                    isinstance(owner, ast.Name)
                    and owner.id in np_names
                    and fn.attr in _BANNED_NP_CALLS
                ):
                    yield mod.finding(
                        "snapshot-schema",
                        node.lineno,
                        f"np.{fn.attr} writes/reads a raw unversioned array "
                        "file — snapshot arrays go through the container's "
                        "segment table",
                    )
                elif fn.attr in _BANNED_METHODS and isinstance(
                    owner, ast.Name
                ) and owner.id in _BANNED_MODULES:
                    yield mod.finding(
                        "snapshot-schema",
                        node.lineno,
                        f"{owner.id}.{fn.attr} bypasses the versioned "
                        "container — use repro.service.snapshot save/load",
                    )
