"""wire-schema: HTTP handlers ship timing only as start-relative seconds.

PR 6 fixed the serving wire format: ``perf_counter`` stamps are
process-local, so handlers must never emit them raw.  Timing goes on the
wire as offsets from the query/batch start (``emit_times``) or as spans
(``duration_s``) — both computed by subtracting the start stamp on the
same clock.

This rule runs on HTTP-server modules (any module defining a
``BaseHTTPRequestHandler`` subclass) and flags:

- a wire key named ``start_time``/``end_time`` at all — absolute stamps
  have no meaning off-process;
- a timing key (``emit_times``, ``duration_s``, ``*_s`` holding a
  ``.emit_times``/``.end_time``/``.start_time`` attribute) whose value
  contains no subtraction — i.e. raw stamps about to be serialised.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.context import ModuleInfo
from repro.analysis.findings import Finding
from repro.analysis.registry import rule

_ABSOLUTE_KEYS = {"start_time", "end_time"}
_TIMING_KEYS = {"emit_times", "duration_s"}
_STAMP_ATTRS = {"emit_times", "start_time", "end_time"}


def _is_handler_module(mod: ModuleInfo) -> bool:
    for cls in mod.classes():
        for base in cls.bases:
            base_name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else None
            )
            if base_name == "BaseHTTPRequestHandler":
                return True
    return False


def _contains_sub(expr: ast.expr) -> bool:
    return any(
        isinstance(n, ast.BinOp) and isinstance(n.op, ast.Sub)
        for n in ast.walk(expr)
    )


def _raw_stamp(expr: ast.expr) -> Optional[str]:
    """The first raw stamp attribute in *expr*, when nothing subtracts."""
    if _contains_sub(expr):
        return None
    for n in ast.walk(expr):
        if isinstance(n, ast.Attribute) and n.attr in _STAMP_ATTRS:
            return n.attr
    return None


def _wire_items(tree: ast.AST) -> Iterator[Tuple[str, ast.expr, int]]:
    """(key, value, line) for dict-literal entries and ``d[key] = value``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    yield key.value, value, value.lineno
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    yield target.slice.value, node.value, node.lineno


@rule("wire-schema")
def check(mod: ModuleInfo) -> Iterator[Finding]:
    if not _is_handler_module(mod):
        return
    for key, value, line in _wire_items(mod.tree):
        if key in _ABSOLUTE_KEYS:
            yield mod.finding(
                "wire-schema",
                line,
                f"wire field {key!r} is an absolute clock stamp — the schema "
                "allows only start-relative seconds (emit_times, duration_s)",
            )
            continue
        if key in _TIMING_KEYS or key.endswith("_s"):
            raw = _raw_stamp(value)
            if raw is not None:
                yield mod.finding(
                    "wire-schema",
                    line,
                    f"wire field {key!r} carries raw .{raw} stamps — subtract "
                    "the batch/query start so the wire sees relative seconds",
                )
