"""backend-protocol: registered backends must implement the full contract.

PR 3's equivalence suite catches protocol drift only at runtime and only
for the behaviours it exercises.  This rule checks statically, from the
registry module itself (the module defining ``RangeSearchBackend`` and
``build_backend``), that every registered engine class:

- defines every protocol method with a signature the protocol's callers
  can use (same leading parameter names; extra parameters need defaults);
- exposes ``n_active`` and ``supports_insert`` as properties;
- is *honest* about ``supports_insert``: an engine listed in
  ``DYNAMIC_ENGINES`` must not hard-code ``return False`` (and vice
  versa — a static engine hard-coding ``True`` advertises mutation it
  cannot deliver).

Engine classes are resolved first in the registry module itself (fixture
style), then from the sibling file named by the registry's local
``from repro.index.<mod> import <Class>`` imports.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.context import ModuleInfo
from repro.analysis.findings import Finding
from repro.analysis.registry import rule

_PROTOCOL = "RangeSearchBackend"
_REGISTRY_FN = "build_backend"


def _arg_names(fn: ast.FunctionDef) -> Tuple[List[str], int]:
    """(names after self, number of trailing names that have defaults)."""
    names = [a.arg for a in list(fn.args.posonlyargs) + list(fn.args.args)]
    if names and names[0] == "self":
        names = names[1:]
    return names, len(fn.args.defaults)


def _is_property(fn: ast.FunctionDef) -> bool:
    return any(
        isinstance(d, ast.Name) and d.id == "property" for d in fn.decorator_list
    )


def _class_methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _const_bool_return(fn: ast.FunctionDef) -> Optional[bool]:
    """The constant a property trivially returns, if its body is that."""
    stmts = [s for s in fn.body if not _is_docstring(s)]
    if len(stmts) == 1 and isinstance(stmts[0], ast.Return):
        value = stmts[0].value
        if isinstance(value, ast.Constant) and isinstance(value.value, bool):
            return value.value
    return None


def _is_docstring(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )


def _registered_engines(fn: ast.FunctionDef) -> Dict[str, Tuple[str, Optional[str]]]:
    """engine name -> (class name, source module) from ``build_backend``."""
    out: Dict[str, Tuple[str, Optional[str]]] = {}
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "engine"
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.comparators[0], ast.Constant)
        ):
            continue
        engine = test.comparators[0].value
        module = None
        cls_name = None
        for stmt in node.body:
            if isinstance(stmt, ast.ImportFrom):
                module = stmt.module
            if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Call):
                callee = stmt.value.func
                if isinstance(callee, ast.Name):
                    cls_name = callee.id
        if isinstance(engine, str) and cls_name:
            out[engine] = (cls_name, module)
    return out


def _dynamic_engines(mod: ModuleInfo) -> set:
    for node in mod.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "DYNAMIC_ENGINES":
                    if isinstance(node.value, (ast.Tuple, ast.List)):
                        return {
                            el.value
                            for el in node.value.elts
                            if isinstance(el, ast.Constant)
                        }
    return set()


def _resolve_class(
    mod: ModuleInfo, cls_name: str, module: Optional[str]
) -> Tuple[Optional[ast.ClassDef], str]:
    """Find the engine ClassDef: same module first, then sibling file."""
    for cls in mod.classes():
        if cls.name == cls_name:
            return cls, mod.path
    if module:
        sibling = os.path.join(
            os.path.dirname(os.path.abspath(mod.path)), module.rsplit(".", 1)[-1] + ".py"
        )
        try:
            with open(sibling, "r", encoding="utf-8") as fh:
                tree = ast.parse(fh.read(), filename=sibling)
        except (OSError, SyntaxError):
            return None, sibling
        rel = os.path.join(os.path.dirname(mod.path), os.path.basename(sibling))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == cls_name:
                return node, rel
    return None, mod.path


@rule("backend-protocol")
def check(mod: ModuleInfo) -> Iterator[Finding]:
    protocol = None
    registry = None
    for cls in mod.classes():
        if cls.name == _PROTOCOL:
            protocol = cls
    for fn in mod.functions():
        if fn.name == _REGISTRY_FN:
            registry = fn
    if protocol is None or registry is None:
        return

    proto_methods = _class_methods(protocol)
    proto_props = {n for n, f in proto_methods.items() if _is_property(f)}
    dynamic = _dynamic_engines(mod)

    for engine, (cls_name, module) in sorted(_registered_engines(registry).items()):
        cls, path = _resolve_class(mod, cls_name, module)
        if cls is None:
            yield mod.finding(
                "backend-protocol",
                registry.lineno,
                f"engine {engine!r}: cannot resolve class {cls_name} "
                f"(looked in this module and {path})",
            )
            continue
        impl = _class_methods(cls)
        for name, proto_fn in sorted(proto_methods.items()):
            if name not in impl:
                yield Finding(
                    file=path,
                    line=cls.lineno,
                    rule="backend-protocol",
                    severity="error",
                    message=(
                        f"{cls_name} (engine {engine!r}) is missing "
                        f"RangeSearchBackend.{name}"
                    ),
                )
                continue
            impl_fn = impl[name]
            if name in proto_props:
                if not _is_property(impl_fn):
                    yield Finding(
                        file=path,
                        line=impl_fn.lineno,
                        rule="backend-protocol",
                        severity="error",
                        message=(
                            f"{cls_name}.{name} must be a @property "
                            "(the protocol declares it as one)"
                        ),
                    )
                continue
            proto_args, _ = _arg_names(proto_fn)
            impl_args, n_defaults = _arg_names(impl_fn)
            required = impl_args[: len(impl_args) - n_defaults]
            compatible = (
                impl_args[: len(proto_args)] == proto_args
                and len(required) <= len(proto_args)
            )
            if not compatible:
                yield Finding(
                    file=path,
                    line=impl_fn.lineno,
                    rule="backend-protocol",
                    severity="error",
                    message=(
                        f"{cls_name}.{name}({', '.join(impl_args)}) is not "
                        f"call-compatible with RangeSearchBackend.{name}"
                        f"({', '.join(proto_args)})"
                    ),
                )
        si = impl.get("supports_insert")
        if si is not None and _is_property(si):
            advertised = _const_bool_return(si)
            if advertised is not None and dynamic:
                if advertised and engine not in dynamic:
                    yield Finding(
                        file=path,
                        line=si.lineno,
                        rule="backend-protocol",
                        severity="error",
                        message=(
                            f"{cls_name}.supports_insert returns True but "
                            f"{engine!r} is not in DYNAMIC_ENGINES"
                        ),
                    )
                if not advertised and engine in dynamic:
                    yield Finding(
                        file=path,
                        line=si.lineno,
                        rule="backend-protocol",
                        severity="error",
                        message=(
                            f"{cls_name}.supports_insert returns False but "
                            f"{engine!r} is listed in DYNAMIC_ENGINES"
                        ),
                    )
