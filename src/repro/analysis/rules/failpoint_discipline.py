"""failpoint-discipline: fault-injection touchpoints must be zero-cost.

The fault-injection convention (:mod:`repro.service.faults`) mirrors the
tracer's zero-cost-when-disabled discipline: every compiled-in failpoint
reads the module attribute once and compares a pointer before doing
anything else ::

    if faults.ARMED is not None:
        faults.hit("shard_eval")

This rule enforces two invariants:

- every ``faults.hit(...)`` call is dominated by a positive
  ``faults.ARMED is not None`` guard (the early-return shape
  ``if faults.ARMED is None: return`` also counts), so the disarmed
  path never pays a function call or a dict lookup;
- no failpoint touchpoint (any ``faults.*`` access) appears inside a
  function marked ``# lint: hot-path`` — the per-leaf loops must not
  grow even the pointer check; failpoints belong at coarse boundaries
  (per-shard, per-request, per-snapshot-load).

:mod:`repro.service.faults` itself is exempt — it *is* the machinery.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.context import ModuleInfo
from repro.analysis.findings import Finding
from repro.analysis.registry import rule

_MOD = "faults"
_EXEMPT_SUFFIX = ("service/faults.py", "service\\faults.py")


def _is_faults_attr(node: ast.AST, attr: str) -> bool:
    """``faults.<attr>`` as an attribute access on the bare module name."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == _MOD
    )


def _is_armed_check(test: ast.expr, *, positive: bool) -> bool:
    """``faults.ARMED is not None`` (positive) or ``... is None``."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return False
    left, op, right = test.left, test.ops[0], test.comparators[0]
    if not _is_faults_attr(left, "ARMED"):
        return False
    if not (isinstance(right, ast.Constant) and right.value is None):
        return False
    return isinstance(op, ast.IsNot if positive else ast.Is)


def _terminates(body: List[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


@rule("failpoint-discipline")
def check(mod: ModuleInfo) -> Iterator[Finding]:
    if mod.path.endswith(_EXEMPT_SUFFIX):
        return
    hot_names = {fn.name for fn in mod.hot_functions()}
    for fn in mod.functions():
        if fn.name in hot_names:
            # Hot path: ANY faults touchpoint is too much, guarded or not.
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == _MOD
                ):
                    yield mod.finding(
                        "failpoint-discipline",
                        node.lineno,
                        f"{fn.name}() is a hot-path function but touches "
                        f"faults.{node.attr} — failpoints belong at coarse "
                        "boundaries, not per-leaf loops",
                    )
            continue
        yield from _scan_body(mod, fn.name, fn.body, guarded=False)


def _scan_body(
    mod: ModuleInfo, fn_name: str, body: List[ast.stmt], guarded: bool
) -> Iterator[Finding]:
    rest_guarded = guarded
    for stmt in body:
        if isinstance(stmt, ast.If):
            if _is_armed_check(stmt.test, positive=True):
                yield from _scan_body(mod, fn_name, stmt.body, guarded=True)
                yield from _scan_body(mod, fn_name, stmt.orelse, rest_guarded)
                continue
            if _is_armed_check(stmt.test, positive=False):
                yield from _scan_body(mod, fn_name, stmt.body, rest_guarded)
                yield from _scan_body(mod, fn_name, stmt.orelse, guarded=True)
                if _terminates(stmt.body):
                    rest_guarded = True
                continue
        yield from _scan_stmt(mod, fn_name, stmt, rest_guarded)


def _scan_stmt(
    mod: ModuleInfo, fn_name: str, stmt: ast.stmt, guarded: bool
) -> Iterator[Finding]:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return  # nested defs are scanned as functions in their own right
    for field_name, value in ast.iter_fields(stmt):
        del field_name
        if isinstance(value, list):
            # Statement lists (try/with/for/while bodies) go back through
            # _scan_body so a guard nested inside them still dominates.
            if value and all(isinstance(item, ast.stmt) for item in value):
                yield from _scan_body(mod, fn_name, value, guarded)
                continue
            for item in value:
                if isinstance(item, ast.ExceptHandler):
                    yield from _scan_body(mod, fn_name, item.body, guarded)
                elif isinstance(item, ast.AST):
                    yield from _scan_expr(mod, fn_name, item, guarded)
        elif isinstance(value, ast.stmt):
            yield from _scan_stmt(mod, fn_name, value, guarded)
        elif isinstance(value, ast.AST):
            yield from _scan_expr(mod, fn_name, value, guarded)


def _scan_expr(
    mod: ModuleInfo, fn_name: str, node: ast.AST, guarded: bool
) -> Iterator[Finding]:
    if (
        not guarded
        and isinstance(node, ast.Call)
        and _is_faults_attr(node.func, "hit")
    ):
        yield mod.finding(
            "failpoint-discipline",
            node.lineno,
            f"{fn_name}() calls faults.hit() without a "
            "`faults.ARMED is not None` guard — the disarmed path must "
            "cost one pointer check",
        )
    for child in ast.iter_child_nodes(node):
        yield from _scan_expr(mod, fn_name, child, guarded)
