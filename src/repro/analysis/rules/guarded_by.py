"""guarded-by: lock-protected attributes touched outside their lock.

An attribute whose initialising assignment carries ``# guarded-by: <lock>``
may only be read or written inside ``with self.<lock>:`` in that class.
This is the PR-2 bug class (telemetry counters read without the telemetry
lock, tearing ratios like qps) made mechanically checkable.

Exemptions, matching the repo's conventions:

- ``__init__`` (object not yet published to other threads);
- methods whose name ends in ``_locked`` (caller holds the lock — e.g.
  ``ServiceTelemetry._throughput_qps_locked``);
- for declarations qualified ``[writes]``, plain reads are allowed (the
  publish-then-read-lock-free pattern: ``QueryService.executor``).

Accesses inside a function nested in a method are checked with no locks
held: the nested function may run on another thread (pool submission),
so the enclosing ``with`` cannot be assumed.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List

from repro.analysis.context import GuardDecl, ModuleInfo, with_locks
from repro.analysis.findings import Finding
from repro.analysis.registry import rule

_NO_LOCKS: FrozenSet[str] = frozenset()


def _exempt(name: str) -> bool:
    return name == "__init__" or name.endswith("_locked")


@rule("guarded-by")
def check(mod: ModuleInfo) -> Iterator[Finding]:
    for cls in mod.classes():
        guarded = mod.guarded_attrs(cls)
        if not guarded:
            continue
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _exempt(stmt.name):
                    continue
                yield from _scan(mod, cls.name, stmt.name, stmt.body, guarded, _NO_LOCKS)


def _scan(
    mod: ModuleInfo,
    cls_name: str,
    fn_name: str,
    body: List[ast.stmt],
    guarded: dict,
    held: FrozenSet[str],
) -> Iterator[Finding]:
    for stmt in body:
        yield from _scan_stmt(mod, cls_name, fn_name, stmt, guarded, held)


def _scan_stmt(
    mod: ModuleInfo,
    cls_name: str,
    fn_name: str,
    stmt: ast.stmt,
    guarded: dict,
    held: FrozenSet[str],
) -> Iterator[Finding]:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # Nested function: may execute on another thread, so locks held at
        # the definition site do not protect its body.
        if _exempt(stmt.name):
            return
        yield from _scan(mod, cls_name, stmt.name, stmt.body, guarded, _NO_LOCKS)
        return
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        acquired = with_locks(stmt)
        for item in stmt.items:
            yield from _scan_expr(mod, cls_name, fn_name, item.context_expr, guarded, held)
            if item.optional_vars is not None:
                yield from _scan_expr(
                    mod, cls_name, fn_name, item.optional_vars, guarded, held
                )
        inner = held | frozenset(acquired)
        yield from _scan(mod, cls_name, fn_name, stmt.body, guarded, inner)
        return
    for field_name, value in ast.iter_fields(stmt):
        del field_name
        if isinstance(value, list):
            for item in value:
                if isinstance(item, ast.stmt):
                    yield from _scan_stmt(mod, cls_name, fn_name, item, guarded, held)
                elif isinstance(item, ast.AST):
                    yield from _scan_expr(mod, cls_name, fn_name, item, guarded, held)
        elif isinstance(value, ast.AST):
            if isinstance(value, ast.stmt):
                yield from _scan_stmt(mod, cls_name, fn_name, value, guarded, held)
            else:
                yield from _scan_expr(mod, cls_name, fn_name, value, guarded, held)


def _scan_expr(
    mod: ModuleInfo,
    cls_name: str,
    fn_name: str,
    node: ast.AST,
    guarded: dict,
    held: FrozenSet[str],
) -> Iterator[Finding]:
    if isinstance(node, ast.Lambda):
        # Like nested defs: a lambda may run on another thread.
        yield from _scan_expr(mod, cls_name, fn_name, node.body, guarded, _NO_LOCKS)
        return
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in guarded
    ):
        decl: GuardDecl = guarded[node.attr]
        is_read = isinstance(node.ctx, ast.Load)
        ok = decl.lock in held or (decl.writes_only and is_read)
        if not ok:
            action = "read" if is_read else "written"
            yield mod.finding(
                "guarded-by",
                node.lineno,
                f"{cls_name}.{node.attr} is {action} in {fn_name}() outside "
                f"`with self.{decl.lock}`",
            )
    for child in ast.iter_child_nodes(node):
        yield from _scan_expr(mod, cls_name, fn_name, child, guarded, held)
