"""Rule plugin registry.

A rule is a callable ``(ModuleInfo) -> Iterable[Finding]`` registered with
the :func:`rule` decorator.  Rules live as submodules of
``repro.analysis.rules``; :func:`all_rules` imports every submodule so
dropping a new file into that package is all it takes to add a rule.
"""

from __future__ import annotations

import importlib
import pkgutil
from typing import Callable, Dict, Iterable, Optional

from repro.analysis.context import ModuleInfo
from repro.analysis.findings import Finding

RuleFn = Callable[[ModuleInfo], Iterable[Finding]]

_RULES: Dict[str, RuleFn] = {}
_LOADED = False


def rule(name: str) -> Callable[[RuleFn], RuleFn]:
    """Register *fn* as the implementation of rule *name*."""

    def decorate(fn: RuleFn) -> RuleFn:
        if name in _RULES and _RULES[name] is not fn:
            raise ValueError(f"duplicate rule name: {name!r}")
        _RULES[name] = fn
        return fn

    return decorate


def _load() -> None:
    global _LOADED
    if _LOADED:
        return
    import repro.analysis.rules as rules_pkg

    for mod in pkgutil.iter_modules(rules_pkg.__path__):
        importlib.import_module(f"{rules_pkg.__name__}.{mod.name}")
    _LOADED = True


def all_rules(names: Optional[Iterable[str]] = None) -> Dict[str, RuleFn]:
    """All registered rules, or the named subset (unknown names raise)."""
    _load()
    if names is None:
        return dict(sorted(_RULES.items()))
    out = {}
    for name in names:
        if name not in _RULES:
            known = ", ".join(sorted(_RULES))
            raise KeyError(f"unknown rule {name!r} (known: {known})")
        out[name] = _RULES[name]
    return out
