"""`repro lint` — AST-based invariant checks for this repository.

Three classes of bugs have shipped here and been fixed by hand: unguarded
reads of lock-protected telemetry counters (PR 2), allocation on the warm
path inside ``Histogram.observe`` (PR 6), and backend drift from the
``RangeSearchBackend`` protocol (PR 3 catches it only at runtime).  This
package checks those invariants mechanically, with stdlib ``ast`` only.

Usage::

    repro lint [paths...]
    python -m repro.analysis [paths...]

Programmatic::

    from repro.analysis import lint_paths, lint_source
    findings = lint_paths(["src/repro"])

Annotations understood in checked source:

``# guarded-by: <lock>``
    On a ``self.attr = ...`` line: the attribute may only be accessed
    inside ``with self.<lock>:`` in that class (``__init__`` and
    ``*_locked`` methods are exempt).  Add ``[writes]`` to guard writes
    only (for publish-then-read-lock-free attributes).
``# lint: hot-path``
    On a ``def`` line: the function is warm-path critical; no container
    allocation or lock acquisition inside loops, no logging, no per-item
    numpy scalar extraction in loops.
``# lint: ignore[rule]``
    Suppress findings for ``rule`` on this line (``# lint: ignore``
    suppresses every rule).
"""

from repro.analysis.findings import Finding
from repro.analysis.registry import all_rules, rule
from repro.analysis.runner import (
    lint_paths,
    lint_source,
    main,
    render_json,
    render_text,
)

__all__ = [
    "Finding",
    "all_rules",
    "rule",
    "lint_paths",
    "lint_source",
    "main",
    "render_json",
    "render_text",
]
