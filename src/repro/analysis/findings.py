"""Finding: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """A single lint result.

    Ordered by (file, line, rule) so reports are deterministic regardless
    of rule execution order.
    """

    file: str
    line: int
    rule: str
    severity: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.severity}[{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
