"""Lint driver: file discovery, rule execution, reporting, baselines.

Entry points:

- :func:`lint_paths` / :func:`lint_source` — programmatic API;
- :func:`main` — the ``repro lint`` / ``python -m repro.analysis`` CLI.

Exit codes: 0 clean, 1 findings, 2 usage error.  A file that fails to
parse produces a ``parse-error`` finding instead of crashing the run, so
one broken file cannot mask findings elsewhere.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterable, List, Optional, Sequence

from repro.analysis.context import ModuleInfo
from repro.analysis.findings import Finding
from repro.analysis.registry import all_rules

DEFAULT_PATHS = ("src",)


def discover(paths: Sequence[str]) -> List[str]:
    """Python files under *paths* (files kept as-is, dirs walked)."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.append(os.path.join(dirpath, name))
    return out


def lint_source(
    source: str, path: str = "<string>", rules: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint one in-memory module (the fixture-test entry point)."""
    active = all_rules(rules)
    try:
        mod = ModuleInfo.parse(source, path)
    except SyntaxError as exc:
        return [
            Finding(
                file=path,
                line=exc.lineno or 1,
                rule="parse-error",
                severity="error",
                message=f"cannot parse: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for fn in active.values():
        for finding in fn(mod):
            if not mod.suppressed(finding):
                findings.append(finding)
    return sorted(set(findings))


def lint_paths(
    paths: Sequence[str], rules: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under *paths*."""
    findings: List[Finding] = []
    for file in discover(paths):
        try:
            with open(file, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            findings.append(
                Finding(
                    file=file,
                    line=1,
                    rule="parse-error",
                    severity="error",
                    message=f"cannot read: {exc}",
                )
            )
            continue
        findings.extend(lint_source(source, path=file, rules=rules))
    return sorted(set(findings))


# -- reporters ----------------------------------------------------------


def render_text(findings: Sequence[Finding]) -> str:
    lines = [f.render() for f in findings]
    n = len(findings)
    lines.append(f"{n} finding{'s' if n != 1 else ''}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps([f.to_json() for f in findings], indent=2)


# -- baseline -----------------------------------------------------------


def _baseline_key(finding: Finding) -> tuple:
    # Line numbers drift as files are edited; match on the stable parts.
    return (finding.file, finding.rule, finding.message)


def load_baseline(path: str) -> set:
    with open(path, "r", encoding="utf-8") as fh:
        entries = json.load(fh)
    return {(e["file"], e["rule"], e["message"]) for e in entries}


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    entries = [
        {"file": f.file, "rule": f.rule, "message": f.message} for f in findings
    ]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entries, fh, indent=2)
        fh.write("\n")


def apply_baseline(findings: Sequence[Finding], baseline: set) -> List[Finding]:
    return [f for f in findings if _baseline_key(f) not in baseline]


# -- CLI ----------------------------------------------------------------


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checks (lock discipline, hot-path "
        "purity, backend-protocol conformance, ...)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule subset (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write current findings to FILE and exit 0",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.list_rules:
        for name, fn in all_rules().items():
            doc = fn.__doc__ or sys.modules[fn.__module__].__doc__ or ""
            summary = doc.strip().splitlines()[0] if doc.strip() else ""
            print(f"{name}: {summary}")
        return 0
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        findings = lint_paths(args.paths, rules=rules)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(f"wrote {len(findings)} baseline entries to {args.write_baseline}")
        return 0
    if args.baseline:
        try:
            findings = apply_baseline(findings, load_baseline(args.baseline))
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: bad baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0
