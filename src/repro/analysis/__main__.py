"""``python -m repro.analysis`` — same entry point as ``repro lint``."""

import sys

from repro.analysis.runner import main

if __name__ == "__main__":
    sys.exit(main())
