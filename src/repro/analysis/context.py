"""Parsed-module context shared by every rule.

A :class:`ModuleInfo` bundles the AST with the comment-borne annotations
that the AST itself cannot see (``ast`` drops comments): suppressions,
``# guarded-by`` declarations, and ``# lint: hot-path`` markers.  Comments
are recovered with :mod:`tokenize` so they are attached to exact lines.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([^\]]*)\])?")
_GUARD_RE = re.compile(
    r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)(\s*\[\s*writes\s*\])?"
)
_HOT_RE = re.compile(r"#\s*lint:\s*hot-path")


@dataclass(frozen=True)
class GuardDecl:
    """One ``# guarded-by: <lock>`` comment."""

    lock: str
    writes_only: bool


@dataclass
class ModuleInfo:
    """One source file, parsed once and handed to every rule."""

    path: str
    source: str
    tree: ast.Module
    # line -> rules suppressed on that line ("*" suppresses all)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    # line -> guard declaration found in a trailing comment on that line
    guard_decls: Dict[int, GuardDecl] = field(default_factory=dict)
    # lines bearing "# lint: hot-path"
    hot_lines: Set[int] = field(default_factory=set)

    @classmethod
    def parse(cls, source: str, path: str) -> "ModuleInfo":
        tree = ast.parse(source, filename=path)
        info = cls(path=path, source=source, tree=tree)
        info._scan_comments()
        return info

    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                line = tok.start[0]
                text = tok.string
                m = _IGNORE_RE.search(text)
                if m:
                    rules = m.group(1)
                    names = (
                        {r.strip() for r in rules.split(",") if r.strip()}
                        if rules
                        else {"*"}
                    )
                    self.suppressions.setdefault(line, set()).update(names)
                m = _GUARD_RE.search(text)
                if m:
                    self.guard_decls[line] = GuardDecl(
                        lock=m.group(1), writes_only=bool(m.group(2))
                    )
                if _HOT_RE.search(text):
                    self.hot_lines.add(line)
        except tokenize.TokenError:
            # A file that tokenizes badly still parsed above; run rules
            # without comment annotations rather than crashing the linter.
            pass

    def finding(
        self, rule: str, line: int, message: str, severity: str = "error"
    ) -> Finding:
        return Finding(
            file=self.path, line=line, rule=rule, severity=severity, message=message
        )

    def suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if not rules:
            return False
        return "*" in rules or finding.rule in rules

    # -- AST helpers shared by rules ------------------------------------

    def classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node

    def functions(self) -> Iterator[ast.FunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def hot_functions(self) -> Iterator[ast.FunctionDef]:
        """Functions marked ``# lint: hot-path`` on their signature lines."""
        for fn in self.functions():
            sig_end = max(fn.lineno, fn.body[0].lineno - 1) if fn.body else fn.lineno
            if any(line in self.hot_lines for line in range(fn.lineno, sig_end + 1)):
                yield fn

    def guarded_attrs(self, cls: ast.ClassDef) -> Dict[str, GuardDecl]:
        """``self.X`` attributes declared ``# guarded-by`` inside *cls*.

        The declaration comment must sit on the line of an assignment
        whose target is ``self.X`` (normally in ``__init__``).
        """
        out: Dict[str, GuardDecl] = {}
        for node in ast.walk(cls):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                decl = self._decl_on(node)
                if decl is None:
                    continue
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    out[target.attr] = decl
        return out

    def _decl_on(self, node: ast.stmt) -> Optional[GuardDecl]:
        end = getattr(node, "end_lineno", node.lineno) or node.lineno
        for line in range(node.lineno, end + 1):
            decl = self.guard_decls.get(line)
            if decl is not None:
                return decl
        return None


def self_attr(node: ast.AST, *, attr: Optional[str] = None) -> Optional[str]:
    """Return ``X`` when *node* is ``self.X`` (optionally requiring X)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        if attr is None or node.attr == attr:
            return node.attr
    return None


def with_locks(stmt: ast.stmt) -> Tuple[str, ...]:
    """Lock attributes acquired by a ``with self.<lock>:`` statement."""
    if not isinstance(stmt, (ast.With, ast.AsyncWith)):
        return ()
    names = []
    for item in stmt.items:
        name = self_attr(item.context_expr)
        if name is not None:
            names.append(name)
    return tuple(names)
