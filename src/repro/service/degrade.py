"""Synopsis-screened degraded answers (must / maybe bounds).

When a query's deadline fires before the executor finished — or the
caller explicitly asks for a cheap answer — the service does not return
a 500: it answers from the per-dataset synopses that are *already in the
tree* (every :class:`~repro.service.sharding.ShardedBatchExecutor` keeps
one synopsis per dataset; they are what the shard engines were built
from).  The degraded answer is the three-valued shape the ROADMAP's
tiered planner calls for: a **must** bitmap of datasets certain to be in
the engine's answer and a **maybe** bitmap of datasets that might be,
with everything outside both certain to be absent.

Soundness (why ``must ⊆ engine ⊆ must ∪ maybe``)
------------------------------------------------
Screening evaluates each leaf's measure directly on each dataset's
synopsis and compares against the leaf's interval ``theta``:

- **Percentile leaf** (``M_R``, engine recall is exact and precision
  slack is ``eps_effective + 2·delta`` per dataset): the synopsis mass
  ``m`` brackets the true mass in ``[m-d, m+d]`` with
  ``d = delta_ptile``.  If that whole bracket lies inside ``theta`` the
  true mass does too, and exact recall puts the dataset in the engine's
  answer — *must*.  Conversely the engine only reports datasets whose
  true mass lies in ``theta`` widened by ``eps_effective + 2d``; if the
  bracket misses even the widened interval the engine cannot report it —
  *can't*.  Everything between is *maybe*.
- **Preference leaf** (``M_{v,k}``, threshold ``tau``; the Pref
  structure compares net-direction synopsis scores shifted by ``d =
  delta_pref`` against ``tau - eps``): synopsis score ``s`` at the query
  vector with ``s - d >= tau`` forces the net-direction shifted score
  over the engine's threshold (directions differ by at most ``eps`` and
  the paper's unit-ball datasets make scores 1-Lipschitz in the
  direction) — *must*.  The engine cannot report a dataset with
  ``s + d < tau - (2·eps + 2d)`` — *can't*.

Monotonicity of And/Or then lifts per-leaf bounds to whole expressions
(:func:`combine_bounds`, the same algebra as the planner's
:func:`~repro.service.planner.partial_bounds`): intersecting/unioning
lower bounds stays a lower bound, ditto upper.  A synopsis that cannot
evaluate a measure class (:class:`~repro.errors.CapabilityError`) is
conservatively *maybe*.

With exact synopses (``delta = 0``) the must set is exactly the
ground-truth answer and the maybe band covers precisely the engine's
precision slack, which is what the resilience tests assert.

Screens are **never cached**: bounds depend on the live synopsis list
(which grows under ingestion) and are only computed on the degraded
path, where an O(N) synopsis sweep per screened leaf is the price of
answering at all.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.bitset import DatasetBitmap
from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.core.predicates import And, Expression, Or, Predicate
from repro.errors import CapabilityError, QueryError
from repro.geometry.interval import Interval
from repro.service.planner import LeafKey, _combine_and, _combine_or, leaf_key

if TYPE_CHECKING:
    from repro.service.sharding import ShardedBatchExecutor
    from repro.synopsis.base import Synopsis

#: A leaf's screened bounds: (must bitmap, possible bitmap); must ⊆ possible.
LeafBounds = Tuple[DatasetBitmap, DatasetBitmap]


def classify_ptile(
    syn: "Synopsis",
    measure: PercentileMeasure,
    theta: Interval,
    eps_effective: Optional[float],
) -> str:
    """``"must"`` / ``"maybe"`` / ``"cant"`` for one percentile leaf.

    ``eps_effective`` is the precision slack of the engine that would
    answer exactly; pass ``None`` when it is unknown (a federated
    coordinator screening a remote node's synopses without its accuracy
    contract) — the *must* verdict is slack-free, but nothing can then be
    ruled out, so the unknown-slack screen never answers ``"cant"``.
    """
    try:
        m = float(syn.mass(measure.rect))
    except CapabilityError:
        return "maybe"
    d = syn.delta_ptile or 0.0
    if (m - d) in theta and (m + d) in theta:
        return "must"
    if eps_effective is None:
        return "maybe"
    wide = theta.expand(eps_effective + 2.0 * d)
    if (m + d) < wide.lo or (m - d) > wide.hi:
        return "cant"
    return "maybe"


def classify_pref(
    syn: "Synopsis",
    measure: PreferenceMeasure,
    theta: Interval,
    eps: Optional[float],
) -> str:
    """``"must"`` / ``"maybe"`` / ``"cant"`` for one preference leaf.

    Same contract as :func:`classify_ptile`: ``eps`` is the direction-net
    resolution of the answering engine, ``None`` disables the ``"cant"``
    verdict (the *must* side needs only the synopsis's own ``delta_pref``).
    """
    try:
        s = float(syn.score(measure.vector, measure.k))
    except CapabilityError:
        return "maybe"
    d = syn.delta_pref or 0.0
    tau = theta.lo
    if s - d >= tau and not (theta.lo_open and s - d == tau):
        return "must"
    if eps is None:
        return "maybe"
    if s + d < tau - (2.0 * eps + 2.0 * d):
        return "cant"
    return "maybe"


def screen_synopses(
    synopses: Sequence["Synopsis"],
    leaf: Predicate,
    *,
    eps: Optional[float] = None,
    eps_effective: Optional[float] = None,
    removed: AbstractSet[int] = frozenset(),
    n_datasets: Optional[int] = None,
) -> LeafBounds:
    """``(must, possible)`` bounds for ``leaf`` over a plain synopsis list.

    The executor-free core of :meth:`SynopsisScreen.screen_leaf`, shared
    with the federation coordinator (which screens a *node's* registered
    synopses when that node cannot answer).  ``eps`` / ``eps_effective``
    are the answering engine's slack parameters; either may be ``None``
    when unknown, degrading that side of the screen to all-``maybe``
    (sound, just looser).  ``n_datasets`` sizes the bitmaps (default: the
    synopsis count).
    """
    measure = leaf.measure
    theta = leaf.theta
    if isinstance(measure, PreferenceMeasure):
        if not theta.is_threshold:
            raise QueryError(
                "preference predicates support one-sided theta = [a, inf)"
            )
    elif not isinstance(measure, PercentileMeasure):
        raise QueryError(f"unsupported measure {type(measure).__name__}")
    must_ids: list[int] = []
    possible_ids: list[int] = []
    for i, syn in enumerate(synopses):
        if i in removed:
            continue
        if isinstance(measure, PercentileMeasure):
            verdict = classify_ptile(syn, measure, theta, eps_effective)
        else:
            verdict = classify_pref(syn, measure, theta, eps)
        if verdict == "must":
            must_ids.append(i)
            possible_ids.append(i)
        elif verdict == "maybe":
            possible_ids.append(i)
    n = len(synopses) if n_datasets is None else n_datasets
    return (
        DatasetBitmap.from_indices(must_ids, n),
        DatasetBitmap.from_indices(possible_ids, n),
    )


class SynopsisScreen:
    """Screen predicate leaves against an executor's synopses.

    Stateless apart from the executor reference: every call reads the
    executor's *current* synopsis list and tombstone mask, so bounds stay
    correct across live ingestion and removals.
    """

    def __init__(self, executor: "ShardedBatchExecutor") -> None:
        self._executor = executor

    def screen_leaf(self, leaf: Predicate) -> LeafBounds:
        """``(must, possible)`` bitmaps over the executor's universe.

        ``must`` holds datasets certain to appear in the engine's answer
        for this leaf; ``possible`` additionally holds every dataset the
        engine *could* report (``possible ⊇ must``); the complement of
        ``possible`` is certain to be absent.  Tombstoned datasets are
        excluded from both (the executor masks them out of real answers).
        """
        ex = self._executor
        return screen_synopses(
            ex.synopses,
            leaf,
            eps=ex.eps,
            eps_effective=ex.eps_effective,
            removed=ex.removed,
            n_datasets=ex.n_datasets,
        )

    def screen_leaves(
        self, leaves: Mapping[LeafKey, Predicate]
    ) -> dict[LeafKey, LeafBounds]:
        """Screen a keyed leaf collection (the planner's ``plan.leaves``)."""
        return {key: self.screen_leaf(leaf) for key, leaf in leaves.items()}


def combine_bounds(
    expression: Expression, bounds: Mapping[LeafKey, LeafBounds]
) -> LeafBounds:
    """Lift per-leaf (must, possible) bounds to a whole expression.

    And/Or are monotone, so intersecting/unioning the children's lower
    bounds yields a sound lower bound for the node (ditto upper) — the
    same argument as the planner's
    :func:`~repro.service.planner.partial_bounds`, but with *both* sides
    approximate instead of unknown-vs-exact.  Exact leaves participate as
    ``(answer, answer)`` pairs, so mixed exact/screened expressions tighten
    wherever exact answers exist.
    """
    if isinstance(expression, Predicate):
        return bounds[leaf_key(expression)]
    if isinstance(expression, (And, Or)):
        lowers, uppers = [], []
        for child in expression.children:
            lo, hi = combine_bounds(child, bounds)
            lowers.append(lo)
            uppers.append(hi)
        if isinstance(expression, And):
            return _combine_and(lowers), _combine_and(uppers)
        return _combine_or(lowers), _combine_or(uppers)
    raise QueryError(f"unsupported expression node {type(expression).__name__}")
