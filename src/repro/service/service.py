"""The ``QueryService`` facade: planner + cache + sharded executor.

Serving pipeline for a batch (``search`` is the one-element special case):

1. **plan** — canonicalize every expression and collect the batch-wide set
   of unique predicate leaves (duplicate leaves inside one expression and
   across the batch are planned once);
2. **cache** — look every unique leaf up in the LRU leaf-result cache;
3. **execute** — evaluate the misses on the sharded executor (shard-parallel
   union of per-shard answers) and write them back to the cache;
4. **assemble** — evaluate each canonical expression over the in-memory
   leaf results (pure set algebra, no index access) and stamp telemetry.

With ``record_times=True`` the per-leaf completion times flow through the
planner's :func:`~repro.service.planner.emit_schedule`, so
``QueryResult.emit_times`` reflects when each index's membership actually
became determined — not one blanket end-of-query stamp.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.core.framework import Repository
from repro.core.predicates import Expression
from repro.core.results import QueryResult
from repro.errors import QueryError
from repro.geometry.rectangle import Rectangle
from repro.service.cache import LeafResultCache
from repro.service.planner import emit_schedule, evaluate_with_leaf_results, plan_batch
from repro.service.sharding import ShardedBatchExecutor
from repro.service.telemetry import QueryRecord, ServiceTelemetry
from repro.synopsis.base import Synopsis


class QueryService:
    """High-throughput facade over the dataset search engine.

    Parameters mirror :class:`~repro.core.engine.DatasetSearchEngine` plus
    the serving knobs; see
    :class:`~repro.service.sharding.ShardedBatchExecutor` for the accuracy
    parameters (they are resolved once against the global dataset count and
    forced onto every shard, so answers match a single engine exactly).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.framework import Repository
    >>> from repro.core.measures import PercentileMeasure
    >>> from repro.core.predicates import pred
    >>> from repro.geometry.rectangle import Rectangle
    >>> rng = np.random.default_rng(0)
    >>> repo = Repository.from_arrays([rng.uniform(0, 1, (300, 1)) for _ in range(8)])
    >>> svc = QueryService(repository=repo, n_shards=2, eps=0.2, sample_size=16)
    >>> expr = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.2)
    >>> svc.search(expr).indexes == sorted(svc.search(expr).indexes)
    True
    >>> svc.stats()["cache"]["hits"] >= 1   # second search hit the cache
    True
    """

    def __init__(
        self,
        repository: Optional[Repository] = None,
        synopses: Optional[Sequence[Synopsis]] = None,
        n_shards: int = 1,
        cache_capacity: int = 4096,
        eps: float = 0.1,
        phi: Optional[float] = None,
        delta: Optional[float] = None,
        sample_size: Optional[int] = None,
        bounding_box: Optional[Rectangle] = None,
        seed: int = 0,
        deterministic: bool = True,
        max_workers: Optional[int] = None,
        telemetry_window: int = 4096,
    ) -> None:
        self._executor_kwargs = dict(
            eps=eps,
            phi=phi,
            delta=delta,
            sample_size=sample_size,
            bounding_box=bounding_box,
            seed=seed,
            deterministic=deterministic,
            max_workers=max_workers,
        )
        self.executor = ShardedBatchExecutor(
            synopses=synopses,
            repository=repository,
            n_shards=n_shards,
            **self._executor_kwargs,
        )
        self.cache = LeafResultCache(capacity=cache_capacity)
        self.telemetry = ServiceTelemetry(window=telemetry_window)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_datasets(self) -> int:
        return self.executor.n_datasets

    @property
    def n_shards(self) -> int:
        return self.executor.n_shards

    @property
    def repository(self) -> Optional[Repository]:
        return self.executor.repository

    def stats(self) -> dict:
        """JSON-ready service metrics: telemetry, cache, shard layout."""
        return {
            "n_datasets": self.n_datasets,
            "n_shards": self.n_shards,
            "shard_sizes": self.executor.shard_sizes(),
            "executor": dict(self.executor.stats),
            "cache": self.cache.snapshot(),
            "telemetry": self.telemetry.summary(),
        }

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def search(self, expression: Expression, record_times: bool = False) -> QueryResult:
        """Answer one expression through the full serving pipeline."""
        return self.search_batch([expression], record_times=record_times)[0]

    def search_batch(
        self, expressions: Sequence[Expression], record_times: bool = False
    ) -> list[QueryResult]:
        """Answer a batch of expressions with cross-query leaf sharing."""
        start = time.perf_counter()
        generation = self.cache.generation  # for flush-safe write-back
        batch = plan_batch(expressions)

        leaf_results: dict = {}
        leaf_times: dict = {}
        hit_keys: set = set()
        misses: list = []
        for key, leaf in batch.unique_leaves.items():
            cached = self.cache.get(key)
            if cached is None:
                misses.append((key, leaf))
            else:
                leaf_results[key] = cached
                hit_keys.add(key)
        lookup_done = time.perf_counter()
        for key in hit_keys:
            leaf_times[key] = lookup_done

        if misses:
            evaluated = self.executor.eval_leaves([leaf for _, leaf in misses])
            for (key, _leaf), (indexes, done) in zip(misses, evaluated):
                leaf_results[key] = indexes
                leaf_times[key] = done
                self.cache.put(key, indexes, generation=generation)
        shared_done = time.perf_counter()
        shared_s = shared_done - start  # plan + cache + leaf evaluation

        if record_times:
            universe = frozenset(range(self.n_datasets))
            completion_order = sorted(leaf_times, key=lambda k: leaf_times[k])
        results: list[QueryResult] = []
        for plan in batch.plans:
            assembly_start = time.perf_counter()
            result = QueryResult()
            if record_times:
                result.start_time = start
                schedule = emit_schedule(
                    plan.expression,
                    [k for k in completion_order if k in plan.leaves],
                    leaf_results,
                    leaf_times,
                    universe,
                )
                result.indexes = [idx for idx, _t in schedule]
                result.emit_times = [t for _idx, t in schedule]
                result.end_time = time.perf_counter()
            else:
                result.indexes = sorted(
                    evaluate_with_leaf_results(plan.expression, leaf_results)
                )
            assembled = time.perf_counter()
            hits = sum(1 for k in plan.leaves if k in hit_keys)
            result.stats.update(
                {
                    "cache_hits": hits,
                    "cache_misses": plan.n_leaves_unique - hits,
                    "n_leaves_raw": plan.n_leaves_raw,
                    "n_leaves_unique": plan.n_leaves_unique,
                    "n_shards": self.n_shards,
                }
            )
            self.telemetry.record_query(
                QueryRecord(
                    # The planning/cache/eval phase is shared by the whole
                    # batch; each query is charged that phase plus its own
                    # assembly, not the assembly of the queries before it.
                    latency_s=shared_s + (assembled - assembly_start),
                    n_leaves_raw=plan.n_leaves_raw,
                    n_leaves_unique=plan.n_leaves_unique,
                    cache_hits=hits,
                    cache_misses=plan.n_leaves_unique - hits,
                    out_size=len(result.indexes),
                )
            )
            results.append(result)
        self.telemetry.record_batch(len(expressions), time.perf_counter() - start)
        return results

    def ground_truth(self, expression: Expression) -> set[int]:
        """Exact brute-force answer (requires the raw repository)."""
        if self.repository is None:
            raise QueryError("ground truth requires the raw repository")
        return expression.ground_truth(self.repository)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Eagerly build every shard's Ptile structure."""
        self.executor.warm()

    def invalidate_cache(self) -> None:
        """Drop all cached leaf answers (synopsis set changed)."""
        self.cache.invalidate()

    def rebuild(
        self,
        repository: Optional[Repository] = None,
        synopses: Optional[Sequence[Synopsis]] = None,
        n_shards: Optional[int] = None,
    ) -> None:
        """Swap the underlying data and invalidate every cached answer.

        Passing nothing rebuilds over the current data (e.g. after mutating
        synopses in place); the cache is always flushed, because cached
        answers are only valid for the synopsis set they were computed on.
        """
        if repository is None and synopses is None:
            # Keep BOTH current inputs: the synopses may be user-supplied
            # (histograms, samples, ...) rather than derived exact ones, and
            # dropping them would silently change answer semantics.  The
            # executor skips re-wrapping already-seeded synopses.
            repository = self.executor.repository
            synopses = self.executor.synopses
        if n_shards is None:
            n_shards = self.n_shards
        old = self.executor
        self.executor = ShardedBatchExecutor(
            synopses=synopses,
            repository=repository,
            n_shards=n_shards,
            **self._executor_kwargs,
        )
        old.close()
        self.invalidate_cache()

    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
