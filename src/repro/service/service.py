"""The ``QueryService`` facade: planner + caches + sharded executor.

Serving pipeline for a batch (``search`` is the one-element special case):

1. **plan** — canonicalize every expression and collect the batch-wide set
   of unique predicate leaves (duplicate leaves inside one expression and
   across the batch are planned once); repeated query *shapes* skip
   canonicalization entirely through the compiled-plan cache
   (:class:`~repro.service.planner.PlanCache`);
2. **cache** — look every unique leaf up in the LRU leaf-result cache; an
   entry whose dataset-count watermark trails the current repository is
   *upgraded* (delta-shard evaluation unioned in) rather than discarded;
3. **execute** — evaluate the misses on the sharded executor (shard-parallel
   union of per-shard answers) and write them back to the cache;
4. **assemble** — evaluate each canonical expression over the in-memory
   leaf results and stamp telemetry.

The warm-path answer representation is the packed
:class:`~repro.core.bitset.DatasetBitmap` (``algebra="bitset"``, the
default): cached leaf answers are ``uint64`` word arrays, And/Or combine
word-wise, tombstones apply as one ANDNOT mask, and results hand the
bitmap to the API boundary, which materializes index lists only when a
consumer actually reads them (the HTTP bitset wire format never does).
``algebra="set"`` restores the frozenset representation end to end —
identical answers, measurably slower and ~64x larger at scale — and
exists as the hot-path benchmark's baseline.

With ``record_times=True`` the per-leaf completion times flow through the
planner's :func:`~repro.service.planner.emit_schedule`, so
``QueryResult.emit_times`` reflects when each index's membership actually
became determined — not one blanket end-of-query stamp.

Live mutation (:meth:`QueryService.add_datasets` /
:meth:`QueryService.remove_datasets`) keeps the cache warm: additions land
in the executor's append-only delta shard and removals become a read-time
mask, so a single ingest event no longer costs a full rebuild plus a cold
cache.  The full rebuild path remains for rebalancing (delta shard
outgrowing the mean base shard) and for data outside the frozen bounding
box.
"""

from __future__ import annotations

import os
import threading
import time
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from repro.core.bitset import DatasetBitmap
from repro.core.framework import Dataset, Repository
from repro.core.predicates import Expression
from repro.core.results import QueryResult
from repro.errors import ConstructionError, DeadlineExceeded, QueryError
from repro.geometry.rectangle import Rectangle
from repro.service.cache import LeafResultCache
from repro.service.deadline import Deadline
from repro.service.degrade import SynopsisScreen, combine_bounds
from repro.service.observability import ServiceObservability
from repro.service.planner import (
    PlanCache,
    emit_schedule,
    evaluate_with_leaf_results,
    plan_batch,
)
from repro.service.sharding import ShardedBatchExecutor

if TYPE_CHECKING:
    from repro.service.observability import Tracer
from repro.service.telemetry import QueryRecord, ServiceTelemetry
from repro.synopsis.base import Synopsis
from repro.synopsis.exact import ExactSynopsis

#: Accepted dataset collections for :meth:`QueryService.add_datasets`.
DatasetsLike = Union[Repository, Sequence[Dataset], Sequence[np.ndarray]]


class QueryService:
    """High-throughput facade over the dataset search engine.

    Parameters mirror :class:`~repro.core.engine.DatasetSearchEngine` plus
    the serving knobs; see
    :class:`~repro.service.sharding.ShardedBatchExecutor` for the accuracy
    parameters (they are resolved once against the global dataset count and
    forced onto every shard, so answers match a single engine exactly).
    Warm-path knobs: ``algebra`` selects the answer representation
    (``"bitset"`` packed words, the default; ``"set"`` the frozenset
    baseline — identical answers), ``plan_cache_capacity`` bounds the
    compiled-plan LRU (``0`` disables it), ``cache_capacity`` bounds the
    leaf-result LRU.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.framework import Repository
    >>> from repro.core.measures import PercentileMeasure
    >>> from repro.core.predicates import pred
    >>> from repro.geometry.rectangle import Rectangle
    >>> rng = np.random.default_rng(0)
    >>> repo = Repository.from_arrays([rng.uniform(0, 1, (300, 1)) for _ in range(8)])
    >>> svc = QueryService(repository=repo, n_shards=2, eps=0.2, sample_size=16)
    >>> expr = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.2)
    >>> svc.search(expr).indexes == sorted(svc.search(expr).indexes)
    True
    >>> svc.stats()["cache"]["hits"] >= 1   # second search hit the cache
    True

    Live mutation keeps the leaf cache warm (additions are upgraded in from
    the delta shard, removals are masked on read):

    >>> out = svc.add_datasets([rng.uniform(0, 1, (300, 1)) for _ in range(2)])
    >>> out["indexes"], out["rebuilt"]
    ([8, 9], False)
    >>> svc.search(expr).indexes == sorted(svc.search(expr).indexes)
    True
    >>> svc.remove_datasets([0])["n_live"]
    9
    >>> 0 in svc.search(expr).indexes
    False
    """

    def __init__(
        self,
        repository: Optional[Repository] = None,
        synopses: Optional[Sequence[Synopsis]] = None,
        n_shards: int = 1,
        cache_capacity: int = 4096,
        eps: float = 0.1,
        phi: Optional[float] = None,
        delta: Optional[float] = None,
        sample_size: Optional[int] = None,
        bounding_box: Optional[Rectangle] = None,
        seed: int = 0,
        deterministic: bool = True,
        engine: str = "kd",
        max_workers: Optional[int] = None,
        telemetry_window: int = 4096,
        capacity: Optional[int] = None,
        batch_leaves: bool = True,
        algebra: str = "bitset",
        plan_cache_capacity: int = 1024,
        tracing: bool = False,
        slow_query_threshold_ms: Optional[float] = None,
        slow_log_size: int = 32,
    ) -> None:
        if algebra not in ("bitset", "set"):
            raise ConstructionError(
                f"algebra must be 'bitset' or 'set', got {algebra!r}"
            )
        self.algebra = algebra
        self._executor_kwargs = dict(
            eps=eps,
            phi=phi,
            delta=delta,
            sample_size=sample_size,
            bounding_box=bounding_box,
            seed=seed,
            deterministic=deterministic,
            engine=engine,
            max_workers=max_workers,
            capacity=capacity,
            batch_leaves=batch_leaves,
        )
        self.executor = ShardedBatchExecutor(  # guarded-by: _mutation_lock [writes]
            synopses=synopses,
            repository=repository,
            n_shards=n_shards,
            **self._executor_kwargs,
        )
        self.cache = LeafResultCache(capacity=cache_capacity)
        # Compiled plans are pure expression algebra — they reference no
        # index structures and no dataset counts — so the plan cache
        # survives live mutation AND full rebuilds unflushed.
        self.plans = PlanCache(capacity=plan_cache_capacity)
        self.telemetry = ServiceTelemetry(window=telemetry_window)
        # Tracing policy, metrics registry and slow-query log; /stats and
        # /metrics are both rendered from this one object (after the
        # telemetry it adopts histograms from).
        self.observability = ServiceObservability(
            self,
            tracing=tracing,
            slow_query_threshold_ms=slow_query_threshold_ms,
            slow_log_size=slow_log_size,
        )
        # Serializes add/remove/rebuild against each other.  Queries do not
        # take it: they capture the executor reference once per batch and
        # the cache write-back is generation-guarded against rebuilds.
        self._mutation_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_datasets(self) -> int:
        return self.executor.n_datasets

    @property
    def n_shards(self) -> int:
        return self.executor.n_shards

    @property
    def repository(self) -> Optional[Repository]:
        return self.executor.repository

    @property
    def n_live(self) -> int:
        return self.executor.n_live

    @property
    def engine_kind(self) -> str:
        return self.executor.engine_kind

    def stats(self) -> dict:
        """JSON-ready service metrics: telemetry, caches, shard layout.

        Delegates to :meth:`ServiceObservability.snapshot` — the same
        collection pass that backs the Prometheus ``/metrics`` rendering,
        so the two views can never disagree.  ``cache.resident_bytes`` is
        the estimated heap footprint of the cached leaf answers — the
        number to watch for warm-path memory regressions (bitset entries
        are ~64x smaller than set entries).
        """
        return self.observability.snapshot()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def search(
        self,
        expression: Expression,
        record_times: bool = False,
        trace: Optional[bool] = None,
        deadline_ms: Optional[float] = None,
        degrade: bool = False,
    ) -> QueryResult:
        """Answer one expression through the full serving pipeline."""
        return self.search_batch(
            [expression],
            record_times=record_times,
            trace=trace,
            deadline_ms=deadline_ms,
            degrade=degrade,
        )[0]

    def search_batch(
        self,
        expressions: Sequence[Expression],
        record_times: bool = False,
        trace: Optional[bool] = None,
        deadline_ms: Optional[float] = None,
        degrade: bool = False,
    ) -> list[QueryResult]:
        """Answer a batch of expressions with cross-query leaf sharing.

        ``trace=True`` runs the batch under a span tracer and attaches
        the serialized span tree (one per batch; stage times relative to
        the batch start — see :mod:`repro.service.observability`) to each
        result's ``trace``; ``trace=None`` defers to the service-level
        ``tracing`` default.  Tracing also feeds the per-stage histograms
        on ``/metrics``.  When the slow-query log is enabled, queries at
        or above the threshold are recorded (with their trace, if any).

        ``deadline_ms`` caps the batch's wall-clock budget (monotonic
        clock, shared by the whole batch): the budget is threaded to the
        executor and engine checkpoint polls, and when it fires the exact
        leaf answers already computed are kept while the remaining leaves
        fall back to synopsis-screened bounds — every affected query
        comes back *degraded* (``stats["degraded"]``, a must bitmap plus
        ``maybe_bitmap``; see :mod:`repro.service.degrade`) instead of
        failing.  ``degrade=True`` skips executor evaluation outright and
        answers uncached leaves from the screen (cached leaves stay
        exact).  Degraded bounds are never written to the leaf cache, and
        a degraded query's ``record_times`` request is ignored (there is
        no per-leaf emission to schedule).
        """
        expressions = list(expressions)
        start = time.perf_counter()
        deadline = Deadline.from_ms(deadline_ms) if deadline_ms is not None else None
        obs = self.observability
        tracer = obs.tracer_for(trace)
        if tracer is None:
            results = self._search_batch_impl(
                expressions, record_times, None, start,
                deadline=deadline, degrade=degrade,
            )
            trace_dict = None
        else:
            with tracer.span("search_batch", n_queries=len(expressions)) as root:
                # Share the clock origin with the batch's own stamps, so
                # emit times and span times of one request line up.
                root.t0 = start
                results = self._search_batch_impl(
                    expressions, record_times, tracer, start,
                    deadline=deadline, degrade=degrade,
                )
            trace_dict = root.to_dict()
            for result in results:
                result.trace = trace_dict
        if obs.slow_log.enabled:
            for expression, result in zip(expressions, results):
                obs.record_slow(
                    result.stats.get("latency_s", 0.0),
                    repr(expression),
                    result.stats,
                    trace=trace_dict,
                )
        return results

    def _search_batch_impl(
        self,
        expressions: Sequence[Expression],
        record_times: bool,
        tracer: Optional[Tracer],
        start: float,
        deadline: Optional[Deadline] = None,
        degrade: bool = False,
    ) -> list[QueryResult]:
        """The four-stage pipeline (see the module docstring).

        ``tracer`` is None on the untraced hot path — every instrumented
        site collapses to one pointer comparison; likewise ``deadline``,
        whose kwarg is only forwarded to the executor when set (test
        doubles stubbing the executor keep the legacy call shapes).
        """
        # Capture order matters against a concurrent rebuild (which flushes,
        # publishes the new executor, then flushes again): reading the
        # generation BEFORE the executor guarantees that a batch holding the
        # final generation also holds the new executor, so no answer
        # computed on the old one can ever be stored as current.
        generation = self.cache.generation  # for flush-safe write-back
        executor = self.executor  # one executor per batch, even mid-rebuild
        watermark = executor.n_datasets  # dataset count answers will cover
        removed = executor.removed  # tombstones, masked on read
        bitset = self.algebra == "bitset"
        # The persistent ANDNOT mask (None when nothing is tombstoned, the
        # common case — hits then skip masking entirely).
        removed_bits = executor.removed_bits() if bitset else None
        batch = plan_batch(expressions, cache=self.plans, tracer=tracer)
        lookup_start = time.perf_counter() if tracer is not None else 0.0

        leaf_results: dict = {}
        leaf_times: dict = {}
        hit_keys: set = set()
        upgrades: list = []
        misses: list = []
        for key, leaf in batch.unique_leaves.items():
            entry = self.cache.get_entry(key)
            if entry is None:
                misses.append((key, leaf))
            elif entry.watermark >= watermark:
                # Entries are stored masked-at-write; masks only grow
                # between rebuilds, so re-masking on read stays exact.
                if bitset:
                    value = entry.indexes
                    if removed_bits is not None:
                        value = value.andnot(removed_bits)
                    leaf_results[key] = value
                else:
                    leaf_results[key] = entry.indexes - removed
                hit_keys.add(key)
            else:
                upgrades.append((key, leaf, entry))
        lookup_done = time.perf_counter()
        if tracer is not None:
            tracer.record_span(
                "cache_lookup",
                lookup_start,
                lookup_done,
                hits=len(hit_keys),
                misses=len(misses),
                upgrades=len(upgrades),
            )
        for key in hit_keys:
            leaf_times[key] = lookup_done

        # Degradation state: when set, leaves without exact answers are
        # *pending* — they will be answered from synopsis-screened bounds
        # instead of the executor (see repro.service.degrade).
        degrade_reason: Optional[str] = None
        if degrade:
            degrade_reason = "requested"
        elif deadline is not None and deadline.expired():
            degrade_reason = "deadline"
        pending: dict = {}

        upgrade_keys: set = set()
        if upgrades and degrade_reason is None:
            # Warm-cache ingestion: every dataset above the entry watermark
            # lives in the delta shard (rebuilds flush the cache), so the
            # cached answer plus a delta-only evaluation is the full answer
            # (a word-wise OR; the stale bitmap zero-pads to the new count).
            upgrade_span = (
                tracer.span("upgrade", n_leaves=len(upgrades))
                if tracer is not None
                else None
            )
            if upgrade_span is not None:
                upgrade_span.__enter__()
            try:
                upgrade_leaves = [leaf for _key, leaf, _entry in upgrades]
                # The tracer/deadline kwargs are only passed when set: the
                # hot path keeps the exact legacy call shape (and so do
                # test doubles that stub the executor).
                try:
                    if deadline is not None:
                        delta_answers = (
                            executor.eval_delta_leaves(
                                upgrade_leaves, deadline=deadline
                            )
                            if tracer is None
                            else executor.eval_delta_leaves(
                                upgrade_leaves, tracer=tracer, deadline=deadline
                            )
                        )
                    else:
                        delta_answers = (
                            executor.eval_delta_leaves(upgrade_leaves)
                            if tracer is None
                            else executor.eval_delta_leaves(
                                upgrade_leaves, tracer=tracer
                            )
                        )
                except DeadlineExceeded as exc:
                    # Keep the exact prefix the executor completed; the
                    # remaining upgrade leaves degrade to screened bounds.
                    degrade_reason = "deadline"
                    delta_answers = exc.partial
                for (key, _leaf, entry), (delta_bits, done) in zip(
                    upgrades, delta_answers
                ):
                    if bitset:
                        merged = entry.indexes | delta_bits
                        if removed_bits is not None:
                            merged = merged.andnot(removed_bits)
                    else:
                        merged = frozenset(
                            (entry.indexes | delta_bits.to_frozenset()) - removed
                        )
                    leaf_results[key] = merged
                    leaf_times[key] = done
                    upgrade_keys.add(key)
                    self.cache.put(key, merged, generation=generation,
                                   watermark=watermark)
                self.cache.note_upgrades(len(delta_answers))
            finally:
                if upgrade_span is not None:
                    upgrade_span.__exit__(None, None, None)
        if upgrades and degrade_reason is not None:
            for key, leaf, _entry in upgrades:
                if key not in upgrade_keys:
                    pending[key] = leaf
        miss_keys: set = set()
        if misses and degrade_reason is None:
            execute_span = (
                tracer.span("execute", n_leaves=len(misses))
                if tracer is not None
                else None
            )
            if execute_span is not None:
                execute_span.__enter__()
            try:
                miss_leaves = [leaf for _, leaf in misses]
                try:
                    if deadline is not None:
                        evaluated = (
                            executor.eval_leaves(miss_leaves, deadline=deadline)
                            if tracer is None
                            else executor.eval_leaves(
                                miss_leaves, tracer=tracer, deadline=deadline
                            )
                        )
                    else:
                        evaluated = (
                            executor.eval_leaves(miss_leaves)
                            if tracer is None
                            else executor.eval_leaves(miss_leaves, tracer=tracer)
                        )
                except DeadlineExceeded as exc:
                    degrade_reason = "deadline"
                    evaluated = exc.partial
                for (key, _leaf), (answer, done) in zip(misses, evaluated):
                    # The executor masks tombstones before returning.
                    value = answer if bitset else answer.to_frozenset()
                    leaf_results[key] = value
                    leaf_times[key] = done
                    miss_keys.add(key)
                    self.cache.put(key, value, generation=generation,
                                   watermark=watermark)
            finally:
                if execute_span is not None:
                    execute_span.__exit__(None, None, None)
        if misses and degrade_reason is not None:
            for key, leaf in misses:
                if key not in miss_keys:
                    pending[key] = leaf
        if degrade_reason == "deadline":
            self.observability.registry.inc("repro_deadline_expirations_total")

        # Screen every pending leaf once for the whole batch.  Screened
        # bounds are NEVER cached: they are not the engine's answer, and a
        # later exact evaluation must not be shadowed by them.
        screened_bounds: dict = {}
        if pending:
            screen = SynopsisScreen(executor)
            screened_bounds = {
                key: screen.screen_leaf(leaf) for key, leaf in pending.items()
            }
        shared_done = time.perf_counter()
        shared_s = shared_done - start  # plan + cache + leaf evaluation

        # A leaf evaluated once for the batch is *charged* to the first
        # query that uses it; other queries sharing it report it under
        # ``shared_leaves`` instead of inflating the miss counters.
        evaluated_keys = miss_keys | upgrade_keys
        charge_owner: dict = {}
        for qi, plan in enumerate(batch.plans):
            for key in plan.leaves:
                if key in evaluated_keys and key not in charge_owner:
                    charge_owner[key] = qi

        if record_times:
            if bitset:
                universe = DatasetBitmap.full(watermark)
                if removed_bits is not None:
                    universe = universe.andnot(removed_bits)
            else:
                universe = frozenset(range(watermark)) - removed
            completion_order = sorted(leaf_times, key=lambda k: leaf_times[k])
        results: list[QueryResult] = []
        for qi, plan in enumerate(batch.plans):
            assembly_start = time.perf_counter()
            plan_pending = (
                [k for k in plan.leaves if k in screened_bounds]
                if screened_bounds
                else []
            )
            if plan_pending:
                # Degraded assembly: exact leaves contribute (v, v) bounds,
                # screened leaves their (must, possible) pair; And/Or
                # monotonicity lifts them to query-level bounds.  Exact
                # set-algebra answers convert to bitmaps so one algebra
                # serves the combine (answers are identical either way).
                bounds: dict = {}
                for key in plan.leaves:
                    if key in screened_bounds:
                        bounds[key] = screened_bounds[key]
                    else:
                        v = leaf_results[key]
                        if not isinstance(v, DatasetBitmap):
                            v = DatasetBitmap.from_indices(sorted(v), watermark)
                        bounds[key] = (v, v)
                must, possible = combine_bounds(plan.expression, bounds)
                result = QueryResult(
                    bitmap=must, maybe_bitmap=possible.andnot(must)
                )
                result.stats["degraded"] = True
                result.stats["degrade_reason"] = degrade_reason
                result.stats["bounds"] = {
                    "must": must.count(),
                    "maybe": result.maybe_bitmap.count(),
                    "screened_leaves": len(plan_pending),
                    "exact_leaves": len(plan.leaves) - len(plan_pending),
                }
                self.observability.registry.inc("repro_degraded_queries_total")
            elif record_times:
                result = QueryResult()
                result.start_time = start
                schedule = emit_schedule(
                    plan.expression,
                    [k for k in completion_order if k in plan.leaves],
                    leaf_results,
                    leaf_times,
                    universe,
                )
                result.indexes = [idx for idx, _t in schedule]
                result.emit_times = [t for _idx, t in schedule]
                result.end_time = time.perf_counter()
            else:
                answer = evaluate_with_leaf_results(plan.expression, leaf_results)
                if bitset:
                    # Hand the bitmap to the API boundary: index lists
                    # materialize lazily, and only if a consumer reads them.
                    result = QueryResult(bitmap=answer)
                else:
                    result = QueryResult(indexes=sorted(answer))
            assembled = time.perf_counter()
            if tracer is not None:
                tracer.record_span(
                    "assemble",
                    assembly_start,
                    assembled,
                    query=qi,
                    out_size=result.out_size,
                )
            hits = sum(1 for k in plan.leaves if k in hit_keys)
            charged_misses = sum(
                1
                for k in plan.leaves
                if k in miss_keys and charge_owner[k] == qi
            )
            charged_upgrades = sum(
                1
                for k in plan.leaves
                if k in upgrade_keys and charge_owner[k] == qi
            )
            shared = sum(
                1
                for k in plan.leaves
                if k in evaluated_keys and charge_owner[k] != qi
            )
            # The planning/cache/eval phase is shared by the whole batch;
            # each query is charged that phase plus its own assembly, not
            # the assembly of the queries before it.
            latency_s = shared_s + (assembled - assembly_start)
            result.stats.update(
                {
                    "cache_hits": hits,
                    "cache_misses": charged_misses,
                    "cache_upgrades": charged_upgrades,
                    "shared_leaves": shared,
                    "n_leaves_raw": plan.n_leaves_raw,
                    "n_leaves_unique": plan.n_leaves_unique,
                    "n_shards": executor.n_shards,
                    "latency_s": latency_s,
                }
            )
            self.telemetry.record_query(
                QueryRecord(
                    latency_s=latency_s,
                    n_leaves_raw=plan.n_leaves_raw,
                    n_leaves_unique=plan.n_leaves_unique,
                    cache_hits=hits,
                    cache_misses=charged_misses,
                    cache_upgrades=charged_upgrades,
                    shared_leaves=shared,
                    out_size=result.out_size,
                )
            )
            results.append(result)
        self.telemetry.record_batch(len(expressions), time.perf_counter() - start)
        return results

    def ground_truth(self, expression: Expression) -> set[int]:
        """Exact brute-force answer over *live* datasets (needs the raw
        repository; tombstoned datasets are masked out)."""
        if self.repository is None:
            raise QueryError("ground truth requires the raw repository")
        return expression.ground_truth(self.repository) - self.executor.removed

    # ------------------------------------------------------------------
    # Live mutation
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_datasets(datasets: DatasetsLike) -> list[Dataset]:
        """Coerce a Repository / Dataset list / array list into datasets."""
        if isinstance(datasets, Repository):
            return list(datasets.datasets)
        out = []
        for d in datasets:
            out.append(d if isinstance(d, Dataset) else Dataset(np.asarray(d)))
        return out

    def add_datasets(
        self,
        datasets: Optional[DatasetsLike] = None,
        synopses: Optional[Sequence[Synopsis]] = None,
    ) -> dict:
        """Ingest new datasets live; returns a JSON-ready receipt.

        New datasets go into the executor's append-only delta shard, so
        every cached leaf answer stays valid (it is upgraded from the delta
        shard on its next read) and the warm-path advantage survives the
        ingest.  A full rebuild is triggered instead when the new data falls
        outside the frozen bounding box, or — after the delta append — when
        the delta shard outgrows the mean base shard size (rebalance).

        Pass raw ``datasets`` (a :class:`~repro.core.framework.Repository`,
        a sequence of :class:`~repro.core.framework.Dataset`, or raw point
        arrays), explicit ``synopses``, or both (one synopsis per dataset).
        A repository-backed service requires raw datasets so ground truth
        stays available.

        The receipt maps ``indexes`` to the stable global indexes assigned
        to the new datasets, and ``rebuilt`` tells whether the ingest fell
        back to (or triggered) the full rebuild path — which flushes the
        cache, exactly like :meth:`rebuild`.
        """
        if datasets is None and synopses is None:
            raise QueryError("provide datasets and/or synopses to add")
        with self._mutation_lock:
            new_datasets = (
                self._normalize_datasets(datasets) if datasets is not None else None
            )
            if synopses is not None:
                new_synopses = list(synopses)
                if new_datasets is not None and len(new_synopses) != len(
                    new_datasets
                ):
                    raise ConstructionError(
                        "one synopsis per added dataset required"
                    )
            elif new_datasets is not None:
                new_synopses = [ExactSynopsis(d.points) for d in new_datasets]
            if not new_synopses:
                raise QueryError("nothing to add")
            if self.repository is not None and new_datasets is None:
                raise QueryError(
                    "a repository-backed service needs raw datasets (not "
                    "just synopses) so ground truth stays available"
                )

            executor = self.executor
            start_index = executor.n_datasets
            indexes = list(range(start_index, start_index + len(new_synopses)))
            fits = all(
                executor.fits(
                    s,
                    points=(
                        new_datasets[j].points if new_datasets is not None else None
                    ),
                    index=start_index + j,
                )
                for j, s in enumerate(new_synopses)
            )
            if not fits:
                if self._executor_kwargs["bounding_box"] is not None:
                    # The box was pinned explicitly at construction; a
                    # rebuild would keep it and fail at the next Ptile
                    # build, so refuse up front instead.
                    raise ConstructionError(
                        "new datasets fall outside the explicitly pinned "
                        "bounding box; construct a service with a larger box"
                    )
                # Outside the frozen bounding box: grow the data, then take
                # the full rebuild path (the box is re-derived from the
                # grown repository/synopses).
                self._apply_additions(executor, new_datasets)
                all_synopses = list(executor.synopses) + new_synopses
                self._rebuild_locked(
                    repository=executor.repository,
                    synopses=all_synopses,
                    carry_removed=True,  # same identity space, grown
                )
                reason = "bounding_box"
                rebuilt = True
            else:
                executor.add_synopses(new_synopses)
                self._apply_additions(executor, new_datasets)
                rebuilt = executor.needs_rebalance()
                reason = "rebalance" if rebuilt else None
                if rebuilt:
                    # Fold the delta shard into a fresh base partition.
                    self._rebuild_locked()
            return {
                "indexes": indexes,
                "rebuilt": rebuilt,
                "reason": reason,
                "n_datasets": self.executor.n_datasets,
                "n_live": self.executor.n_live,
                "delta_size": self.executor.delta_size,
            }

    @staticmethod
    def _apply_additions(
        executor: ShardedBatchExecutor, new_datasets: Optional[list[Dataset]]
    ) -> None:
        """Extend the executor's raw repository with the new datasets."""
        if new_datasets is not None and executor.repository is not None:
            executor.repository = Repository(
                list(executor.repository.datasets) + new_datasets
            )

    def remove_datasets(self, indexes: Sequence[int]) -> dict:
        """Tombstone datasets by global index; returns a JSON-ready receipt.

        Removal is a mask applied when answers are read — no structure is
        rebuilt and no cached answer is flushed.  Tombstones are compacted
        out of the shard engines at the next :meth:`rebuild`; global indexes
        are stable identities and are never reused.
        """
        with self._mutation_lock:
            removed_now = self.executor.remove_indexes(indexes)
            return {
                "removed": removed_now,
                "n_datasets": self.executor.n_datasets,
                "n_live": self.executor.n_live,
            }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Eagerly build every shard's Ptile structure (delta included)."""
        self.executor.warm()

    def invalidate_cache(self) -> None:
        """Drop all cached leaf answers (synopsis set changed)."""
        self.cache.invalidate()

    def rebuild(
        self,
        repository: Optional[Repository] = None,
        synopses: Optional[Sequence[Synopsis]] = None,
        n_shards: Optional[int] = None,
    ) -> None:
        """Swap the underlying data and invalidate every cached answer.

        Passing nothing rebuilds over the current data (e.g. after mutating
        synopses in place); the cache is always flushed, because cached
        answers are only valid for the synopsis set they were computed on.
        On that no-argument path, delta-shard datasets are folded into the
        new base partition and tombstoned datasets are compacted out of the
        shard engines (their indexes stay reserved; the removal mask
        survives the rebuild).  Passing a repository or synopses swaps in a
        *new* identity space, so the mask is reset — index ``i`` of the new
        data has nothing to do with a previously removed index ``i``.
        """
        with self._mutation_lock:
            self._rebuild_locked(
                repository=repository,
                synopses=synopses,
                n_shards=n_shards,
                carry_removed=repository is None and synopses is None,
            )

    def _rebuild_locked(
        self,
        repository: Optional[Repository] = None,
        synopses: Optional[Sequence[Synopsis]] = None,
        n_shards: Optional[int] = None,
        carry_removed: bool = True,
    ) -> None:
        if repository is None and synopses is None:
            # Keep BOTH current inputs: the synopses may be user-supplied
            # (histograms, samples, ...) rather than derived exact ones, and
            # dropping them would silently change answer semantics.  The
            # executor skips re-wrapping already-seeded synopses.
            repository = self.executor.repository
            synopses = self.executor.synopses
        if n_shards is None:
            n_shards = self.n_shards
        old = self.executor
        new = ShardedBatchExecutor(
            synopses=synopses,
            repository=repository,
            n_shards=n_shards,
            removed=old.removed if carry_removed else None,
            **self._executor_kwargs,
        )
        # Flush on BOTH sides of the publication (see search_batch's capture
        # ordering): the first invalidate dooms every in-flight write-back
        # that predates the swap; the second clears anything a racing batch
        # managed to store between the two while still seeing the old
        # executor.  A batch that captures the final generation necessarily
        # captures the new executor.
        self.invalidate_cache()
        self.executor = new
        self.invalidate_cache()
        old.close()

    def save(self, path: str | os.PathLike[str], generation: int = 0) -> dict:
        """Persist the whole service (engines, caches, plans' capacity) into
        one snapshot container; see :mod:`repro.service.snapshot`."""
        from repro.service import snapshot

        return snapshot.save(self, path, generation=generation)

    @classmethod
    def load(cls, path: str | os.PathLike[str], mmap: bool = True) -> "QueryService":
        """Reconstruct a service saved by :meth:`save` (mmap-backed by
        default); refuses containers holding a different kind."""
        from repro.service import snapshot

        return snapshot.load_expected(path, "query_service", mmap=mmap)

    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
