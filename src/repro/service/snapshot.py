"""Versioned single-file engine snapshots: mmap cold starts.

Every piece of built serving state is already a flat array — mapped-point
matrices (``R^{4d+2}``), ``ColumnarStore`` point/mask/group buffers,
coreset samples, packed ``DatasetBitmap`` words, raw repository datasets —
so a cold start does not have to *rebuild* any of it: this module persists
a whole engine (:class:`~repro.core.engine.DatasetSearchEngine`,
:class:`~repro.service.sharding.ShardedBatchExecutor`, or a full
:class:`~repro.service.service.QueryService`) into one container file and
reconstructs it with ``np.memmap``-backed buffers, skipping the coreset
draws and the maximal-pair rectangle enumeration entirely.

Container format (version 1)
----------------------------
::

    bytes  0-7   magic ``b"REPROSNP"``
    bytes  8-11  container version, uint32 LE
    bytes 12-15  reserved (zero)
    bytes 16-23  JSON header length ``H``, uint64 LE
    bytes 24-31  data-section start offset, uint64 LE (64-byte aligned)
    bytes 32-..  JSON header (utf-8, ``H`` bytes)
    data section: raw little-endian array buffers, each 64-byte aligned

The JSON header carries ``kind`` (which class the state describes),
``generation`` (the serving generation counter the multi-process
supervisor bumps on ingest), ``state`` (nested scalars and segment
references), and ``arrays`` — the segment table mapping each reference to
``{offset, dtype, shape}`` relative to the data section.  Equal array
*objects* are written once (deduplicated by identity), so a repository
dataset shared with its ``ExactSynopsis`` costs one segment.

``load(path, mmap=True)`` maps segments as read-only ``np.memmap`` views:
page-cache pages are shared across every process that maps the same file,
which is what makes the pre-forked multi-worker server
(:mod:`repro.service.supervisor`) memory-flat in the worker count.  The
query path never writes these buffers — mutable state (activation masks,
side buffers, caches past their words) is private per load.  With
``mmap=False`` every segment is read into a private writable array.

**Exact-equality round-trip is the contract**: a loaded engine answers
every query identically to the engine that was saved (pinned by
``tests/service/test_snapshot.py`` across all three backends).  Pref
structures are *not* persisted — they are lazy per-rank-``k`` and
deterministic to rebuild — and a Ptile index whose key space has holes
(datasets deleted via ``delete_synopsis``) is refused rather than
resynthesized wrong.

All errors reading a snapshot back — bad magic, unsupported version,
truncated segments, malformed state — raise
:class:`~repro.errors.SnapshotError`.
"""

from __future__ import annotations

import json
import math
import os
import struct
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional, Union

import numpy as np

from repro.core.bitset import DatasetBitmap
from repro.core.engine import DatasetSearchEngine
from repro.core.framework import Dataset, Repository
from repro.core.ptile_range import PtileRangeIndex
from repro.errors import SnapshotError
from repro.geometry.rectangle import Rectangle
from repro.index.backend import build_backend
from repro.index.columnar import ColumnarStore
from repro.service import faults
from repro.service.cache import CacheEntry, LeafResultCache
from repro.service.observability import ServiceObservability
from repro.service.planner import PlanCache
from repro.service.service import QueryService
from repro.service.sharding import ShardedBatchExecutor
from repro.service.telemetry import ServiceTelemetry
from repro.synopsis.serialize import from_state as synopsis_from_state
from repro.synopsis.serialize import to_state as synopsis_to_state

MAGIC = b"REPROSNP"
VERSION = 1

#: Segment alignment, in bytes: one cache line, and a divisor of the page
#: size, so mapped array starts never straddle element boundaries.
ALIGN = 64

#: Container kinds, by the class they reconstruct.
KINDS = ("query_service", "sharded_executor", "engine")

#: Anything ``open()`` accepts as a file path.
PathLike = Union[str, "os.PathLike[str]"]


def _align(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class _SnapshotWriter:
    """Collects array segments (deduplicated by object identity) + state."""

    def __init__(self) -> None:
        self._arrays: list[tuple[str, np.ndarray]] = []
        self._ref_of_id: dict[int, str] = {}

    def add_array(self, hint: str, arr: np.ndarray) -> str:
        """Register one array segment; returns its reference string.

        The same array *object* registered twice gets one segment (the
        repository's raw points are also every exact synopsis' state).
        """
        ref = self._ref_of_id.get(id(arr))
        if ref is not None:
            return ref
        out = np.ascontiguousarray(arr)
        if out.dtype == object:
            raise SnapshotError(
                f"segment {hint!r} has dtype=object; snapshot segments "
                "must be flat numeric/bool buffers"
            )
        ref = f"{hint}#{len(self._arrays)}"
        self._arrays.append((ref, out))
        self._ref_of_id[id(arr)] = ref
        # Keep the contiguous copy's identity mapped too, so it stays
        # alive (id() keys must not be recycled) and re-adds dedup.
        self._ref_of_id[id(out)] = ref
        return ref

    def write(
        self, path: PathLike, kind: str, state: dict, generation: int
    ) -> dict:
        """Serialize header + segments to ``path`` (atomic replace)."""
        arrays_meta: dict[str, dict] = {}
        rel = 0
        for ref, arr in self._arrays:
            rel = _align(rel)
            arrays_meta[ref] = {
                "offset": rel,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
            }
            rel += arr.nbytes
        header = {
            "format": VERSION,
            "kind": kind,
            "generation": int(generation),
            "state": state,
            "arrays": arrays_meta,
        }
        raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
        data_start = _align(32 + len(raw))
        path = os.fspath(path)
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as f:
            f.write(MAGIC)
            f.write(struct.pack("<II", VERSION, 0))
            f.write(struct.pack("<QQ", len(raw), data_start))
            f.write(raw)
            f.write(b"\x00" * (data_start - 32 - len(raw)))
            pos = 0
            for _ref, arr in self._arrays:
                aligned = _align(pos)
                if aligned > pos:
                    f.write(b"\x00" * (aligned - pos))
                pos = aligned
                f.write(arr.data)
                pos += arr.nbytes
        os.replace(tmp, path)
        return {
            "path": path,
            "kind": kind,
            "generation": int(generation),
            "n_arrays": len(self._arrays),
            "data_bytes": pos,
            "file_bytes": data_start + pos,
        }


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
class _ArrayTable:
    """Lazy ``ref -> ndarray`` resolver over one container's data section.

    ``mmap=True`` maps the whole data section **once** and hands out
    read-only ``np.frombuffer`` views into the single map — one ``mmap``
    syscall and one VMA per load instead of one per segment, which is
    what keeps ``load()`` latency flat in the dataset count.  Pages are
    shared across processes exactly as with per-segment ``np.memmap``.
    ``mmap=False`` reads private writable arrays.  Resolved arrays are
    cached so two references to one segment share one view.
    """

    def __init__(self, path: str, meta: dict, data_start: int, mmap: bool) -> None:
        self._path = path
        self._meta = meta
        self._data_start = data_start
        self._mmap = mmap
        self._cache: dict[str, np.ndarray] = {}
        self._map: Optional[np.ndarray] = None

    def _buffer(self) -> np.ndarray:
        if self._map is None:
            self._map = np.memmap(self._path, dtype=np.uint8, mode="r")
        return self._map

    def __getitem__(self, ref: str) -> np.ndarray:
        got = self._cache.get(ref)
        if got is not None:
            return got
        m = self._meta.get(ref)
        if m is None:
            raise SnapshotError(f"state references unknown segment {ref!r}")
        dtype = np.dtype(m["dtype"])
        shape = tuple(int(s) for s in m["shape"])
        count = math.prod(shape) if shape else 1
        offset = self._data_start + int(m["offset"])
        if count == 0:
            arr: np.ndarray = np.empty(shape, dtype=dtype)
        elif self._mmap:
            arr = np.frombuffer(
                self._buffer(), dtype=dtype, count=count, offset=offset
            ).reshape(shape)
        else:
            with open(self._path, "rb") as f:
                f.seek(offset)
                flat = np.fromfile(f, dtype=dtype, count=count)
            if flat.size != count:
                raise SnapshotError(f"segment {ref!r} is truncated")
            arr = flat.reshape(shape)
        self._cache[ref] = arr
        return arr


def _open_container(path: PathLike, mmap: bool) -> tuple[dict, _ArrayTable]:
    path = os.fspath(path)
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as f:
            pre = f.read(32)
            if len(pre) < 32:
                raise SnapshotError(f"{path}: too short to be a snapshot")
            if pre[:8] != MAGIC:
                raise SnapshotError(f"{path}: bad magic (not a repro snapshot)")
            version, _reserved = struct.unpack_from("<II", pre, 8)
            if version != VERSION:
                raise SnapshotError(
                    f"{path}: unsupported snapshot version {version} "
                    f"(this build reads version {VERSION})"
                )
            hlen, data_start = struct.unpack_from("<QQ", pre, 16)
            raw = f.read(hlen)
        if len(raw) < hlen:
            raise SnapshotError(f"{path}: truncated header")
        try:
            header = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"{path}: corrupt header ({exc})") from exc
    except OSError as exc:
        raise SnapshotError(f"{path}: cannot read snapshot ({exc})") from exc
    arrays = header.get("arrays")
    state = header.get("state")
    if not isinstance(arrays, dict) or not isinstance(state, dict):
        raise SnapshotError(f"{path}: malformed header")
    for ref, m in arrays.items():
        nbytes = (math.prod(m["shape"]) if m["shape"] else 1) * np.dtype(
            m["dtype"]
        ).itemsize
        if data_start + int(m["offset"]) + nbytes > size:
            raise SnapshotError(f"{path}: segment {ref!r} is truncated")
    return header, _ArrayTable(path, arrays, int(data_start), mmap)


# ----------------------------------------------------------------------
# Shared state helpers
# ----------------------------------------------------------------------
def _box_state(box: Optional[Rectangle]) -> Optional[dict]:
    if box is None:
        return None
    return {"lo": [float(x) for x in box.lo], "hi": [float(x) for x in box.hi]}


def _box_from(state: Optional[dict]) -> Optional[Rectangle]:
    if state is None:
        return None
    return Rectangle(state["lo"], state["hi"])


def _rng_state(rng: np.random.Generator) -> dict:
    return rng.bit_generator.state


def _restore_rng(state: dict) -> np.random.Generator:
    try:
        cls = getattr(np.random, state["bit_generator"])
        gen = np.random.Generator(cls())
        gen.bit_generator.state = state
        return gen
    except (KeyError, TypeError, AttributeError, ValueError) as exc:
        raise SnapshotError(f"cannot restore rng state ({exc})") from exc


# ----------------------------------------------------------------------
# Ptile index
# ----------------------------------------------------------------------
def _ptile_state(index: PtileRangeIndex, add_array: Callable) -> dict:
    keys = index.keys
    pts, ids, active = index._tree.export_points()
    ids_arr = np.asarray(ids, dtype=np.int64)
    if ids_arr.ndim != 2 or (ids_arr.size and ids_arr.shape[1] != 2):
        raise SnapshotError("ptile backend ids are not (key, local) pairs")
    return {
        "eps": float(index.eps),
        "eps_effective": float(index.eps_effective),
        "phi_eff": float(index._phi_eff),
        "sample_size": int(index._sample_size),
        "leaf_size": int(index._leaf_size),
        "engine": index.engine_kind,
        "dim": int(index.dim),
        "next_key": int(index._next_key),
        "keys": [int(k) for k in keys],
        "deltas": [float(index._deltas[k]) for k in keys],
        "counts": [len(index._point_ids[k]) for k in keys],
        "coresets": [add_array("coreset", index._coresets[k]) for k in keys],
        "bounding_box": _box_state(index.bounding_box),
        "rng": _rng_state(index._rng),
        "points": add_array("mapped_points", pts),
        "ids": add_array("mapped_ids", ids_arr.reshape(-1, 2)),
        "active": add_array("mapped_active", np.asarray(active, dtype=bool)),
    }


def _ptile_from_state(
    state: dict, arrays: _ArrayTable, synopses: list
) -> PtileRangeIndex:
    keys = [int(k) for k in state["keys"]]
    if keys != list(range(len(synopses))):
        raise SnapshotError(
            "ptile key space does not match the synopsis list (holes from "
            "delete_synopsis?); snapshots require contiguous keys"
        )
    index = PtileRangeIndex.__new__(PtileRangeIndex)
    index.dim = int(state["dim"])
    index.eps = float(state["eps"])
    index.engine_kind = state["engine"]
    index._leaf_size = int(state["leaf_size"])
    index._rng = _restore_rng(state["rng"])
    index._next_key = int(state["next_key"])
    index._phi_eff = float(state["phi_eff"])
    index._sample_size = int(state["sample_size"])
    index.eps_effective = float(state["eps_effective"])
    index.bounding_box = _box_from(state["bounding_box"])
    index._synopses = {k: synopses[k] for k in keys}
    index._deltas = {k: float(d) for k, d in zip(keys, state["deltas"])}
    index._coresets = {
        k: np.asarray(arrays[ref]) for k, ref in zip(keys, state["coresets"])
    }
    index._point_ids = {
        k: [(k, local) for local in range(int(c))]
        for k, c in zip(keys, state["counts"])
    }
    pts = arrays[state["points"]]
    ids_arr = np.asarray(arrays[state["ids"]])
    active = np.asarray(arrays[state["active"]], dtype=bool)
    if index.engine_kind == "columnar":
        # Zero-copy: the mapped-point matrix stays the file-backed buffer.
        index._tree = ColumnarStore._from_snapshot(pts, ids_arr, active)
    else:
        # Tree backends rebuild their node structure from the mapped
        # matrix — still skipping coreset draws and pair enumeration, the
        # expensive parts of a cold build.
        id_list = [(int(a), int(b)) for a, b in ids_arr.tolist()]
        index._tree = build_backend(
            np.asarray(pts),
            id_list,
            engine=index.engine_kind,
            leaf_size=index._leaf_size,
        )
        for pos in np.flatnonzero(~active):
            index._tree.deactivate(id_list[int(pos)])
    return index


# ----------------------------------------------------------------------
# Repository
# ----------------------------------------------------------------------
def _repository_state(
    repo: Optional[Repository], add_array: Callable
) -> Optional[dict]:
    if repo is None:
        return None
    return {
        "schema": list(repo.schema),
        "names": [ds.name for ds in repo.datasets],
        "points": [add_array("dataset", ds.points) for ds in repo.datasets],
    }


def _repository_from_state(
    state: Optional[dict], arrays: _ArrayTable
) -> Optional[Repository]:
    if state is None:
        return None
    schema = tuple(state["schema"])
    datasets = []
    for name, ref in zip(state["names"], state["points"]):
        # Bypass Dataset.__init__: the finiteness scan over every stored
        # point is exactly the O(total points) pass a mapped cold start
        # must not pay (and would fault every page in).
        ds = Dataset.__new__(Dataset)
        ds.points = np.asarray(arrays[ref])
        ds.name = name
        ds.schema = schema
        datasets.append(ds)
    repo = Repository.__new__(Repository)
    repo.datasets = datasets
    return repo


# ----------------------------------------------------------------------
# DatasetSearchEngine
# ----------------------------------------------------------------------
def _engine_sub_state(engine: DatasetSearchEngine, add_array: Callable) -> dict:
    """Engine state *minus* synopses/params (owned by the executor level)."""
    return {
        "leaf_size": int(engine._leaf_size),
        "rng": _rng_state(engine._rng),
        "ptile": (
            None
            if engine._ptile is None
            else _ptile_state(engine._ptile, add_array)
        ),
    }


def _make_engine(
    synopses: list,
    repository: Optional[Repository],
    eps: float,
    phi: Optional[float],
    delta: Optional[float],
    sample_size: Optional[int],
    bounding_box: Optional[Rectangle],
    engine_kind: str,
    sub: dict,
    arrays: _ArrayTable,
) -> DatasetSearchEngine:
    eng = DatasetSearchEngine.__new__(DatasetSearchEngine)
    eng.synopses = list(synopses)
    eng.repository = repository
    if not eng.synopses:
        raise SnapshotError("engine state has no synopses")
    eng.dim = eng.synopses[0].dim
    eng.eps = float(eps)
    eng._phi = phi
    eng._delta = delta
    eng._sample_size = sample_size
    eng._bounding_box = bounding_box
    eng.engine_kind = engine_kind
    eng._leaf_size = int(sub["leaf_size"])
    eng._rng = _restore_rng(sub["rng"])
    eng._ptile = (
        None
        if sub["ptile"] is None
        else _ptile_from_state(sub["ptile"], arrays, eng.synopses)
    )
    eng._pref = {}
    return eng


def _engine_state(engine: DatasetSearchEngine, add_array: Callable) -> dict:
    return {
        "eps": float(engine.eps),
        "phi": engine._phi,
        "delta": engine._delta,
        "sample_size": engine._sample_size,
        "engine": engine.engine_kind,
        "bounding_box": _box_state(engine._bounding_box),
        "synopses": [synopsis_to_state(s, add_array) for s in engine.synopses],
        "repository": _repository_state(engine.repository, add_array),
        "sub": _engine_sub_state(engine, add_array),
    }


def _engine_from_state(state: dict, arrays: _ArrayTable) -> DatasetSearchEngine:
    synopses = [synopsis_from_state(p, arrays) for p in state["synopses"]]
    return _make_engine(
        synopses,
        _repository_from_state(state["repository"], arrays),
        state["eps"],
        state["phi"],
        state["delta"],
        state["sample_size"],
        _box_from(state["bounding_box"]),
        state["engine"],
        state["sub"],
        arrays,
    )


# ----------------------------------------------------------------------
# ShardedBatchExecutor
# ----------------------------------------------------------------------
def _executor_state(ex: ShardedBatchExecutor, add_array: Callable) -> dict:
    pool = ex._pool
    if pool is not None:
        max_workers: Optional[int] = pool._max_workers
    elif ex.n_shards > 1:
        max_workers = 0  # pool explicitly disabled
    else:
        max_workers = None  # single shard never builds a pool
    engines = []
    for eng, lock in zip(ex.engines, ex._locks):
        # A record_times query temporarily deactivates reported points;
        # exporting under the shard lock sees the restored state.
        with lock:
            engines.append(_engine_sub_state(eng, add_array))
    with ex._delta_lock:
        delta_ids = [int(i) for i in ex.delta_ids]
        delta_engine = (
            None
            if ex.delta_engine is None
            else _engine_sub_state(ex.delta_engine, add_array)
        )
        synopses = [synopsis_to_state(s, add_array) for s in ex.synopses]
    return {
        "eps": float(ex.eps),
        "seed": int(ex.seed),
        "deterministic": bool(ex._deterministic),
        "batch_leaves": bool(ex._batch_leaves),
        "delta": ex._delta_param,
        "engine": ex.engine_kind,
        "capacity": ex.capacity,
        "phi_eff": float(ex.phi_eff),
        "sample_size": int(ex.sample_size),
        "eps_effective": float(ex.eps_effective),
        "bounding_box": _box_state(ex.bounding_box),
        "shards": [[int(i) for i in shard] for shard in ex.shards],
        "removed": sorted(int(i) for i in ex.removed),
        "max_workers": max_workers,
        "synopses": synopses,
        "repository": _repository_state(ex.repository, add_array),
        "engines": engines,
        "delta_ids": delta_ids,
        "delta_engine": delta_engine,
    }


def _executor_from_state(
    state: dict, arrays: _ArrayTable
) -> ShardedBatchExecutor:
    ex = ShardedBatchExecutor.__new__(ShardedBatchExecutor)
    ex.eps = float(state["eps"])
    ex.seed = int(state["seed"])
    ex._deterministic = bool(state["deterministic"])
    ex._batch_leaves = bool(state["batch_leaves"])
    ex._delta_param = state["delta"]
    ex.engine_kind = state["engine"]
    ex.capacity = state["capacity"]
    ex.phi_eff = float(state["phi_eff"])
    ex.sample_size = int(state["sample_size"])
    ex.eps_effective = float(state["eps_effective"])
    ex.bounding_box = _box_from(state["bounding_box"])
    ex.synopses = [synopsis_from_state(p, arrays) for p in state["synopses"]]
    if not ex.synopses:
        raise SnapshotError("executor state has no synopses")
    ex.dim = ex.synopses[0].dim
    ex.repository = _repository_from_state(state["repository"], arrays)
    ex.removed = frozenset(int(i) for i in state["removed"])
    ex._removed_bits_cache = None
    ex.shards = [[int(i) for i in shard] for shard in state["shards"]]
    ex.n_shards = len(ex.shards)
    if len(state["engines"]) != ex.n_shards:
        raise SnapshotError("executor state shard/engine count mismatch")
    ex.engines = [
        _make_engine(
            [ex.synopses[i] for i in shard],
            None,
            ex.eps,
            ex.phi_eff,
            ex._delta_param,
            ex.sample_size,
            ex.bounding_box,
            ex.engine_kind,
            sub,
            arrays,
        )
        for shard, sub in zip(ex.shards, state["engines"])
    ]
    ex._locks = [threading.Lock() for _ in range(ex.n_shards)]
    ex._stats_lock = threading.Lock()
    ex.delta_ids = [int(i) for i in state["delta_ids"]]
    ex.delta_engine = (
        None
        if state["delta_engine"] is None
        else _make_engine(
            [ex.synopses[i] for i in ex.delta_ids],
            None,
            ex.eps,
            ex.phi_eff,
            ex._delta_param,
            ex.sample_size,
            ex.bounding_box,
            ex.engine_kind,
            state["delta_engine"],
            arrays,
        )
    )
    ex._delta_lock = threading.Lock()
    max_workers = state["max_workers"]
    if max_workers is None:
        max_workers = ex.n_shards
    ex._pool = (
        ThreadPoolExecutor(
            max_workers=int(max_workers), thread_name_prefix="repro-shard"
        )
        if int(max_workers) > 0 and ex.n_shards > 1
        else None
    )
    ex.stats = {"leaf_evals": 0, "shard_tasks": 0, "delta_evals": 0}  # guarded-by: _stats_lock
    return ex


# ----------------------------------------------------------------------
# Leaf-result cache
# ----------------------------------------------------------------------
def _encode_key(obj: Any) -> Any:
    """Canonical leaf keys are nested tuples of JSON scalars; tag tuples."""
    if isinstance(obj, tuple):
        return {"t": [_encode_key(x) for x in obj]}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise SnapshotError(
        f"cache key element of type {type(obj).__name__} is not "
        "snapshot-serializable"
    )


def _decode_key(obj: Any) -> Any:
    if isinstance(obj, dict):
        return tuple(_decode_key(x) for x in obj["t"])
    return obj


def _cache_state(cache: LeafResultCache, add_array: Callable) -> dict:
    entries = []
    word_chunks: list[np.ndarray] = []
    off = 0
    for key, entry in cache.export_entries():
        e: dict = {"key": _encode_key(key), "watermark": int(entry.watermark)}
        value = entry.indexes
        if isinstance(value, DatasetBitmap):
            word_chunks.append(value.words)
            e["nbits"] = int(value.nbits)
            e["off"] = off
            e["nw"] = int(value.words.size)
            off += int(value.words.size)
        else:
            e["set"] = sorted(int(i) for i in value)
        entries.append(e)
    words = (
        np.concatenate(word_chunks)
        if word_chunks
        else np.zeros(0, dtype=np.uint64)
    )
    return {
        "capacity": int(cache.capacity),
        "generation": int(cache.generation),
        "entries": entries,
        "words": add_array("cache_words", words),
    }


def _cache_restore(
    state: dict, arrays: _ArrayTable, cache: LeafResultCache
) -> None:
    words = arrays[state["words"]]
    items = []
    for e in state["entries"]:
        key = _decode_key(e["key"])
        if "set" in e:
            value: CachedAnswer = frozenset(int(i) for i in e["set"])
        else:
            off, nw = int(e["off"]), int(e["nw"])
            if off + nw > words.size:
                raise SnapshotError("cache entry words out of segment bounds")
            # Contiguous slice of the mapped words — zero-copy; bitmaps
            # are immutable by convention so a read-only buffer is fine.
            value = DatasetBitmap(words[off : off + nw], int(e["nbits"]))
        items.append((key, CacheEntry(value, int(e["watermark"]))))
    cache.restore_entries(items, generation=int(state["generation"]))


# ----------------------------------------------------------------------
# QueryService
# ----------------------------------------------------------------------
def _service_state(svc: QueryService, add_array: Callable) -> dict:
    kw = svc._executor_kwargs
    return {
        "algebra": svc.algebra,
        "executor_kwargs": {
            "eps": kw["eps"],
            "phi": kw["phi"],
            "delta": kw["delta"],
            "sample_size": kw["sample_size"],
            "bounding_box": _box_state(kw["bounding_box"]),
            "seed": kw["seed"],
            "deterministic": kw["deterministic"],
            "engine": kw["engine"],
            "max_workers": kw["max_workers"],
            "capacity": kw["capacity"],
            "batch_leaves": kw["batch_leaves"],
        },
        "plan_capacity": int(svc.plans.capacity),
        "telemetry_window": int(svc.telemetry._latencies.maxlen or 4096),
        "tracing": bool(svc.observability.tracing),
        "slow_query_threshold_ms": svc.observability.slow_log.threshold_ms,
        "slow_log_size": int(svc.observability.slow_log.k),
        "cache": _cache_state(svc.cache, add_array),
        "executor": _executor_state(svc.executor, add_array),
    }


def _service_from_state(state: dict, arrays: _ArrayTable) -> QueryService:
    svc = QueryService.__new__(QueryService)
    svc.algebra = state["algebra"]
    kw = dict(state["executor_kwargs"])
    kw["bounding_box"] = _box_from(kw["bounding_box"])
    svc._executor_kwargs = kw
    svc.executor = _executor_from_state(state["executor"], arrays)
    svc.cache = LeafResultCache(capacity=int(state["cache"]["capacity"]))
    _cache_restore(state["cache"], arrays, svc.cache)
    svc.plans = PlanCache(capacity=int(state["plan_capacity"]))
    svc.telemetry = ServiceTelemetry(window=int(state["telemetry_window"]))
    svc.observability = ServiceObservability(
        svc,
        tracing=bool(state["tracing"]),
        slow_query_threshold_ms=state["slow_query_threshold_ms"],
        slow_log_size=int(state["slow_log_size"]),
    )
    svc._mutation_lock = threading.Lock()
    return svc


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def save(obj: object, path: PathLike, generation: int = 0) -> dict:
    """Persist a built engine/executor/service into one container file.

    Returns a summary dict (``path``, ``kind``, ``generation``, segment
    count and byte sizes).  The write is atomic (temp file + rename), so
    a reader never maps a half-written snapshot — the property the
    multi-process supervisor's generation handoff relies on.
    """
    writer = _SnapshotWriter()
    if isinstance(obj, QueryService):
        with obj._mutation_lock:
            kind, state = "query_service", _service_state(obj, writer.add_array)
    elif isinstance(obj, ShardedBatchExecutor):
        kind, state = "sharded_executor", _executor_state(obj, writer.add_array)
    elif isinstance(obj, DatasetSearchEngine):
        kind, state = "engine", _engine_state(obj, writer.add_array)
    else:
        raise SnapshotError(
            f"cannot snapshot {type(obj).__name__}; supported: QueryService, "
            "ShardedBatchExecutor, DatasetSearchEngine"
        )
    return writer.write(path, kind, state, generation)


def load(path: PathLike, mmap: bool = True) -> Any:
    """Reconstruct whatever :func:`save` persisted at ``path``.

    With ``mmap=True`` (default) bulk buffers are read-only
    ``np.memmap`` views — loading is O(metadata), the point data pages in
    on demand and is shared across processes.  ``mmap=False`` reads
    private writable copies.
    """
    if faults.ARMED is not None:
        faults.hit("snapshot_load")
    header, arrays = _open_container(path, mmap)
    kind = header.get("kind")
    state = header["state"]
    if kind == "query_service":
        return _service_from_state(state, arrays)
    if kind == "sharded_executor":
        return _executor_from_state(state, arrays)
    if kind == "engine":
        return _engine_from_state(state, arrays)
    raise SnapshotError(f"unknown snapshot kind {kind!r} (of {KINDS})")


def load_expected(path: PathLike, expected_kind: str, mmap: bool = True) -> Any:
    """:func:`load` that refuses a container of the wrong kind."""
    header, arrays = _open_container(path, mmap)
    kind = header.get("kind")
    if kind != expected_kind:
        raise SnapshotError(
            f"snapshot holds kind {kind!r}, expected {expected_kind!r}"
        )
    del arrays
    return load(path, mmap=mmap)


def generation_of(path: PathLike) -> int:
    """The generation counter stamped into a snapshot header."""
    header, _arrays = _open_container(path, mmap=True)
    return int(header.get("generation", 0))


def inspect(path: PathLike) -> dict:
    """Human/CLI-facing summary of a container (no arrays are loaded)."""
    path = os.fspath(path)
    header, _arrays = _open_container(path, mmap=True)
    arrays = header["arrays"]
    data_bytes = sum(
        int(np.prod(m["shape"]) if m["shape"] else 1)
        * np.dtype(m["dtype"]).itemsize
        for m in arrays.values()
    )
    state = header["state"]
    out = {
        "path": path,
        "format": header.get("format"),
        "kind": header.get("kind"),
        "generation": int(header.get("generation", 0)),
        "n_arrays": len(arrays),
        "data_bytes": data_bytes,
        "file_bytes": os.path.getsize(path),
    }
    if header.get("kind") == "query_service":
        out["executor"] = {
            "engine": state["executor"]["engine"],
            "n_shards": len(state["executor"]["shards"]),
            "n_datasets": len(state["executor"]["synopses"]),
            "n_removed": len(state["executor"]["removed"]),
            "delta_size": len(state["executor"]["delta_ids"]),
        }
        out["cache_entries"] = len(state["cache"]["entries"])
    elif header.get("kind") == "sharded_executor":
        out["executor"] = {
            "engine": state["engine"],
            "n_shards": len(state["shards"]),
            "n_datasets": len(state["synopses"]),
            "n_removed": len(state["removed"]),
            "delta_size": len(state["delta_ids"]),
        }
    elif header.get("kind") == "engine":
        out["engine"] = {
            "engine": state["engine"],
            "n_datasets": len(state["synopses"]),
            "built": state["sub"]["ptile"] is not None,
        }
    return out
