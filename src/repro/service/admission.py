"""Admission control: a bounded inflight gate for the HTTP server.

Load shedding beats queue collapse: a search endpoint that accepts every
request under overload serves *all* of them slowly (threads pile up on
the shard locks, p99 explodes, deadlines fire for everyone).  The gate
caps concurrently-executing search requests at ``max_inflight``; up to
``max_queue`` excess requests wait briefly for a slot, and everything
beyond that is shed immediately with ``429 Too Many Requests`` and a
``Retry-After`` hint — the client's signal to back off while the
requests already admitted keep their latency budget.

The gate is deliberately tiny — one lock, one condition, three counters —
and sits entirely in the server layer: the service underneath never
sees shed requests, so ``/stats`` query telemetry stays a picture of
*admitted* work.

Examples
--------
>>> gate = AdmissionGate(max_inflight=1, max_queue=0, retry_after_s=0.5)
>>> gate.try_acquire()
True
>>> gate.try_acquire()      # full, no queue -> shed
False
>>> gate.release()
>>> gate.snapshot()["shed"]
1
"""

from __future__ import annotations

import threading
import time

from repro.errors import ConstructionError


class AdmissionGate:
    """Bounded-concurrency admission with a small overflow queue.

    Parameters
    ----------
    max_inflight:
        Maximum requests executing at once (must be >= 1).
    max_queue:
        How many further requests may *wait* for a slot (0 = shed
        immediately when full).
    queue_timeout_s:
        How long a queued request waits before giving up and being shed.
    retry_after_s:
        The back-off hint shed responses carry (``Retry-After`` header).
    """

    def __init__(
        self,
        max_inflight: int,
        max_queue: int = 0,
        queue_timeout_s: float = 1.0,
        retry_after_s: float = 1.0,
    ) -> None:
        if max_inflight < 1:
            raise ConstructionError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ConstructionError("max_queue must be >= 0")
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.queue_timeout_s = float(queue_timeout_s)
        self.retry_after_s = float(retry_after_s)
        self._cond = threading.Condition(threading.Lock())
        self._inflight = 0  # guarded-by: _cond
        self._queued = 0  # guarded-by: _cond
        self._admitted = 0  # guarded-by: _cond
        self._queued_total = 0  # guarded-by: _cond
        self._shed = 0  # guarded-by: _cond

    def try_acquire(self) -> bool:
        """Admit the calling request, queue it briefly, or shed it.

        Returns True when a slot was taken (the caller MUST pair it with
        :meth:`release`), False when the request should be shed.
        """
        with self._cond:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self._admitted += 1
                return True
            if self._queued >= self.max_queue:
                self._shed += 1
                return False
            self._queued += 1
            self._queued_total += 1
            try:
                deadline = time.monotonic() + self.queue_timeout_s
                remaining = self.queue_timeout_s
                while self._inflight >= self.max_inflight:
                    if remaining <= 0 or not self._cond.wait(remaining):
                        self._shed += 1
                        return False
                    remaining = deadline - time.monotonic()
                self._inflight += 1
                self._admitted += 1
                return True
            finally:
                self._queued -= 1

    def release(self) -> None:
        """Return a slot (wakes one queued waiter, if any)."""
        with self._cond:
            self._inflight -= 1
            self._cond.notify()

    def snapshot(self) -> dict:
        """JSON-ready gate state and lifetime counters."""
        with self._cond:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "inflight": self._inflight,
                "queued": self._queued,
                "admitted": self._admitted,
                "queued_total": self._queued_total,
                "shed": self._shed,
            }
