"""Pre-forked multi-process serving over one mmap-backed snapshot.

CPython's GIL caps a single serving process at one core of query
throughput no matter how many threads the HTTP server spawns.  The
supervisor gets past that the classic Unix way: the parent ``load()``\\ s
the snapshot once with ``mmap=True`` and then **forks** ``N`` workers —
every immutable page (mapped-point matrices, coresets, raw datasets) is
shared read-only between all workers through the page cache, so warm
aggregate QPS scales with cores while resident memory stays flat in the
worker count.

Socket strategy
---------------
Each worker binds its own listening socket to the same address with
``SO_REUSEPORT`` (the kernel load-balances new connections across
workers).  On platforms without ``SO_REUSEPORT`` the parent binds and
listens *before* forking and every worker accepts on the inherited
socket — strictly a fallback: it works everywhere but funnels accepts
through one queue.

Single-writer ingest
--------------------
Worker 0 is the only writable worker (its siblings answer ``409`` for
``POST/DELETE /datasets``; see :mod:`repro.service.server`).  After each
successful mutation worker 0 bumps the snapshot generation, rewrites the
snapshot atomically (temp file + rename) and publishes the new generation
to the *watermark file* ``<snapshot>.gen``.  Sibling workers poll the
watermark; on a bump they ``load()`` the new snapshot (again mmap-backed)
and hot-swap their service between requests.  ``GET /healthz`` and
``/stats`` expose ``snapshot_generation``/``worker_id``/``worker_count``
so a client — or the smoke test — can watch a mutation propagate.

Everything here is fork-gated: on platforms without ``os.fork`` the
supervisor raises :class:`~repro.errors.CapabilityError` up front and the
single-process ``repro serve`` path still works.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sys
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from http.server import ThreadingHTTPServer
from typing import Optional

from repro.errors import CapabilityError, SnapshotError
from repro.service import snapshot as snapshot_mod
from repro.service.server import make_handler
from repro.service.service import QueryService


def fork_available() -> bool:
    """Whether this platform can run the pre-forked supervisor."""
    return hasattr(os, "fork")


def watermark_path(snapshot_path: "str | os.PathLike[str]") -> str:
    """The generation watermark file published next to a snapshot."""
    return f"{os.fspath(snapshot_path)}.gen"


def write_watermark(snapshot_path: "str | os.PathLike[str]", generation: int) -> None:
    """Atomically publish ``generation`` for ``snapshot_path``."""
    path = watermark_path(snapshot_path)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump({"generation": int(generation)}, f)
    os.replace(tmp, path)


def read_watermark(snapshot_path: "str | os.PathLike[str]") -> Optional[int]:
    """The published generation, or None if absent/corrupt (mid-publish)."""
    try:
        with open(watermark_path(snapshot_path), "r", encoding="utf-8") as f:
            return int(json.load(f)["generation"])
    except (OSError, ValueError, KeyError, json.JSONDecodeError):
        return None


class _ReuseportHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that sets ``SO_REUSEPORT`` before binding."""

    def server_bind(self) -> None:
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


def _inherited_server(sock: socket.socket, handler: type) -> ThreadingHTTPServer:
    """An HTTP server accepting on an already-listening inherited socket."""
    httpd = ThreadingHTTPServer(
        sock.getsockname()[:2], handler, bind_and_activate=False
    )
    httpd.socket.close()
    httpd.socket = sock
    host, port = sock.getsockname()[:2]
    httpd.server_name = host
    httpd.server_port = port
    return httpd


def _revive_pool(service: QueryService) -> None:
    """Replace a fork-orphaned shard pool with a live one.

    Thread pools do not survive ``fork()`` — the child inherits the pool
    object but none of its worker threads, so any submitted task would
    wait forever.  The parent shuts its pool down before forking; each
    worker rebuilds one here from the executor's recorded width.
    """
    ex = service.executor
    width = getattr(ex, "_pool_width", None)
    if width:
        ex._pool = ThreadPoolExecutor(
            max_workers=int(width), thread_name_prefix="repro-shard"
        )


class ServiceSupervisor:
    """Pre-fork ``workers`` serving processes over one snapshot file.

    Parameters
    ----------
    snapshot_path:
        A container written by :func:`repro.service.snapshot.save` (kind
        ``query_service``).
    workers:
        Number of serving processes.  Worker 0 is the single writer.
    host, port:
        Public listening address; ``port=0`` picks an ephemeral port
        (resolved before forking so every worker binds the same one).
    poll_interval:
        Sibling watermark-poll period in seconds.

    Examples
    --------
    ::

        sup = ServiceSupervisor("engine.snap", workers=4, port=0)
        host, port = sup.start()
        ...  # serve traffic on http://host:port
        sup.stop()
    """

    def __init__(
        self,
        snapshot_path: "str | os.PathLike[str]",
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 0.25,
        quiet: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.snapshot_path = os.fspath(snapshot_path)
        self.workers = int(workers)
        self.host = host
        self.port = int(port)
        self.poll_interval = float(poll_interval)
        self.quiet = quiet
        self.pids: list[int] = []
        self.worker_ports: list[int] = []  # private per-worker admin ports
        self._placeholder: Optional[socket.socket] = None
        self._listen_sock: Optional[socket.socket] = None
        self._started = False

    # -- parent side ---------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Load, fork, wait for every worker to bind; returns (host, port)."""
        if not fork_available():
            raise CapabilityError(
                "multi-process serving needs os.fork(); this platform has "
                "none — use single-process 'repro serve' instead"
            )
        if self._started:
            raise RuntimeError("supervisor already started")
        generation = snapshot_mod.generation_of(self.snapshot_path)
        # Load BEFORE forking: the mmap'ed pages and every Python object
        # built from the header are shared copy-on-write with all workers.
        service = snapshot_mod.load(self.snapshot_path, mmap=True)
        # Threads don't survive fork; park the pool width and drain it.
        ex = service.executor
        ex._pool_width = ex._pool._max_workers if ex._pool is not None else 0
        ex.close()
        write_watermark(self.snapshot_path, generation)

        reuseport = hasattr(socket, "SO_REUSEPORT")
        if reuseport:
            # Resolve an ephemeral port without listening: a bound
            # placeholder reserves the number, workers bind the same port
            # with SO_REUSEPORT, and only *listening* sockets receive
            # connections, so the placeholder never steals one.
            self._placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            self._placeholder.bind((self.host, self.port))
            self.port = self._placeholder.getsockname()[1]
        else:  # pragma: no cover - exercised only on SO_REUSEPORT-less OSes
            self._listen_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listen_sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            self._listen_sock.bind((self.host, self.port))
            self._listen_sock.listen(128)
            self.port = self._listen_sock.getsockname()[1]

        pipes = []
        for worker_id in range(self.workers):
            r, w = os.pipe()
            pid = os.fork()
            if pid == 0:
                # Child: never returns.
                os.close(r)
                try:
                    self._worker_main(worker_id, service, generation, w)
                finally:
                    os._exit(0)
            os.close(w)
            pipes.append(r)
            self.pids.append(pid)

        # Wait for every worker to report its bound admin port.
        for r in pipes:
            with os.fdopen(r, "r", encoding="utf-8") as f:
                line = f.readline()
            try:
                self.worker_ports.append(int(json.loads(line)["admin_port"]))
            except (ValueError, KeyError, json.JSONDecodeError):
                self.stop()
                raise SnapshotError(
                    "a supervisor worker failed to start "
                    f"(bad ready report {line!r})"
                )
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None
        if self._listen_sock is not None:
            # Parent's copy of the inherited socket is no longer needed.
            self._listen_sock.close()
            self._listen_sock = None
        self._started = True
        return self.host, self.port

    def stop(self) -> None:
        """SIGTERM every worker and reap it (idempotent)."""
        for pid in self.pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        for pid in self.pids:
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass
        self.pids = []
        self.worker_ports = []
        for sock in (self._placeholder, self._listen_sock):
            if sock is not None:
                sock.close()
        self._placeholder = None
        self._listen_sock = None
        self._started = False

    def __enter__(self) -> "ServiceSupervisor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- aggregation ---------------------------------------------------
    def _fetch(self, port: int, path: str) -> bytes:
        with urllib.request.urlopen(
            f"http://{self.host}:{port}{path}", timeout=10
        ) as resp:
            return resp.read()

    def aggregate_stats(self) -> dict:
        """Per-worker ``/stats`` fanned out over the private admin ports,
        plus summed request counters for the fleet."""
        workers = [
            json.loads(self._fetch(port, "/stats"))
            for port in self.worker_ports
        ]
        total_queries = sum(
            w.get("telemetry", {}).get("n_queries", 0) for w in workers
        )
        return {
            "worker_count": len(workers),
            "generations": [w["serving"]["snapshot_generation"] for w in workers],
            "total_queries": total_queries,
            "workers": workers,
        }

    def aggregate_metrics(self) -> str:
        """Every worker's Prometheus exposition, one labeled block each."""
        blocks = []
        for worker_id, port in enumerate(self.worker_ports):
            text = self._fetch(port, "/metrics").decode("utf-8")
            blocks.append(f"# supervisor worker {worker_id}\n{text}")
        return "\n".join(blocks)

    # -- child side ----------------------------------------------------
    def _worker_main(
        self,
        worker_id: int,
        service: QueryService,
        generation: int,
        ready_fd: int,
    ) -> None:
        signal.signal(signal.SIGTERM, lambda *_: os._exit(0))
        _revive_pool(service)
        holder = {"service": service}
        context = {
            "worker_id": worker_id,
            "worker_count": self.workers,
            "snapshot_generation": int(generation),
        }
        publish_lock = threading.Lock()

        def _on_mutate() -> None:
            # Single-writer publish: bump generation, rewrite the snapshot
            # (atomic rename), then advance the watermark — readers always
            # see watermark <= snapshot generation.
            with publish_lock:
                gen = context["snapshot_generation"] + 1
                holder["service"].save(self.snapshot_path, generation=gen)
                write_watermark(self.snapshot_path, gen)
                context["snapshot_generation"] = gen

        handler = make_handler(
            provider=lambda: holder["service"],
            quiet=self.quiet,
            context=context,
            writable=(worker_id == 0),
            on_mutate=_on_mutate if worker_id == 0 else None,
        )
        if self._listen_sock is not None:
            httpd = _inherited_server(self._listen_sock, handler)
        else:
            httpd = _ReuseportHTTPServer((self.host, self.port), handler)
        # Private admin endpoint: the parent aggregates /stats + /metrics
        # across workers here, bypassing the load-balanced public port.
        admin = ThreadingHTTPServer((self.host, 0), handler)
        threading.Thread(target=admin.serve_forever, daemon=True).start()

        if worker_id != 0:
            def _watch() -> None:
                while True:
                    time.sleep(self.poll_interval)
                    gen = read_watermark(self.snapshot_path)
                    if gen is None or gen <= context["snapshot_generation"]:
                        continue
                    try:
                        fresh = snapshot_mod.load(self.snapshot_path, mmap=True)
                    except SnapshotError:  # pragma: no cover - publish race
                        continue
                    holder["service"] = fresh
                    context["snapshot_generation"] = gen

            threading.Thread(target=_watch, daemon=True).start()

        with os.fdopen(ready_fd, "w", encoding="utf-8") as f:
            f.write(
                json.dumps(
                    {
                        "worker_id": worker_id,
                        "pid": os.getpid(),
                        "admin_port": admin.server_address[1],
                    }
                )
                + "\n"
            )
        try:
            httpd.serve_forever()
        except Exception:  # pragma: no cover - fatal worker error
            os._exit(1)


def serve_forked(
    snapshot_path: "str | os.PathLike[str]",
    workers: int = 2,
    host: str = "127.0.0.1",
    port: int = 8765,
    quiet: bool = False,
) -> None:
    """Run the supervisor until interrupted; the ``repro serve --workers``
    entry point."""
    sup = ServiceSupervisor(
        snapshot_path, workers=workers, host=host, port=port, quiet=quiet
    )
    host, port = sup.start()
    print(
        f"repro supervisor serving on http://{host}:{port} "
        f"({workers} workers, snapshot {snapshot_path})"
    )
    sys.stdout.flush()
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("shutting down workers")
    finally:
        sup.stop()
