"""Pre-forked multi-process serving over one mmap-backed snapshot.

CPython's GIL caps a single serving process at one core of query
throughput no matter how many threads the HTTP server spawns.  The
supervisor gets past that the classic Unix way: the parent ``load()``\\ s
the snapshot once with ``mmap=True`` and then **forks** ``N`` workers —
every immutable page (mapped-point matrices, coresets, raw datasets) is
shared read-only between all workers through the page cache, so warm
aggregate QPS scales with cores while resident memory stays flat in the
worker count.

Socket strategy
---------------
Each worker binds its own listening socket to the same address with
``SO_REUSEPORT`` (the kernel load-balances new connections across
workers).  On platforms without ``SO_REUSEPORT`` the parent binds and
listens *before* forking and every worker accepts on the inherited
socket — strictly a fallback: it works everywhere but funnels accepts
through one queue.

Single-writer ingest
--------------------
Exactly one worker is writable at a time (its siblings answer ``409``
for ``POST/DELETE /datasets``; see :mod:`repro.service.server`).  After
each successful mutation the writer bumps the snapshot generation,
rewrites the snapshot atomically (temp file + rename) and publishes the
new generation to the *watermark file* ``<snapshot>.gen``.  Sibling
workers poll the watermark; on a bump they ``load()`` the new snapshot
(again mmap-backed) and hot-swap their service between requests.

Self-healing
------------
A monitor thread in the parent keeps the fleet at strength:

- **Reaping**: crashed workers are noticed via ``waitpid(WNOHANG)``
  within one monitor tick.
- **Respawn**: a dead slot is re-forked from the *current* snapshot
  generation (watermark first, header as fallback) after a per-slot
  exponential backoff (``backoff_base`` doubling up to ``backoff_max``).
  A slot that crashes ``crash_loop_threshold`` times inside
  ``crash_loop_window`` seconds trips a circuit breaker and stays down —
  a deterministic crasher must not burn CPU in a fork loop.
- **Writer failover**: when the writer dies, the lowest-id live worker
  is promoted via ``POST /admin/promote`` on its private admin port (the
  public port never exposes that endpoint), and the dead slot respawns
  as a plain reader.  Single-writer stays invariant throughout.
- **Liveness probes**: workers that stop answering ``/healthz`` on the
  admin port for ``probe_failures`` consecutive probes are killed
  (SIGKILL) and recycled through the respawn path — a hung process is
  as dead as a crashed one.

The parent also runs a tiny admin server of its own (``admin_port``)
whose ``/healthz`` reports per-worker liveness and whose ``/stats`` /
``/metrics`` aggregate the fleet, tolerating unreachable workers.

Everything here is fork-gated: on platforms without ``os.fork`` the
supervisor raises :class:`~repro.errors.CapabilityError` up front and the
single-process ``repro serve`` path still works.
"""

from __future__ import annotations

import json
import os
import random
import signal
import socket
import sys
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.errors import CapabilityError, SnapshotError
from repro.service import snapshot as snapshot_mod
from repro.service.admission import AdmissionGate
from repro.service.server import make_handler
from repro.service.service import QueryService


def fork_available() -> bool:
    """Whether this platform can run the pre-forked supervisor."""
    return hasattr(os, "fork")


def watermark_path(snapshot_path: "str | os.PathLike[str]") -> str:
    """The generation watermark file published next to a snapshot."""
    return f"{os.fspath(snapshot_path)}.gen"


def write_watermark(snapshot_path: "str | os.PathLike[str]", generation: int) -> None:
    """Atomically publish ``generation`` for ``snapshot_path``."""
    path = watermark_path(snapshot_path)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump({"generation": int(generation)}, f)
    os.replace(tmp, path)


_corrupt_lock = threading.Lock()
_corrupt_reads = 0  # guarded-by: _corrupt_lock


def watermark_corrupt_reads() -> int:
    """How many watermark reads found garbage (not merely a missing file).

    A missing watermark is normal (pre-first-publish); a present-but-
    unparseable one means a torn write or disk corruption and is worth
    counting — the atomic-rename publish protocol should make it
    impossible, so a nonzero count is a bug signal.
    """
    with _corrupt_lock:
        return _corrupt_reads


def read_watermark(snapshot_path: "str | os.PathLike[str]") -> Optional[int]:
    """The published generation, or None if absent or corrupt.

    Corruption (garbage bytes, truncated JSON, wrong schema, a negative
    or non-integer generation) never raises: pollers treat it exactly
    like "no watermark yet" and keep serving their current generation,
    but each corrupt read bumps :func:`watermark_corrupt_reads`.
    """
    global _corrupt_reads
    try:
        with open(watermark_path(snapshot_path), "rb") as f:
            raw = f.read()
    except OSError:
        return None
    try:
        payload = json.loads(raw.decode("utf-8"))
        generation = payload["generation"]
        if isinstance(generation, bool) or not isinstance(generation, int):
            raise ValueError(f"generation {generation!r} is not an int")
        if generation < 0:
            raise ValueError(f"generation {generation} is negative")
    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
        with _corrupt_lock:
            _corrupt_reads += 1
        return None
    return generation


class _ReuseportHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that sets ``SO_REUSEPORT`` before binding."""

    def server_bind(self) -> None:
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


def _inherited_server(sock: socket.socket, handler: type) -> ThreadingHTTPServer:
    """An HTTP server accepting on an already-listening inherited socket."""
    httpd = ThreadingHTTPServer(
        sock.getsockname()[:2], handler, bind_and_activate=False
    )
    httpd.socket.close()
    httpd.socket = sock
    host, port = sock.getsockname()[:2]
    httpd.server_name = host
    httpd.server_port = port
    return httpd


def _revive_pool(service: QueryService) -> None:
    """Replace a fork-orphaned shard pool with a live one.

    Thread pools do not survive ``fork()`` — the child inherits the pool
    object but none of its worker threads, so any submitted task would
    wait forever.  The parent shuts its pool down before forking; each
    worker rebuilds one here from the executor's recorded width.
    """
    ex = service.executor
    width = getattr(ex, "_pool_width", None)
    if width:
        ex._pool = ThreadPoolExecutor(
            max_workers=int(width), thread_name_prefix="repro-shard"
        )


class _WorkerSlot:
    """The parent's mutable record of one worker process (one per id)."""

    __slots__ = (
        "worker_id", "pid", "admin_port", "alive", "restarts",
        "crash_times", "probe_misses", "last_probe", "spawned_at",
        "backoff", "next_respawn", "disabled", "exit_code",
    )

    def __init__(
        self, worker_id: int, pid: int, admin_port: int, backoff: float
    ) -> None:
        self.worker_id = worker_id
        self.pid = pid
        self.admin_port = admin_port
        self.alive = True
        self.restarts = 0
        self.crash_times: list[float] = []
        self.probe_misses = 0
        self.last_probe = 0.0
        self.spawned_at = time.monotonic()
        self.backoff = backoff
        self.next_respawn = 0.0
        self.disabled = False
        self.exit_code: Optional[int] = None


class _SupervisorAdminHandler(BaseHTTPRequestHandler):
    """The parent's own admin endpoint: fleet health and aggregates."""

    supervisor: "ServiceSupervisor"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args: object) -> None:
        pass

    def _send(self, status: int, body: bytes, ctype: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        sup = self.supervisor
        try:
            if self.path == "/healthz":
                health = sup.health()
                status = 200 if health["status"] == "ok" else 503
                self._send(
                    status, json.dumps(health).encode(), "application/json"
                )
            elif self.path == "/stats":
                self._send(
                    200,
                    json.dumps(sup.aggregate_stats()).encode(),
                    "application/json",
                )
            elif self.path == "/metrics":
                self._send(
                    200,
                    sup.aggregate_metrics().encode(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                self._send(
                    404,
                    json.dumps({"error": f"unknown path {self.path}"}).encode(),
                    "application/json",
                )
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self._send(
                500, json.dumps({"error": str(exc)}).encode(), "application/json"
            )


class ServiceSupervisor:
    """Pre-fork ``workers`` serving processes over one snapshot file.

    Parameters
    ----------
    snapshot_path:
        A container written by :func:`repro.service.snapshot.save` (kind
        ``query_service``).
    workers:
        Number of serving processes.  Worker 0 starts as the single
        writer; writership migrates on writer death (see module docs).
    host, port:
        Public listening address; ``port=0`` picks an ephemeral port
        (resolved before forking so every worker binds the same one).
    poll_interval:
        Sibling watermark-poll period in seconds.
    fetch_timeout:
        Per-request timeout for parent->worker admin fetches (stats and
        metrics aggregation, promotion), seconds.
    respawn:
        Whether the monitor re-forks dead workers (chaos tests switch
        this off to observe the degraded fleet).
    monitor_interval:
        Monitor tick (reap + respawn + probe scheduling), seconds.
    backoff_base, backoff_max:
        Respawn backoff: first respawn after ``backoff_base`` seconds,
        doubling per consecutive crash up to ``backoff_max``.
    backoff_jitter, backoff_seed:
        Each scheduled respawn delay is stretched by a uniform random
        factor in ``[1, 1 + backoff_jitter]`` so workers that died
        together (a poison query fanned to the whole fleet) don't
        respawn in lockstep and re-crash as one thundering herd.
        ``backoff_jitter=0`` restores deterministic delays;
        ``backoff_seed`` pins the RNG for tests.
    crash_loop_threshold, crash_loop_window:
        Circuit breaker: a slot crashing ``threshold`` times within
        ``window`` seconds stays down until the supervisor restarts.
    probe_interval, probe_failures:
        Liveness probing: each live worker's admin ``/healthz`` is hit
        every ``probe_interval`` seconds; ``probe_failures`` consecutive
        misses get the worker SIGKILLed (and recycled via respawn).
    max_inflight, max_queue:
        Per-worker admission control knobs (see
        :class:`~repro.service.admission.AdmissionGate`); None disables.

    Examples
    --------
    ::

        sup = ServiceSupervisor("engine.snap", workers=4, port=0)
        host, port = sup.start()
        ...  # serve traffic on http://host:port
        sup.stop()
    """

    def __init__(
        self,
        snapshot_path: "str | os.PathLike[str]",
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 0.25,
        quiet: bool = True,
        fetch_timeout: float = 10.0,
        respawn: bool = True,
        monitor_interval: float = 0.2,
        backoff_base: float = 0.25,
        backoff_max: float = 4.0,
        backoff_jitter: float = 0.5,
        backoff_seed: Optional[int] = None,
        crash_loop_threshold: int = 5,
        crash_loop_window: float = 30.0,
        probe_interval: float = 1.0,
        probe_failures: int = 3,
        max_inflight: Optional[int] = None,
        max_queue: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.snapshot_path = os.fspath(snapshot_path)
        self.workers = int(workers)
        self.host = host
        self.port = int(port)
        self.poll_interval = float(poll_interval)
        self.quiet = quiet
        self.fetch_timeout = float(fetch_timeout)
        self.respawn = bool(respawn)
        self.monitor_interval = float(monitor_interval)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        if not 0.0 <= backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1], got {backoff_jitter}"
            )
        self.backoff_jitter = float(backoff_jitter)
        self._backoff_rng = random.Random(backoff_seed)  # guarded-by: _lock
        self.crash_loop_threshold = int(crash_loop_threshold)
        self.crash_loop_window = float(crash_loop_window)
        self.probe_interval = float(probe_interval)
        self.probe_failures = int(probe_failures)
        self.max_inflight = max_inflight
        self.max_queue = int(max_queue)
        # Back-compat views, updated in place on respawn: pids[i] and
        # worker_ports[i] always describe slot i's current incarnation.
        self.pids: list[int] = []
        self.worker_ports: list[int] = []  # private per-worker admin ports
        self.admin_port: Optional[int] = None  # the parent's own admin port
        self._slots: list[_WorkerSlot] = []  # guarded-by: _lock
        self._writer_id = 0  # guarded-by: _lock
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._admin_httpd: Optional[ThreadingHTTPServer] = None
        self._placeholder: Optional[socket.socket] = None
        self._listen_sock: Optional[socket.socket] = None
        self._started = False

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"supervisor: {message}", file=sys.stderr, flush=True)

    # -- parent side ---------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Load, fork, wait for every worker to bind; returns (host, port)."""
        if not fork_available():
            raise CapabilityError(
                "multi-process serving needs os.fork(); this platform has "
                "none — use single-process 'repro serve' instead"
            )
        if self._started:
            raise RuntimeError("supervisor already started")
        generation = snapshot_mod.generation_of(self.snapshot_path)
        # Load BEFORE forking: the mmap'ed pages and every Python object
        # built from the header are shared copy-on-write with all workers.
        service = snapshot_mod.load(self.snapshot_path, mmap=True)
        # Threads don't survive fork; park the pool width and drain it.
        ex = service.executor
        ex._pool_width = ex._pool._max_workers if ex._pool is not None else 0
        ex.close()
        write_watermark(self.snapshot_path, generation)

        reuseport = hasattr(socket, "SO_REUSEPORT")
        if reuseport:
            # Resolve an ephemeral port without listening: a bound
            # placeholder reserves the number, workers bind the same port
            # with SO_REUSEPORT, and only *listening* sockets receive
            # connections, so the placeholder never steals one.  Held
            # open for the supervisor's whole life, not just startup:
            # were every worker to die at once, the port must still be
            # ours when the respawns re-bind it.
            self._placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            self._placeholder.bind((self.host, self.port))
            self.port = self._placeholder.getsockname()[1]
        else:  # pragma: no cover - exercised only on SO_REUSEPORT-less OSes
            # Kept open for the supervisor's life too: respawned workers
            # inherit this very socket at fork time.
            self._listen_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listen_sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            self._listen_sock.bind((self.host, self.port))
            self._listen_sock.listen(128)
            self.port = self._listen_sock.getsockname()[1]

        try:
            for worker_id in range(self.workers):
                pid, admin_port = self._fork_worker(
                    worker_id, service, generation, writer=(worker_id == 0)
                )
                with self._lock:
                    self._slots.append(
                        _WorkerSlot(
                            worker_id, pid, admin_port, self.backoff_base
                        )
                    )
                self.pids.append(pid)
                self.worker_ports.append(admin_port)
        except SnapshotError:
            self.stop()
            raise
        del service  # the parent's copy served its purpose at fork time

        self._admin_httpd = ThreadingHTTPServer(
            (self.host, 0),
            type(
                "BoundSupervisorAdminHandler",
                (_SupervisorAdminHandler,),
                {"supervisor": self},
            ),
        )
        self.admin_port = self._admin_httpd.server_address[1]
        threading.Thread(
            target=self._admin_httpd.serve_forever,
            name="repro-supervisor-admin",
            daemon=True,
        ).start()

        self._stop_event.clear()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-supervisor-monitor",
            daemon=True,
        )
        self._monitor.start()
        self._started = True
        return self.host, self.port

    def _fork_worker(
        self,
        worker_id: int,
        service: QueryService,
        generation: int,
        writer: bool,
    ) -> tuple[int, int]:
        """Fork one worker and wait for its ready report: (pid, admin_port)."""
        r, w = os.pipe()
        pid = os.fork()
        if pid == 0:
            # Child: never returns.
            os.close(r)
            try:
                self._worker_main(worker_id, service, generation, w, writer)
            finally:
                os._exit(0)
        os.close(w)
        with os.fdopen(r, "r", encoding="utf-8") as f:
            line = f.readline()
        try:
            admin_port = int(json.loads(line)["admin_port"])
        except (ValueError, KeyError, json.JSONDecodeError):
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
            raise SnapshotError(
                "a supervisor worker failed to start "
                f"(bad ready report {line!r})"
            )
        return pid, admin_port

    def stop(self) -> None:
        """Stop the monitor, SIGTERM every live worker, reap (idempotent).

        Safe when workers already died on their own: signalling a gone
        pid and reaping an already-reaped child are both swallowed.
        """
        self._stop_event.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        if self._admin_httpd is not None:
            self._admin_httpd.shutdown()
            self._admin_httpd.server_close()
            self._admin_httpd = None
            self.admin_port = None
        with self._lock:
            targets = [s.pid for s in self._slots if s.alive]
            self._slots = []
        for pid in targets:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        for pid in targets:
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass
        self.pids = []
        self.worker_ports = []
        for sock in (self._placeholder, self._listen_sock):
            if sock is not None:
                sock.close()
        self._placeholder = None
        self._listen_sock = None
        self._started = False

    def __enter__(self) -> "ServiceSupervisor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- self-healing monitor ------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(self.monitor_interval):
            now = time.monotonic()
            try:
                self._reap(now)
                if self.respawn:
                    self._respawn_due(now)
                self._probe(now)
            except Exception as exc:  # pragma: no cover - keep monitoring
                self._log(f"monitor tick failed: {exc}")

    def _reap(self, now: float) -> None:
        """Notice exited workers; writer death triggers promotion."""
        with self._lock:
            live = [s for s in self._slots if s.alive]
        for slot in live:
            try:
                pid, status = os.waitpid(slot.pid, os.WNOHANG)
            except ChildProcessError:
                # Reaped elsewhere (a racing stop()): treat as exited.
                pid, status = slot.pid, None
            if pid == 0:
                continue
            with self._lock:
                slot.alive = False
                slot.exit_code = (
                    os.waitstatus_to_exitcode(status)
                    if status is not None
                    else None
                )
                if now - slot.spawned_at > self.crash_loop_window:
                    # It ran healthily for a full window; forget the
                    # escalation and start the backoff ladder over.
                    slot.backoff = self.backoff_base
                cutoff = now - self.crash_loop_window
                slot.crash_times = [
                    t for t in slot.crash_times if t >= cutoff
                ]
                slot.crash_times.append(now)
                if len(slot.crash_times) >= self.crash_loop_threshold:
                    slot.disabled = True
                self._schedule_respawn_locked(slot, now)
                slot.probe_misses = 0
                was_writer = slot.worker_id == self._writer_id
                disabled = slot.disabled
            self._log(
                f"worker {slot.worker_id} (pid {pid}) exited "
                f"(code {slot.exit_code!r})"
                + ("; circuit breaker tripped" if disabled else "")
            )
            if was_writer:
                self._promote_new_writer(exclude=slot.worker_id)

    def _schedule_respawn_locked(self, slot: "_WorkerSlot", now: float) -> None:
        """Set the slot's next respawn time and escalate its backoff.

        Caller holds ``_lock``.  The delay is the slot's current backoff
        stretched by a uniform factor in ``[1, 1 + backoff_jitter]`` —
        workers that crashed in the same instant get de-correlated
        respawn times instead of re-forking (and potentially re-crashing
        on the same poison input) in lockstep.
        """
        jitter = 1.0 + self.backoff_jitter * self._backoff_rng.random()
        slot.next_respawn = now + slot.backoff * jitter
        slot.backoff = min(slot.backoff * 2.0, self.backoff_max)

    def _promote_new_writer(self, exclude: int) -> None:
        """Hand writership to the lowest-id live worker (if any).

        If no sibling can take it, the dead slot keeps writership and
        its respawn comes back as the writer.
        """
        with self._lock:
            candidates = sorted(
                (s for s in self._slots if s.alive and s.worker_id != exclude),
                key=lambda s: s.worker_id,
            )
        for cand in candidates:
            try:
                self._post(cand.admin_port, "/admin/promote")
            except OSError as exc:
                self._log(
                    f"promoting worker {cand.worker_id} failed: {exc}"
                )
                continue
            with self._lock:
                self._writer_id = cand.worker_id
            self._log(f"worker {cand.worker_id} promoted to writer")
            return
        self._log(
            f"no live worker to promote; slot {exclude} respawns as writer"
        )

    def _respawn_due(self, now: float) -> None:
        with self._lock:
            due = [
                s
                for s in self._slots
                if not s.alive and not s.disabled and now >= s.next_respawn
            ]
            writer_id = self._writer_id
        for slot in due:
            try:
                # Respawn from the CURRENT generation, not the one the
                # fleet booted with: the watermark is authoritative when
                # present (mutations advanced it), the header is the
                # fallback for a never-mutated snapshot.
                generation = read_watermark(self.snapshot_path)
                if generation is None:
                    generation = snapshot_mod.generation_of(self.snapshot_path)
                service = snapshot_mod.load(self.snapshot_path, mmap=True)
                ex = service.executor
                ex._pool_width = (
                    ex._pool._max_workers if ex._pool is not None else 0
                )
                ex.close()
                pid, admin_port = self._fork_worker(
                    slot.worker_id,
                    service,
                    generation,
                    writer=(slot.worker_id == writer_id),
                )
                del service
            except (OSError, SnapshotError) as exc:
                self._log(
                    f"respawn of worker {slot.worker_id} failed: {exc}"
                )
                with self._lock:
                    self._schedule_respawn_locked(slot, now)
                continue
            with self._lock:
                slot.pid = pid
                slot.admin_port = admin_port
                slot.alive = True
                slot.restarts += 1
                slot.spawned_at = time.monotonic()
                slot.probe_misses = 0
                slot.exit_code = None
                self.pids[slot.worker_id] = pid
                self.worker_ports[slot.worker_id] = admin_port
            self._log(
                f"respawned worker {slot.worker_id} (pid {pid}, "
                f"generation {generation})"
            )

    def _probe(self, now: float) -> None:
        """Kill workers that stopped answering their admin ``/healthz``."""
        with self._lock:
            due = [
                s
                for s in self._slots
                if s.alive and now - s.last_probe >= self.probe_interval
            ]
        timeout = min(1.0, self.fetch_timeout)
        for slot in due:
            slot.last_probe = now
            try:
                with urllib.request.urlopen(
                    f"http://{self.host}:{slot.admin_port}/healthz",
                    timeout=timeout,
                ) as resp:
                    resp.read()
                slot.probe_misses = 0
            except OSError:
                slot.probe_misses += 1
                if slot.probe_misses >= self.probe_failures:
                    self._log(
                        f"worker {slot.worker_id} missed "
                        f"{slot.probe_misses} health probes; killing"
                    )
                    try:
                        os.kill(slot.pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass
                    slot.probe_misses = 0

    def health(self) -> dict:
        """Fleet liveness: per-worker state plus an overall verdict."""
        with self._lock:
            writer_id = self._writer_id
            workers = [
                {
                    "worker_id": s.worker_id,
                    "pid": s.pid,
                    "alive": s.alive,
                    "writer": s.worker_id == writer_id,
                    "restarts": s.restarts,
                    "disabled": s.disabled,
                    "exit_code": s.exit_code,
                }
                for s in self._slots
            ]
        alive = sum(1 for w in workers if w["alive"])
        if alive == len(workers):
            status = "ok"
        elif alive:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "alive": alive,
            "worker_count": len(workers),
            "writer_id": writer_id,
            "respawn": self.respawn,
            "watermark_corrupt_reads": watermark_corrupt_reads(),
            "workers": workers,
        }

    # -- aggregation ---------------------------------------------------
    def _fetch(self, port: int, path: str) -> bytes:
        """GET from a worker's admin port, with one bounded retry.

        A single retry rides out the tiny window where a worker is being
        respawned on a new admin port; anything longer belongs to the
        caller (the aggregators tolerate per-worker failure).
        """
        url = f"http://{self.host}:{port}{path}"
        try:
            with urllib.request.urlopen(
                url, timeout=self.fetch_timeout
            ) as resp:
                return resp.read()
        except OSError:
            time.sleep(min(0.1, self.fetch_timeout / 10.0))
            with urllib.request.urlopen(
                url, timeout=self.fetch_timeout
            ) as resp:
                return resp.read()

    def _post(self, port: int, path: str, body: bytes = b"{}") -> bytes:
        req = urllib.request.Request(
            f"http://{self.host}:{port}{path}",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=self.fetch_timeout) as resp:
            return resp.read()

    def aggregate_stats(self) -> dict:
        """Per-worker ``/stats`` fanned out over the private admin ports,
        plus summed request counters for the fleet.

        A dead or hung worker does not fail the aggregate: its entry is
        replaced with an ``unreachable`` marker and the sums cover the
        workers that answered.
        """
        with self._lock:
            ports = list(self.worker_ports)
        workers = []
        for worker_id, port in enumerate(ports):
            try:
                workers.append(json.loads(self._fetch(port, "/stats")))
            except (OSError, ValueError) as exc:
                workers.append(
                    {
                        "worker_id": worker_id,
                        "status": "unreachable",
                        "error": str(exc),
                    }
                )
        total_queries = sum(
            w.get("telemetry", {}).get("n_queries", 0) for w in workers
        )
        return {
            "worker_count": len(workers),
            "generations": [
                w["serving"]["snapshot_generation"]
                for w in workers
                if "serving" in w
            ],
            "unreachable": [
                w["worker_id"] for w in workers if w.get("status") == "unreachable"
            ],
            "total_queries": total_queries,
            "workers": workers,
        }

    def aggregate_metrics(self) -> str:
        """Every worker's Prometheus exposition, one labeled block each.

        Unreachable workers contribute a comment line instead of failing
        the whole scrape.
        """
        with self._lock:
            ports = list(self.worker_ports)
        blocks = []
        for worker_id, port in enumerate(ports):
            try:
                text = self._fetch(port, "/metrics").decode("utf-8")
            except OSError:
                blocks.append(f"# supervisor worker {worker_id} unreachable")
                continue
            blocks.append(f"# supervisor worker {worker_id}\n{text}")
        return "\n".join(blocks)

    # -- child side ----------------------------------------------------
    def _worker_main(
        self,
        worker_id: int,
        service: QueryService,
        generation: int,
        ready_fd: int,
        writer: bool,
    ) -> None:
        signal.signal(signal.SIGTERM, lambda *_: os._exit(0))
        _revive_pool(service)
        holder = {"service": service}
        context = {
            "worker_id": worker_id,
            "worker_count": self.workers,
            "snapshot_generation": int(generation),
            "writer": writer,
        }
        publish_lock = threading.Lock()
        watch_stop = threading.Event()

        def _on_mutate() -> None:
            # Single-writer publish: bump generation, rewrite the snapshot
            # (atomic rename), then advance the watermark — readers always
            # see watermark <= snapshot generation.
            with publish_lock:
                gen = context["snapshot_generation"] + 1
                holder["service"].save(self.snapshot_path, generation=gen)
                write_watermark(self.snapshot_path, gen)
                context["snapshot_generation"] = gen

        gate = (
            AdmissionGate(
                max_inflight=self.max_inflight, max_queue=self.max_queue
            )
            if self.max_inflight is not None
            else None
        )
        handler = make_handler(
            provider=lambda: holder["service"],
            quiet=self.quiet,
            context=context,
            writable=writer,
            on_mutate=_on_mutate if writer else None,
            gate=gate,
        )

        def _promote() -> None:
            # Flip this worker into the writer role in place.  Class
            # attributes, so the change covers requests already routed to
            # existing handler instances too; the watermark watcher stops
            # (a writer must never hot-swap its live, mutable service).
            watch_stop.set()
            handler.on_mutate = staticmethod(_on_mutate)
            handler.writable = True
            context["writer"] = True

        # /admin/promote exists ONLY on the private admin port: binding
        # the hook on a subclass keeps the public handler 404-ing it, so
        # nothing on the load-balanced port can mint a second writer.
        admin_handler = type(
            "AdminBoundHandler", (handler,), {"promote_hook": staticmethod(_promote)}
        )
        if self._listen_sock is not None:
            httpd = _inherited_server(self._listen_sock, handler)
        else:
            httpd = _ReuseportHTTPServer((self.host, self.port), handler)
        # Private admin endpoint: the parent aggregates /stats + /metrics
        # across workers here, bypassing the load-balanced public port.
        admin = ThreadingHTTPServer((self.host, 0), admin_handler)
        threading.Thread(target=admin.serve_forever, daemon=True).start()

        if not writer:
            def _watch() -> None:
                while not watch_stop.wait(self.poll_interval):
                    gen = read_watermark(self.snapshot_path)
                    if gen is None or gen <= context["snapshot_generation"]:
                        continue
                    try:
                        fresh = snapshot_mod.load(self.snapshot_path, mmap=True)
                    except SnapshotError:  # pragma: no cover - publish race
                        continue
                    holder["service"] = fresh
                    context["snapshot_generation"] = gen

            threading.Thread(target=_watch, daemon=True).start()

        with os.fdopen(ready_fd, "w", encoding="utf-8") as f:
            f.write(
                json.dumps(
                    {
                        "worker_id": worker_id,
                        "pid": os.getpid(),
                        "admin_port": admin.server_address[1],
                    }
                )
                + "\n"
            )
        try:
            httpd.serve_forever()
        except Exception:  # pragma: no cover - fatal worker error
            os._exit(1)


def serve_forked(
    snapshot_path: "str | os.PathLike[str]",
    workers: int = 2,
    host: str = "127.0.0.1",
    port: int = 8765,
    quiet: bool = False,
    max_inflight: Optional[int] = None,
    max_queue: int = 0,
) -> None:
    """Run the supervisor until interrupted; the ``repro serve --workers``
    entry point."""
    sup = ServiceSupervisor(
        snapshot_path, workers=workers, host=host, port=port, quiet=quiet,
        max_inflight=max_inflight, max_queue=max_queue,
    )
    host, port = sup.start()
    print(
        f"repro supervisor serving on http://{host}:{port} "
        f"({workers} workers, snapshot {snapshot_path}, "
        f"admin http://{host}:{sup.admin_port})"
    )
    sys.stdout.flush()
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("shutting down workers")
    finally:
        sup.stop()
