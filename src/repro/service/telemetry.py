"""Per-query latency and throughput accounting for the query service.

Lightweight, dependency-free counters: the service records one
:class:`QueryRecord` per answered query and the telemetry object keeps a
bounded ring of recent latencies plus lifetime aggregates.  ``summary()``
is JSON-ready and is what ``GET /stats`` on the HTTP endpoint returns.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.service.observability import Histogram


@dataclass
class QueryRecord:
    """What the service knows about one answered query.

    ``cache_misses`` counts the leaves whose executor evaluation this query
    *caused* (a leaf shared across a batch is charged to the first query
    that uses it); ``shared_leaves`` counts leaves this query consumed that
    another query of the same batch already paid for; ``cache_upgrades``
    counts stale cached answers refreshed from the delta shard.
    """

    latency_s: float
    n_leaves_raw: int
    n_leaves_unique: int
    cache_hits: int
    cache_misses: int
    out_size: int
    cache_upgrades: int = 0
    shared_leaves: int = 0


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of a pre-sorted list (``q`` in [0, 100])."""
    if not sorted_values:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


class ServiceTelemetry:
    """Aggregates :class:`QueryRecord` streams into serving metrics.

    Parameters
    ----------
    window:
        How many recent latencies to keep for percentile estimates; lifetime
        totals are unaffected by the window.
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self._latencies: deque[float] = deque(maxlen=window)  # guarded-by: _lock
        # Lifetime latency distributions in fixed log-spaced buckets: the
        # window above forgets, these never do, and they are the same
        # Histogram objects the metrics registry renders on /metrics
        # (adopted by ServiceObservability), so /stats quantiles and
        # scraped bucket counts come from one source.
        self.latency_histogram = Histogram()
        self.batch_histogram = Histogram()
        # /stats may be read by one server thread while another records a
        # query; sorting the deque mid-append raises RuntimeError otherwise.
        self._lock = threading.Lock()
        self.n_queries = 0  # guarded-by: _lock
        self.n_batches = 0  # guarded-by: _lock
        self.total_latency_s = 0.0  # guarded-by: _lock
        self.total_batch_wall_s = 0.0  # guarded-by: _lock
        self.total_leaves_raw = 0  # guarded-by: _lock
        self.total_leaves_unique = 0  # guarded-by: _lock
        self.total_cache_hits = 0  # guarded-by: _lock
        self.total_cache_misses = 0  # guarded-by: _lock
        self.total_cache_upgrades = 0  # guarded-by: _lock
        self.total_shared_leaves = 0  # guarded-by: _lock
        self.total_out = 0  # guarded-by: _lock

    def record_query(self, record: QueryRecord) -> None:
        with self._lock:
            self.n_queries += 1
            self.total_latency_s += record.latency_s
            self.total_leaves_raw += record.n_leaves_raw
            self.total_leaves_unique += record.n_leaves_unique
            self.total_cache_hits += record.cache_hits
            self.total_cache_misses += record.cache_misses
            self.total_cache_upgrades += record.cache_upgrades
            self.total_shared_leaves += record.shared_leaves
            self.total_out += record.out_size
            self._latencies.append(record.latency_s)
        self.latency_histogram.observe(record.latency_s)

    def record_batch(self, n_queries: int, wall_s: float) -> None:
        """One ``search_batch`` call: batch count and its wall-clock time."""
        del n_queries  # queries were recorded individually
        with self._lock:
            self.n_batches += 1
            self.total_batch_wall_s += wall_s
        self.batch_histogram.observe(wall_s)

    def _throughput_qps_locked(self) -> float:
        if self.total_batch_wall_s <= 0.0:
            return 0.0
        return self.n_queries / self.total_batch_wall_s

    @property
    def throughput_qps(self) -> float:
        """Lifetime queries per second of batch wall-clock time."""
        # Two counters are read; without the lock a recorder thread could
        # update one between the reads (a torn ratio).
        with self._lock:
            return self._throughput_qps_locked()

    def summary(self) -> dict:
        """JSON-ready aggregate metrics.

        Undefined values (no queries yet) are ``None``, not NaN —
        ``json.dumps`` would emit the non-standard ``NaN`` literal that
        strict JSON parsers reject.

        The whole snapshot is taken under the telemetry lock: ``/stats`` is
        served by one ``ThreadingHTTPServer`` thread while others record
        queries, and counters read outside the lock could tear (e.g.
        ``n_queries`` from one batch with ``total_latency_s`` from the
        next).
        """
        with self._lock:
            recent = sorted(self._latencies)
            n_queries = self.n_queries
            n_batches = self.n_batches
            qps = self._throughput_qps_locked()
            total_latency_s = self.total_latency_s
            leaves_raw = self.total_leaves_raw
            leaves_unique = self.total_leaves_unique
            cache_hits = self.total_cache_hits
            cache_misses = self.total_cache_misses
            cache_upgrades = self.total_cache_upgrades
            shared_leaves = self.total_shared_leaves
            total_out = self.total_out

        def defined(value: float) -> Optional[float]:
            return None if math.isnan(value) else value

        mean = total_latency_s / n_queries if n_queries else float("nan")
        return {
            "n_queries": n_queries,
            "n_batches": n_batches,
            "throughput_qps": qps,
            "latency_mean_s": defined(mean),
            "latency_p50_s": defined(percentile(recent, 50.0)),
            "latency_p95_s": defined(percentile(recent, 95.0)),
            "latency_max_s": recent[-1] if recent else None,
            # Lifetime bucket-derived quantiles (upper bucket bound, so
            # conservative within one power-of-two bucket) — unlike the
            # windowed percentiles above, these never forget.
            "latency_bucket_p50_s": defined(self.latency_histogram.quantile(50.0)),
            "latency_bucket_p95_s": defined(self.latency_histogram.quantile(95.0)),
            "latency_bucket_p99_s": defined(self.latency_histogram.quantile(99.0)),
            "leaves_raw": leaves_raw,
            "leaves_unique": leaves_unique,
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "cache_upgrades": cache_upgrades,
            "shared_leaves": shared_leaves,
            "mean_out_size": defined(
                total_out / n_queries if n_queries else float("nan")
            ),
        }
