"""Named failpoints for fault-injection tests (chaos suite, benchmarks).

A *failpoint* is a named hook compiled into a handful of serving-layer
boundaries — shard evaluation, snapshot loading, HTTP request handling,
federation node RPC — that does nothing in production and performs a
scripted fault when armed:

- ``sleep:SECONDS`` — stall (a slow shard / hung worker);
- ``raise`` — raise :class:`FailpointError` (an internal crash; the
  server's catch-all turns it into a 500);
- ``exit[:CODE]`` — ``os._exit`` the process (a worker death the
  supervisor must notice and heal).

Arming
------
Via the environment (inherited by forked supervisor workers)::

    REPRO_FAILPOINTS="shard_eval=sleep:0.05,handler=raise" repro serve ...

or programmatically from tests (:func:`arm` / :func:`disarm`), or from
the CLI (``repro serve --failpoints SPEC``).  Specs are
``name=action[:arg]`` pairs separated by ``,`` or ``;``; only the names
in :data:`POINTS` are accepted, so a typo fails loudly instead of
silently never firing.

Zero-cost discipline
--------------------
Mirrors the tracer convention (PR 6): every call site reads the module
attribute and performs one pointer comparison before anything else ::

    from repro.service import faults
    ...
    if faults.ARMED is not None:
        faults.hit("shard_eval")

:data:`ARMED` is ``None`` whenever no failpoint is armed — the disarmed
path costs one attribute load and an ``is`` check, no dict lookups, no
calls.  The ``failpoint-discipline`` lint rule
(:mod:`repro.analysis.rules.failpoint_discipline`) enforces that every
``faults.hit`` call is dominated by that guard and that no failpoint
touchpoint appears inside a ``# lint: hot-path`` function.

Examples
--------
>>> from repro.service import faults
>>> faults.arm("handler=sleep:0.25")
>>> faults.ARMED
{'handler': ('sleep', 0.25)}
>>> faults.disarm()
>>> faults.ARMED is None
True
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Tuple, Union

#: Environment variable holding the arming spec (read at import time, so
#: pre-forked supervisor workers inherit armed failpoints from the parent).
FAILPOINT_ENV = "REPRO_FAILPOINTS"

#: Every failpoint compiled into the tree.  Arming an unknown name is an
#: error: a misspelled spec that "arms" nothing would make a chaos test
#: silently vacuous.  ``node_rpc`` fires inside the federation
#: coordinator's per-node RPC attempt (:mod:`repro.service.federation`),
#: so a chaos test can stall or fail every scatter leg without touching
#: the node processes.
POINTS = frozenset({"shard_eval", "snapshot_load", "handler", "node_rpc"})

_ACTIONS = frozenset({"sleep", "raise", "exit"})

#: The armed table: ``{point: (action, arg)}`` — or None (the production
#: state).  Call sites must guard on ``faults.ARMED is not None`` before
#: calling :func:`hit` (lint-checked).
ARMED: Optional[Dict[str, Tuple[str, float]]] = None


class FailpointError(RuntimeError):
    """The scripted failure of a ``raise`` failpoint.

    Deliberately *not* a :class:`~repro.errors.ReproError`: an injected
    fault simulates an internal crash, and the HTTP layer must answer it
    with a 500 (catch-all), not a 400 (client error).
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected failure at failpoint {point!r}")
        self.point = point


def parse_spec(spec: str) -> Dict[str, Tuple[str, float]]:
    """Parse ``"name=action[:arg],..."`` into an armed table.

    >>> parse_spec("shard_eval=sleep:0.5; handler=exit:3")
    {'shard_eval': ('sleep', 0.5), 'handler': ('exit', 3.0)}
    """
    table: Dict[str, Tuple[str, float]] = {}
    for part in spec.replace(";", ",").split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, action_spec = part.partition("=")
        name = name.strip()
        if not sep:
            raise ValueError(f"failpoint spec {part!r} is not name=action")
        if name not in POINTS:
            raise ValueError(
                f"unknown failpoint {name!r}; known points: {sorted(POINTS)}"
            )
        action, _sep, arg_text = action_spec.strip().partition(":")
        if action not in _ACTIONS:
            raise ValueError(
                f"unknown failpoint action {action!r}; "
                f"known actions: {sorted(_ACTIONS)}"
            )
        if arg_text:
            try:
                arg = float(arg_text)
            except ValueError:
                raise ValueError(f"bad failpoint argument {arg_text!r}")
        else:
            arg = 1.0 if action == "exit" else 0.0
        if action == "sleep" and arg < 0:
            raise ValueError("sleep argument must be >= 0")
        table[name] = (action, arg)
    return table


def arm(spec: Union[str, Dict[str, Tuple[str, float]], None]) -> None:
    """Arm failpoints from a spec string (or a pre-parsed table).

    Passing ``None``, an empty string, or an empty table disarms.
    Validation happens here, before publication, so :data:`ARMED` is
    either ``None`` or a fully valid table — :func:`hit` never has to
    re-validate on the injection path.
    """
    global ARMED
    if spec is None:
        ARMED = None
        return
    table = parse_spec(spec) if isinstance(spec, str) else dict(spec)
    for name, (action, _arg) in table.items():
        if name not in POINTS:
            raise ValueError(f"unknown failpoint {name!r}")
        if action not in _ACTIONS:
            raise ValueError(f"unknown failpoint action {action!r}")
    ARMED = table or None


def disarm() -> None:
    """Return to the production (no-op) state."""
    global ARMED
    ARMED = None


def hit(point: str) -> None:
    """Fire the failpoint ``point`` if it is armed.

    Call sites must pre-check ``faults.ARMED is not None`` — the call
    itself is the *armed* path and may be arbitrarily expensive.
    """
    table = ARMED
    if table is None:
        return
    entry = table.get(point)
    if entry is None:
        return
    action, arg = entry
    if action == "sleep":
        time.sleep(arg)
    elif action == "raise":
        raise FailpointError(point)
    else:  # pragma: no cover - kills the (test worker) process
        os._exit(int(arg))


_env_spec = os.environ.get(FAILPOINT_ENV)
if _env_spec:  # pragma: no cover - exercised via forked workers
    arm(_env_spec)
del _env_spec
