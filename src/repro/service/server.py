"""Stdlib-HTTP JSON endpoint over a :class:`~repro.service.QueryService`.

Wire format (all bodies JSON):

``POST /search``
    ``{"expression": EXPR, "record_times": false, "trace": false}`` →
    ``{"indexes": [...], "emit_times": [...], "stats": {...}}``; with
    ``record_times`` the emit stamps are *relative to the query start* (a
    ``duration_s`` field is included) — absolute ``perf_counter`` values
    are meaningless outside the server process.  With ``"trace": true``
    (or a service constructed with ``tracing=True``; an explicit
    ``false`` opts out) the payload gains ``"trace"``: the span tree of
    the serving pipeline, all times relative to the query start (see
    :mod:`repro.service.observability` for the schema).
``POST /search/batch``
    ``{"expressions": [EXPR, ...]}`` →
    ``{"results": [{"indexes": [...], "stats": {...}}, ...]}``.
    Accepts the same ``record_times`` and ``trace`` flags as
    ``/search``: with ``record_times`` each result carries its
    batch-start-relative ``emit_times`` plus ``duration_s``, and with
    tracing the *response* carries one top-level ``"trace"`` span tree
    for the whole batch (per-query assembly spans are tagged with their
    query index) on the same clock.
    With ``"format": "bitset"`` each result instead carries the packed
    answer ``{"bitset": {"encoding": "u64le+b64", "n_bits": N, "words":
    B64}, "out_size": k, "stats": {...}}`` — the base64 of the
    little-endian ``uint64`` word buffer, encoded zero-copy from the
    warm path's bitmap (no per-index Python objects are ever
    materialized).  Bit ``i`` set means dataset ``i`` is in the answer;
    decode with :func:`repro.core.bitset.bitmap_from_wire`.  For batch
    answers averaging more than ~64/6 members per 64 datasets the packed
    form is also smaller on the wire than the decimal index list.
``POST /datasets``
    ``{"datasets": [[[x, y], ...], ...]}`` (one point array per new
    dataset) → the :meth:`~repro.service.service.QueryService.add_datasets`
    receipt ``{"indexes": [...], "rebuilt": false, ...}``.  Ingestion is
    live: cached leaf answers are upgraded from the delta shard, not
    flushed.
``DELETE /datasets``
    ``{"indexes": [i, ...]}`` → the
    :meth:`~repro.service.service.QueryService.remove_datasets` receipt;
    removal is a read-time mask (indexes are stable, never reused).
``POST /cache/invalidate``
    → ``{"generation": n}``
``GET /stats``
    → the service's :meth:`~repro.service.service.QueryService.stats`
``GET /stats/slow``
    → ``{"threshold_ms": t, "n_recorded": n, "slow_queries": [...]}`` —
    the k worst queries at or above the slow-query threshold, worst
    first, each with its stats (and trace, when the query was traced).
``GET /metrics``
    → the Prometheus text exposition: per-stage/per-endpoint latency
    histograms, cache and shard gauges, lifetime counters.  Rendered
    from the same snapshot pass as ``/stats``, so the two never
    disagree.
``GET /healthz``
    → ``{"status": "ok", "n_datasets": N, "n_live": L, "n_shards": S,
    "snapshot_generation": g, "worker_id": w, "worker_count": c}`` — the
    serving fields identify which pre-forked worker answered and which
    snapshot generation it is serving (``0``/``1`` defaults for a plain
    single-process server); ``/stats`` carries the same trio under a
    ``"serving"`` key.

Multi-process serving (:mod:`repro.service.supervisor`) binds one handler
class per worker over a *provider* — a zero-argument callable returning
the current service — so a sibling worker can hot-swap its engine when
the writer publishes a new snapshot generation without re-creating the
listening socket.  Non-writer workers are constructed read-only: mutating
endpoints (``POST /datasets``, ``DELETE /datasets``) answer ``409`` and
name the writer, so a load balancer spraying requests across workers
cannot fork divergent states.

``EXPR`` is a recursive object::

    {"op": "and" | "or", "children": [EXPR, ...]}
    {"op": "ptile", "lo": [..], "hi": [..], "theta": [a, b?]}   # b omitted/null = inf
    {"op": "pref", "vector": [..], "k": 5, "tau": 0.8}

The server is a ``ThreadingHTTPServer``; concurrency is safe because the
service serializes shard access with per-shard locks and the cache and
telemetry guard their mutable state with their own locks.
"""

from __future__ import annotations

import json
import math
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional

import numpy as np

from repro.core.bitset import DatasetBitmap
from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.core.predicates import And, Expression, Or, Predicate
from repro.core.results import QueryResult
from repro.errors import QueryError, ReproError
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.service import faults
from repro.service.admission import AdmissionGate
from repro.service.service import QueryService


# ----------------------------------------------------------------------
# Expression (de)serialization
# ----------------------------------------------------------------------
def expression_from_json(obj: dict) -> Expression:
    """Parse the wire format into a predicate expression tree."""
    if not isinstance(obj, dict) or "op" not in obj:
        raise QueryError("expression must be an object with an 'op' field")
    op = obj["op"]
    if op in ("and", "or"):
        children = obj.get("children")
        if not isinstance(children, list) or not children:
            raise QueryError(f"'{op}' needs a non-empty 'children' list")
        parsed = [expression_from_json(c) for c in children]
        return And(parsed) if op == "and" else Or(parsed)
    if op == "ptile":
        try:
            rect = Rectangle(obj["lo"], obj["hi"])
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"bad ptile leaf: {exc}")
        theta = obj.get("theta")
        if not isinstance(theta, list) or not 1 <= len(theta) <= 2:
            raise QueryError("'theta' must be [a] or [a, b]")
        try:
            lo = float(theta[0])
            hi = (
                float(theta[1])
                if len(theta) == 2 and theta[1] is not None
                else math.inf
            )
            return Predicate(PercentileMeasure(rect), Interval(lo, hi))
        except (TypeError, ValueError) as exc:
            raise QueryError(f"bad ptile theta: {exc}")
    if op == "pref":
        try:
            measure = PreferenceMeasure(
                np.asarray(obj["vector"], dtype=float), k=int(obj["k"])
            )
            tau = float(obj["tau"])
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"bad pref leaf: {exc}")
        return Predicate(measure, Interval.at_least(tau))
    raise QueryError(f"unknown op {op!r}")


def expression_to_json(expression: Expression) -> dict:
    """Inverse of :func:`expression_from_json` (round-trips the AST)."""
    if isinstance(expression, (And, Or)):
        return {
            "op": "and" if isinstance(expression, And) else "or",
            "children": [expression_to_json(c) for c in expression.children],
        }
    if isinstance(expression, Predicate):
        measure = expression.measure
        if expression.theta.lo_open or expression.theta.hi_open:
            # The wire format has no open/closed flags; parsing the closed
            # form back would silently flip boundary membership.
            raise QueryError(
                "open-endpoint theta intervals are not representable in the "
                "JSON wire format"
            )
        if isinstance(measure, PercentileMeasure):
            theta: list = [expression.theta.lo]
            if math.isfinite(expression.theta.hi):
                theta.append(expression.theta.hi)
            return {
                "op": "ptile",
                "lo": [float(x) for x in measure.rect.lo],
                "hi": [float(x) for x in measure.rect.hi],
                "theta": theta,
            }
        if isinstance(measure, PreferenceMeasure):
            if math.isfinite(expression.theta.hi):
                # The engine only answers one-sided preference predicates;
                # dropping the upper bound here would silently weaken the
                # query on the way back in.
                raise QueryError(
                    "preference predicates serialize only one-sided "
                    "theta = [a, inf)"
                )
            return {
                "op": "pref",
                "vector": [float(x) for x in measure.vector],
                "k": measure.k,
                "tau": expression.theta.lo,
            }
    raise QueryError(f"cannot serialize {type(expression).__name__}")


def _result_bitmap(result: QueryResult, service: QueryService) -> DatasetBitmap:
    """The result's packed answer, zero-copy where the warm path made one.

    Bitset-algebra results carry their bitmap straight through — encoding
    touches only the word buffer, never a Python index list.  Set-algebra
    services still honor the wire format by packing the index list here.
    """
    if result.bitmap is not None:
        return result.bitmap
    return DatasetBitmap.from_indices(result.indexes, service.n_datasets)


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
#: Paths that get their own ``endpoint`` label on the request metrics;
#: anything else is folded into ``"other"`` so an URL-scanning client
#: cannot blow up the label cardinality.
_KNOWN_ENDPOINTS = frozenset(
    {
        "/healthz",
        "/stats",
        "/stats/slow",
        "/metrics",
        "/search",
        "/search/batch",
        "/datasets",
        "/cache/invalidate",
        "/admin/promote",
    }
)

#: Endpoints the admission gate applies to: the ones that do real query
#: work.  Health probes, stats and mutations stay ungated so operators
#: can always see (and heal) an overloaded server.
_GATED_ENDPOINTS = frozenset({"/search", "/search/batch"})


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Shared JSON-over-HTTP plumbing for the repo's stdlib handlers.

    Owns nothing but the wire mechanics: JSON request parsing with a
    :class:`~repro.errors.QueryError` on malformed bodies, JSON and
    Prometheus-text responses with correct ``Content-Length``, quiet
    logging, and the ``_status`` stamp the metrics observers read.  The
    service handler below and the federation coordinator's handler
    (:mod:`repro.service.federation`) both subclass it, so the two
    servers cannot drift on framing details.
    """

    quiet: bool = True
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args: object) -> None:  # pragma: no cover
        if not self.quiet:
            super().log_message(fmt, *args)

    def _send_json(
        self,
        payload: dict,
        status: int = 200,
        extra_headers: Optional[dict] = None,
    ) -> None:
        self._status = status
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if extra_headers:
            for name, value in extra_headers.items():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, body: str, status: int = 200) -> None:
        self._status = status
        raw = body.encode("utf-8")
        self.send_response(status)
        # The Prometheus text exposition content type.
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            obj = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise QueryError(f"request body is not valid JSON: {exc}")
        if not isinstance(obj, dict):
            raise QueryError("request body must be a JSON object")
        return obj


class _ServiceRequestHandler(JsonRequestHandler):
    """Routes HTTP verbs to the bound service; set via ``make_handler``.

    Every handled request is observed into the service's
    ``repro_request_seconds{endpoint=...}`` histogram and
    ``repro_requests_total{endpoint=..., status=...}`` counter.

    ``service`` is either a plain class attribute (single-process mode)
    or a property over a provider callable (supervisor workers, which
    hot-swap the engine on snapshot-generation bumps).  ``context`` is a
    *shared, mutable* dict the supervisor updates in place — worker
    identity and the serving snapshot generation — read fresh on every
    request.
    """

    service: QueryService  # injected by make_handler
    writable: bool = True
    #: Called (no args) after each successful mutation — the supervisor's
    #: writer worker publishes a new snapshot generation here.
    on_mutate: Optional[Callable[[], None]] = None
    #: Admission gate for the search endpoints; None = admit everything.
    gate: Optional[AdmissionGate] = None
    #: Writer-promotion hook, bound ONLY on a supervisor worker's admin
    #: port (the public port must 404 it — a load balancer reaching it
    #: could mint a second writer).  Flips this worker writable.
    promote_hook: Optional[Callable[[], None]] = None
    context: dict = {}

    # -- helpers -------------------------------------------------------
    def _observe(self, t0: float) -> None:
        endpoint = self.path if self.path in _KNOWN_ENDPOINTS else "other"
        self.service.observability.observe_request(
            endpoint, time.perf_counter() - t0, getattr(self, "_status", 500)
        )

    def _serving_fields(self) -> dict:
        """Worker identity + snapshot generation (defaults single-process)."""
        ctx = self.context
        return {
            "snapshot_generation": int(ctx.get("snapshot_generation", 0)),
            "worker_id": int(ctx.get("worker_id", 0)),
            "worker_count": int(ctx.get("worker_count", 1)),
        }

    def _mutated(self) -> None:
        if self.on_mutate is not None:
            self.on_mutate()

    def _reject_read_only(self) -> None:
        self._send_json(
            {
                "error": "this worker is read-only; send mutations to the "
                "writer worker (worker 0)"
            },
            status=409,
        )

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:
        t0 = time.perf_counter()
        try:
            if self.path == "/healthz":
                service = self.service
                payload = {
                    "status": "ok",
                    "engine": service.engine_kind,
                    "n_datasets": service.n_datasets,
                    "n_live": service.n_live,
                    "n_shards": service.n_shards,
                }
                payload.update(self._serving_fields())
                self._send_json(payload)
            elif self.path == "/stats":
                stats = self.service.stats()
                stats["serving"] = self._serving_fields()
                if self.gate is not None:
                    stats["admission"] = self.gate.snapshot()
                self._send_json(stats)
            elif self.path == "/stats/slow":
                log = self.service.observability.slow_log
                self._send_json(
                    {
                        "threshold_ms": log.threshold_ms,
                        "n_recorded": log.n_recorded,
                        "slow_queries": log.snapshot(),
                    }
                )
            elif self.path == "/metrics":
                self._send_text(self.service.observability.render_prometheus())
            else:
                self._send_json({"error": f"unknown path {self.path}"}, status=404)
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self._send_json({"error": f"internal error: {exc}"}, status=500)
        finally:
            self._observe(t0)

    @staticmethod
    def _trace_flag(body: dict) -> Optional[bool]:
        """The request's trace override (None = service default)."""
        trace = body.get("trace")
        return None if trace is None else bool(trace)

    @staticmethod
    def _search_kwargs(body: dict) -> dict:
        """The optional search knobs shared by /search and /search/batch."""
        kwargs: dict = {}
        deadline_ms = body.get("deadline_ms")
        if deadline_ms is not None:
            kwargs["deadline_ms"] = deadline_ms
        if body.get("degrade"):
            kwargs["degrade"] = True
        return kwargs

    @staticmethod
    def _degraded_fields(result: QueryResult, fmt: str = "indexes") -> dict:
        """The extra wire fields of a degraded answer (empty when exact).

        The main ``indexes``/``bitset`` payload of a degraded result is
        its *must* set; these fields add the disjoint *maybe* set and the
        degradation metadata, so clients can tell an exact answer from a
        bounded one without inspecting stats.
        """
        if not result.stats.get("degraded"):
            return {}
        out: dict = {"degraded": True}
        maybe = result.maybe_bitmap
        if fmt == "bitset":
            out["maybe_bitset"] = maybe.to_wire()
        else:
            out["maybe_indexes"] = maybe.to_list()
        return out

    def do_POST(self) -> None:
        t0 = time.perf_counter()
        gate = self.gate
        gated = gate is not None and self.path in _GATED_ENDPOINTS
        if gated and not gate.try_acquire():
            # Shed: never touches the service, so query telemetry stays a
            # picture of admitted work; the status-labelled request
            # counter and the shed counter record the rejection.
            self.service.observability.registry.inc("repro_requests_shed_total")
            self._send_json(
                {
                    "error": "server is at capacity; retry later",
                    "retry_after_s": gate.retry_after_s,
                },
                status=429,
                extra_headers={
                    "Retry-After": str(max(1, math.ceil(gate.retry_after_s)))
                },
            )
            self._observe(t0)
            return
        try:
            self._handle_post(t0)
        finally:
            if gated:
                gate.release()

    def _handle_post(self, t0: float) -> None:
        try:
            if faults.ARMED is not None:
                faults.hit("handler")
            body = self._read_json()
            if self.path == "/search":
                expr = expression_from_json(body.get("expression"))
                result = self.service.search(
                    expr,
                    record_times=bool(body.get("record_times", False)),
                    trace=self._trace_flag(body),
                    **self._search_kwargs(body),
                )
                payload = {
                    "indexes": result.indexes,
                    "emit_times": [],
                    "stats": result.stats,
                }
                payload.update(self._degraded_fields(result))
                if result.start_time is not None:
                    # Absolute perf_counter stamps are process-local and
                    # meaningless on the wire; ship start-relative offsets.
                    payload["emit_times"] = [
                        t - result.start_time for t in result.emit_times
                    ]
                    payload["duration_s"] = result.end_time - result.start_time
                if result.trace is not None:
                    payload["trace"] = result.trace
                self._send_json(payload)
            elif self.path == "/search/batch":
                exprs_json = body.get("expressions")
                if not isinstance(exprs_json, list) or not exprs_json:
                    raise QueryError("'expressions' must be a non-empty list")
                fmt = body.get("format", "indexes")
                if fmt not in ("indexes", "bitset"):
                    raise QueryError(
                        f"'format' must be 'indexes' or 'bitset', got {fmt!r}"
                    )
                exprs = [expression_from_json(e) for e in exprs_json]
                results = self.service.search_batch(
                    exprs,
                    record_times=bool(body.get("record_times", False)),
                    trace=self._trace_flag(body),
                    **self._search_kwargs(body),
                )
                encoded = []
                for r in results:
                    if fmt == "bitset":
                        one = {
                            "bitset": _result_bitmap(r, self.service).to_wire(),
                            "out_size": r.out_size,
                            "stats": r.stats,
                        }
                    else:
                        one = {"indexes": r.indexes, "stats": r.stats}
                    one.update(self._degraded_fields(r, fmt))
                    if r.start_time is not None:
                        # Batch-start-relative, on the same clock as the
                        # trace spans (one shared origin per batch).
                        one["emit_times"] = [
                            t - r.start_time for t in r.emit_times
                        ]
                        one["duration_s"] = r.end_time - r.start_time
                    encoded.append(one)
                payload = {"results": encoded}
                if results and results[0].trace is not None:
                    # One span tree per batch (stages are batch-wide;
                    # per-query assembly spans carry their query index).
                    payload["trace"] = results[0].trace
                self._send_json(payload)
            elif self.path == "/admin/promote":
                if self.promote_hook is None:
                    # Not the admin port (or single-process mode): hide the
                    # endpoint entirely rather than reveal a writer control.
                    self._send_json(
                        {"error": f"unknown path {self.path}"}, status=404
                    )
                else:
                    self.promote_hook()
                    payload = {"promoted": True}
                    payload.update(self._serving_fields())
                    self._send_json(payload)
            elif self.path == "/datasets":
                if not self.writable:
                    self._reject_read_only()
                    return
                arrays = body.get("datasets")
                if not isinstance(arrays, list) or not arrays:
                    raise QueryError(
                        "'datasets' must be a non-empty list of point arrays"
                    )
                parsed = []
                for a in arrays:
                    try:
                        parsed.append(np.asarray(a, dtype=float))
                    except (TypeError, ValueError) as exc:
                        raise QueryError(f"bad dataset array: {exc}")
                receipt = self.service.add_datasets(datasets=parsed)
                self._mutated()
                self._send_json(receipt)
            elif self.path == "/cache/invalidate":
                self.service.invalidate_cache()
                self._send_json({"generation": self.service.cache.generation})
            else:
                self._send_json({"error": f"unknown path {self.path}"}, status=404)
        except ReproError as exc:
            self._send_json({"error": str(exc)}, status=400)
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self._send_json({"error": f"internal error: {exc}"}, status=500)
        finally:
            self._observe(t0)

    def do_DELETE(self) -> None:
        t0 = time.perf_counter()
        try:
            body = self._read_json()
            if self.path == "/datasets":
                if not self.writable:
                    self._reject_read_only()
                    return
                indexes = body.get("indexes")
                if not isinstance(indexes, list) or not indexes:
                    raise QueryError("'indexes' must be a non-empty list of ints")
                try:
                    parsed = [int(i) for i in indexes]
                except (TypeError, ValueError) as exc:
                    raise QueryError(f"bad dataset index: {exc}")
                receipt = self.service.remove_datasets(parsed)
                self._mutated()
                self._send_json(receipt)
            else:
                self._send_json({"error": f"unknown path {self.path}"}, status=404)
        except ReproError as exc:
            self._send_json({"error": str(exc)}, status=400)
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self._send_json({"error": f"internal error: {exc}"}, status=500)
        finally:
            self._observe(t0)


def make_handler(
    service: Optional[QueryService] = None,
    quiet: bool = True,
    *,
    provider: Optional[Callable[[], QueryService]] = None,
    context: Optional[dict] = None,
    on_mutate: Optional[Callable[[], None]] = None,
    writable: bool = True,
    gate: Optional[AdmissionGate] = None,
    promote_hook: Optional[Callable[[], None]] = None,
) -> type:
    """A request-handler class bound to a service (or a service provider).

    Exactly one of ``service`` / ``provider`` must be given.  A provider
    is a zero-argument callable returning the *current* service — the
    supervisor's hot-swap hook: each request resolves it afresh, so a
    worker that just reloaded a newer snapshot generation serves it
    without touching the listening socket.  ``context`` is kept by
    reference (not copied) so the owner can update worker/generation
    fields in place; ``on_mutate`` fires after each successful mutation
    (the writer worker's publish hook); ``writable=False`` turns both
    mutating endpoints into ``409`` rejections.

    ``gate`` bounds concurrent search requests (see
    :class:`~repro.service.admission.AdmissionGate`); ``promote_hook``
    enables ``POST /admin/promote`` — bind it ONLY on a private admin
    port, since whoever can reach it can mint a writer.
    """
    if (service is None) == (provider is None):
        raise ValueError("pass exactly one of 'service' or 'provider'")
    namespace: dict = {
        "quiet": quiet,
        "writable": writable,
        "on_mutate": staticmethod(on_mutate) if on_mutate is not None else None,
        "context": context if context is not None else {},
        "gate": gate,
    }
    if promote_hook is not None:
        namespace["promote_hook"] = staticmethod(promote_hook)
    if provider is not None:
        namespace["_provider"] = staticmethod(provider)
        namespace["service"] = property(lambda self: self._provider())
    else:
        namespace["service"] = service
    return type("BoundServiceRequestHandler", (_ServiceRequestHandler,), namespace)


def make_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8765,
    quiet: bool = True,
    **handler_kwargs: Any,
) -> ThreadingHTTPServer:
    """A ready-to-run HTTP server bound to ``service`` (port 0 = ephemeral)."""
    return ThreadingHTTPServer(
        (host, port), make_handler(service, quiet, **handler_kwargs)
    )


def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8765,
    quiet: bool = False,
    max_inflight: Optional[int] = None,
    max_queue: int = 0,
) -> None:
    """Serve forever (Ctrl-C to stop); the ``repro serve`` entry point.

    ``max_inflight`` caps concurrently-executing search requests (None =
    unbounded); ``max_queue`` lets that many excess requests wait briefly
    for a slot before being shed with ``429``.
    """
    gate = (
        AdmissionGate(max_inflight=max_inflight, max_queue=max_queue)
        if max_inflight is not None
        else None
    )
    httpd = make_server(service, host, port, quiet=quiet, gate=gate)
    addr = httpd.server_address
    print(f"repro service listening on http://{addr[0]}:{addr[1]}")
    print("endpoints: GET /healthz, GET /stats, GET /stats/slow, "
          "GET /metrics, POST /search, POST /search/batch, "
          "POST /datasets, DELETE /datasets, POST /cache/invalidate")
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("shutting down")
    finally:
        httpd.server_close()
        service.close()
