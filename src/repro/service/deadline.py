"""Monotonic deadline budgets for query serving.

A :class:`Deadline` is an absolute expiry instant on the
``time.perf_counter()`` clock — the same clock every other stamp in the
serving layer uses — created from a relative budget the moment a request
enters the service.  It is threaded *by reference* through
``QueryService.search_batch`` → ``ShardedBatchExecutor`` →
``DatasetSearchEngine.eval_leaf_batch_bits``, where cheap checkpoint
polls (:meth:`Deadline.expired`, one clock read and one comparison)
between shards and leaves raise
:class:`~repro.errors.DeadlineExceeded` carrying the partial results
computed so far.

Wall-clock deadlines deliberately do not exist here: ``time.time()`` can
jump (NTP), and a budget that fires early or never because the clock
stepped would be far worse than the one extra nanosecond
``perf_counter`` costs.
"""

from __future__ import annotations

import time

from repro.errors import DeadlineExceeded, QueryError


class Deadline:
    """An absolute expiry instant on the ``perf_counter`` clock.

    Examples
    --------
    >>> d = Deadline(60.0)
    >>> d.expired()
    False
    >>> d.remaining() <= 60.0
    True
    >>> Deadline.from_ms(0.0)
    Traceback (most recent call last):
        ...
    repro.errors.QueryError: deadline budget must be positive, got 0.0 ms
    """

    __slots__ = ("expires_at",)

    def __init__(self, budget_s: float) -> None:
        self.expires_at = time.perf_counter() + float(budget_s)

    @classmethod
    def from_ms(cls, budget_ms: float) -> "Deadline":
        """The wire-format constructor (``"deadline_ms"`` on ``/search``)."""
        try:
            ms = float(budget_ms)
        except (TypeError, ValueError):
            raise QueryError(f"deadline_ms must be a number, got {budget_ms!r}")
        if not ms > 0.0:
            raise QueryError(f"deadline budget must be positive, got {ms} ms")
        return cls(ms / 1e3)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.perf_counter()

    def expired(self) -> bool:
        """The checkpoint poll: one clock read, one comparison."""
        return time.perf_counter() >= self.expires_at

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` (empty partial) when expired."""
        if time.perf_counter() >= self.expires_at:
            raise DeadlineExceeded(
                f"deadline expired at stage {stage!r}", stage=stage
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(remaining={self.remaining():.6f}s)"
