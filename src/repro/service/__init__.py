"""Query service layer: planner, leaf-result cache, sharded batch executor.

The core engine (:class:`~repro.core.engine.DatasetSearchEngine`) answers one
expression at a time and re-evaluates every predicate leaf it meets, even
when the same leaf appears several times in one expression or across a
batch.  This package turns the engine into a serving subsystem:

- :mod:`~repro.service.planner` canonicalizes expressions (flatten nested
  And/Or, sort and deduplicate children) and extracts stable hashable leaf
  keys, so identical sub-predicates are evaluated once per batch and are
  cacheable across batches; a compiled-plan LRU
  (:class:`~repro.service.planner.PlanCache`) lets repeated query shapes
  skip canonicalization entirely;
- :mod:`~repro.service.cache` is an LRU cache of per-leaf answers — packed
  :class:`~repro.core.bitset.DatasetBitmap` bitsets on the warm path —
  with hit/miss/eviction and resident-bytes accounting and explicit
  invalidation;
- :mod:`~repro.service.sharding` partitions the repository into ``n_shards``
  sub-engines and evaluates leaves shard-parallel in a thread pool — the
  union of shard answers preserves the per-leaf guarantees because every
  dataset lives in exactly one shard — and supports live mutation: new
  datasets enter an append-only delta shard, removals become a read-time
  index mask, and cached leaf answers are upgraded from the delta shard
  instead of flushed;
- :mod:`~repro.service.service` wires the three into the
  :class:`~repro.service.service.QueryService` facade with per-query
  latency/throughput telemetry;
- :mod:`~repro.service.observability` adds the span tracer, the
  fixed-bucket latency histograms and metrics registry (Prometheus text
  exposition), and the slow-query log — near-zero-cost when disabled;
- :mod:`~repro.service.server` exposes the service over a stdlib-HTTP JSON
  endpoint (the ``repro serve`` CLI subcommand), including ``/metrics``
  and ``/stats/slow``;
- :mod:`~repro.service.federation` scatter-gathers batches over multiple
  ``repro serve`` nodes (the ``repro federate`` CLI subcommand) with
  per-node sub-deadlines, retries + hedging, circuit breakers, and
  synopsis-screened degradation for absent nodes.
"""

from repro.service.cache import CacheEntry, CacheStats, LeafResultCache
from repro.service.observability import (
    Histogram,
    MetricsRegistry,
    ServiceObservability,
    SlowQueryLog,
    Span,
    Tracer,
    default_latency_bounds,
)
from repro.service.planner import (
    BatchPlan,
    PlanCache,
    QueryPlan,
    canonicalize,
    emit_schedule,
    evaluate_with_leaf_results,
    leaf_key,
    partial_bounds,
    plan_batch,
    plan_query,
)
from repro.service.sharding import (
    SeededSampleSynopsis,
    ShardedBatchExecutor,
    partition_indices,
)
from repro.service.service import QueryService
from repro.service.telemetry import ServiceTelemetry
from repro.service.server import (
    expression_from_json,
    expression_to_json,
    make_handler,
    make_server,
    serve,
)
from repro.service.federation import (
    CircuitBreaker,
    FederatedCoordinator,
    FederatedNode,
    federated_node_service,
    make_federation_server,
    serve_federation,
)
from repro.service import snapshot
from repro.service.snapshot import load as load_snapshot
from repro.service.snapshot import save as save_snapshot
from repro.service.supervisor import ServiceSupervisor, serve_forked

__all__ = [
    "BatchPlan",
    "CacheEntry",
    "CacheStats",
    "CircuitBreaker",
    "FederatedCoordinator",
    "FederatedNode",
    "Histogram",
    "LeafResultCache",
    "MetricsRegistry",
    "PlanCache",
    "QueryPlan",
    "QueryService",
    "SeededSampleSynopsis",
    "ServiceObservability",
    "ServiceSupervisor",
    "ServiceTelemetry",
    "ShardedBatchExecutor",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "canonicalize",
    "default_latency_bounds",
    "emit_schedule",
    "evaluate_with_leaf_results",
    "expression_from_json",
    "expression_to_json",
    "federated_node_service",
    "leaf_key",
    "load_snapshot",
    "make_federation_server",
    "make_handler",
    "make_server",
    "partial_bounds",
    "partition_indices",
    "plan_batch",
    "plan_query",
    "save_snapshot",
    "serve",
    "serve_federation",
    "serve_forked",
    "snapshot",
]
