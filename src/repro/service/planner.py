"""Query planning: canonicalization, leaf deduplication, emit scheduling.

The planner is pure expression algebra — no index structures are touched.
It rewrites expressions into a *canonical form* so that semantically equal
(sub-)expressions become structurally identical:

- nested same-operator nodes are flattened (``And(And(a, b), c)`` becomes
  ``And(a, b, c)`` — associativity);
- children are deduplicated by canonical key (idempotence) and sorted by a
  stable total order (commutativity);
- single-child And/Or nodes collapse to the child.

Canonical form makes :meth:`~repro.core.predicates.Expression.canonical_key`
a semantic identity for the And/Or/leaf fragment, which is what the
leaf-result cache and the batch deduplicator key on.

The planner also owns the *emit schedule*: given per-leaf answer sets and
per-leaf completion times, :func:`emit_schedule` computes, for every index
in the final answer, the earliest leaf completion at which its membership
was already logically determined (three-valued And/Or semantics).  This is
what ``DatasetSearchEngine.search(record_times=True)`` and the service use
to populate ``QueryResult.emit_times`` meaningfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence

from repro.core.predicates import And, Expression, Or, Predicate
from repro.errors import QueryError

#: A stable hashable identity for a predicate leaf.
LeafKey = Hashable


def leaf_key(leaf: Predicate) -> LeafKey:
    """The cache/dedup key of a predicate leaf."""
    return leaf.canonical_key()


def _sort_key(expr: Expression) -> str:
    # Canonical keys are nested tuples mixing strings, ints, floats and
    # bools; tuple comparison across those types raises TypeError, so the
    # total order used for sorting children is the repr of the key.
    return repr(expr.canonical_key())


def canonicalize(expression: Expression) -> Expression:
    """Rewrite an expression into canonical form (see module docstring).

    The returned expression shares leaf objects with the input; And/Or nodes
    are rebuilt.  Evaluation semantics are preserved exactly: flattening,
    deduplication and sorting are sound for And/Or by associativity,
    idempotence and commutativity.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.measures import PercentileMeasure
    >>> from repro.core.predicates import pred
    >>> from repro.geometry.rectangle import Rectangle
    >>> a = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.2)
    >>> b = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.2)
    >>> c = pred(PercentileMeasure(Rectangle([0.5], [1.0])), 0.4)
    >>> canon = canonicalize((a & c) & b)
    >>> canon.n_predicates          # duplicate of `a` removed
    2
    """
    if isinstance(expression, Predicate):
        return expression
    if isinstance(expression, (And, Or)):
        node_type = type(expression)
        flat: list[Expression] = []
        for child in expression.children:
            child = canonicalize(child)
            if isinstance(child, node_type):
                flat.extend(child.children)
            else:
                flat.append(child)
        unique: dict[tuple, Expression] = {}
        for child in flat:
            unique.setdefault(child.canonical_key(), child)
        children = sorted(unique.values(), key=_sort_key)
        if len(children) == 1:
            return children[0]
        return node_type(children)
    raise QueryError(f"unsupported expression node {type(expression).__name__}")


@dataclass
class QueryPlan:
    """One query's canonical expression plus its deduplicated leaves.

    Attributes
    ----------
    original:
        The expression as submitted.
    expression:
        Its canonical rewrite (evaluate this one).
    leaves:
        Unique leaves by key, in first-appearance order of the canonical
        expression.
    n_leaves_raw:
        Leaf count of the *original* expression (before dedup) — the
        baseline an executor without a planner would evaluate.
    """

    original: Expression
    expression: Expression
    leaves: dict[LeafKey, Predicate]
    n_leaves_raw: int

    @property
    def n_leaves_unique(self) -> int:
        return len(self.leaves)

    @property
    def key(self) -> tuple:
        """Semantic identity of the whole query (canonical structural key)."""
        return self.expression.canonical_key()


@dataclass
class BatchPlan:
    """Plans for a batch of queries plus the batch-wide unique leaf set."""

    plans: list[QueryPlan]
    unique_leaves: dict[LeafKey, Predicate] = field(default_factory=dict)

    @property
    def n_leaves_raw(self) -> int:
        return sum(p.n_leaves_raw for p in self.plans)

    @property
    def n_leaves_unique(self) -> int:
        return len(self.unique_leaves)

    @property
    def dedup_ratio(self) -> float:
        """Fraction of raw leaf evaluations saved by planning (0 = none)."""
        raw = self.n_leaves_raw
        return 0.0 if raw == 0 else 1.0 - self.n_leaves_unique / raw


def plan_query(expression: Expression) -> QueryPlan:
    """Canonicalize one expression and collect its unique leaves."""
    canon = canonicalize(expression)
    leaves: dict[LeafKey, Predicate] = {}
    for leaf in canon.leaves():
        leaves.setdefault(leaf_key(leaf), leaf)
    return QueryPlan(
        original=expression,
        expression=canon,
        leaves=leaves,
        n_leaves_raw=expression.n_predicates,
    )


def plan_batch(expressions: Sequence[Expression]) -> BatchPlan:
    """Plan every query of a batch and union their unique leaves."""
    batch = BatchPlan(plans=[plan_query(e) for e in expressions])
    for plan in batch.plans:
        for key, leaf in plan.leaves.items():
            batch.unique_leaves.setdefault(key, leaf)
    return batch


def evaluate_with_leaf_results(
    expression: Expression, leaf_results: Mapping[LeafKey, frozenset[int]]
) -> set[int]:
    """Evaluate an expression given precomputed per-leaf answer sets."""
    if isinstance(expression, Predicate):
        return set(leaf_results[leaf_key(expression)])
    if isinstance(expression, And):
        sets = [evaluate_with_leaf_results(c, leaf_results) for c in expression.children]
        return set.intersection(*sets)
    if isinstance(expression, Or):
        sets = [evaluate_with_leaf_results(c, leaf_results) for c in expression.children]
        return set.union(*sets)
    raise QueryError(f"unsupported expression node {type(expression).__name__}")


def partial_bounds(
    expression: Expression,
    known: Mapping[LeafKey, frozenset[int]],
    universe: frozenset[int],
) -> tuple[set[int], set[int]]:
    """Three-valued evaluation: (definitely-in, possibly-in) index sets.

    A leaf whose answer is not yet in ``known`` contributes the trivial
    bounds ``(∅, universe)``.  And/Or are monotone, so intersecting /
    unioning the child bounds is exact: an index in the lower set is in the
    final answer no matter how the unknown leaves resolve, and an index
    outside the upper set is out no matter what.
    """
    if isinstance(expression, Predicate):
        result = known.get(leaf_key(expression))
        if result is None:
            return set(), set(universe)
        return set(result), set(result)
    if isinstance(expression, (And, Or)):
        lowers, uppers = [], []
        for child in expression.children:
            lo, hi = partial_bounds(child, known, universe)
            lowers.append(lo)
            uppers.append(hi)
        if isinstance(expression, And):
            return set.intersection(*lowers), set.intersection(*uppers)
        return set.union(*lowers), set.union(*uppers)
    raise QueryError(f"unsupported expression node {type(expression).__name__}")


def emit_schedule(
    expression: Expression,
    leaf_order: Iterable[LeafKey],
    leaf_results: Mapping[LeafKey, frozenset[int]],
    leaf_times: Mapping[LeafKey, float],
    universe: frozenset[int],
) -> list[tuple[int, float]]:
    """Per-index emission times implied by per-leaf completion times.

    Replays the leaves in ``leaf_order`` (typically completion order) and,
    after each leaf, stamps every index whose membership in the final answer
    has just become determined with that leaf's completion time.  Returns
    ``(index, time)`` pairs sorted by (time, index) — the order in which a
    streaming evaluator could have emitted them.  The indexes of the result
    are exactly the full evaluation's answer.
    """
    known: dict[LeafKey, frozenset[int]] = {}
    emitted: dict[int, float] = {}
    for key in leaf_order:
        if key in known:
            continue
        known[key] = leaf_results[key]
        lower, _upper = partial_bounds(expression, known, universe)
        stamp = leaf_times[key]
        for idx in lower:
            if idx not in emitted:
                emitted[idx] = stamp
    return sorted(emitted.items(), key=lambda pair: (pair[1], pair[0]))
