"""Query planning: canonicalization, leaf deduplication, emit scheduling.

The planner is pure expression algebra — no index structures are touched.
It rewrites expressions into a *canonical form* so that semantically equal
(sub-)expressions become structurally identical:

- nested same-operator nodes are flattened (``And(And(a, b), c)`` becomes
  ``And(a, b, c)`` — associativity);
- children are deduplicated by canonical key (idempotence) and sorted by a
  stable total order (commutativity);
- single-child And/Or nodes collapse to the child.

Canonical form makes :meth:`~repro.core.predicates.Expression.canonical_key`
a semantic identity for the And/Or/leaf fragment, which is what the
leaf-result cache and the batch deduplicator key on.

The planner also owns the *emit schedule*: given per-leaf answer sets and
per-leaf completion times, :func:`emit_schedule` computes, for every index
in the final answer, the earliest leaf completion at which its membership
was already logically determined (three-valued And/Or semantics).  This is
what ``DatasetSearchEngine.search(record_times=True)`` and the service use
to populate ``QueryResult.emit_times`` meaningfully.

The evaluation helpers (:func:`evaluate_with_leaf_results`,
:func:`partial_bounds`, :func:`emit_schedule`) are polymorphic over the
answer representation: per-leaf answers may be ``set``/``frozenset``
objects (the legacy representation, kept as the measurable baseline) or
packed :class:`~repro.core.bitset.DatasetBitmap` bitsets (the warm-path
default — And/Or become word-wise ``&``/``|``).  All answers in one call
must share a representation.

Canonicalization itself is not free (children are sorted by the repr of
their canonical keys), so repeated query *shapes* can skip it entirely:
:class:`PlanCache` memoizes compiled :class:`QueryPlan` objects keyed by
the submitted expression's structural key, exactly like the leaf-result
cache memoizes leaf answers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Hashable,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.core.bitset import DatasetBitmap
from repro.core.predicates import And, Expression, Or, Predicate
from repro.errors import QueryError

if TYPE_CHECKING:
    from repro.service.observability import Tracer

#: One leaf's answer: index set (legacy/baseline) or packed bitset.
LeafAnswer = Union[frozenset, set, DatasetBitmap]

#: A stable hashable identity for a predicate leaf.
LeafKey = Hashable


def leaf_key(leaf: Predicate) -> LeafKey:
    """The cache/dedup key of a predicate leaf."""
    return leaf.canonical_key()


def _sort_key(expr: Expression) -> str:
    # Canonical keys are nested tuples mixing strings, ints, floats and
    # bools; tuple comparison across those types raises TypeError, so the
    # total order used for sorting children is the repr of the key.
    return repr(expr.canonical_key())


def canonicalize(expression: Expression) -> Expression:
    """Rewrite an expression into canonical form (see module docstring).

    The returned expression shares leaf objects with the input; And/Or nodes
    are rebuilt.  Evaluation semantics are preserved exactly: flattening,
    deduplication and sorting are sound for And/Or by associativity,
    idempotence and commutativity.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.measures import PercentileMeasure
    >>> from repro.core.predicates import pred
    >>> from repro.geometry.rectangle import Rectangle
    >>> a = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.2)
    >>> b = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.2)
    >>> c = pred(PercentileMeasure(Rectangle([0.5], [1.0])), 0.4)
    >>> canon = canonicalize((a & c) & b)
    >>> canon.n_predicates          # duplicate of `a` removed
    2
    """
    if isinstance(expression, Predicate):
        return expression
    if isinstance(expression, (And, Or)):
        node_type = type(expression)
        flat: list[Expression] = []
        for child in expression.children:
            child = canonicalize(child)
            if isinstance(child, node_type):
                flat.extend(child.children)
            else:
                flat.append(child)
        unique: dict[tuple, Expression] = {}
        for child in flat:
            unique.setdefault(child.canonical_key(), child)
        children = sorted(unique.values(), key=_sort_key)
        if len(children) == 1:
            return children[0]
        return node_type(children)
    raise QueryError(f"unsupported expression node {type(expression).__name__}")


@dataclass
class QueryPlan:
    """One query's canonical expression plus its deduplicated leaves.

    Attributes
    ----------
    original:
        The expression as submitted.
    expression:
        Its canonical rewrite (evaluate this one).
    leaves:
        Unique leaves by key, in first-appearance order of the canonical
        expression.
    n_leaves_raw:
        Leaf count of the *original* expression (before dedup) — the
        baseline an executor without a planner would evaluate.
    """

    original: Expression
    expression: Expression
    leaves: dict[LeafKey, Predicate]
    n_leaves_raw: int

    @property
    def n_leaves_unique(self) -> int:
        return len(self.leaves)

    @property
    def key(self) -> tuple:
        """Semantic identity of the whole query (canonical structural key)."""
        return self.expression.canonical_key()


@dataclass
class BatchPlan:
    """Plans for a batch of queries plus the batch-wide unique leaf set."""

    plans: list[QueryPlan]
    unique_leaves: dict[LeafKey, Predicate] = field(default_factory=dict)

    @property
    def n_leaves_raw(self) -> int:
        return sum(p.n_leaves_raw for p in self.plans)

    @property
    def n_leaves_unique(self) -> int:
        return len(self.unique_leaves)

    @property
    def dedup_ratio(self) -> float:
        """Fraction of raw leaf evaluations saved by planning (0 = none)."""
        raw = self.n_leaves_raw
        return 0.0 if raw == 0 else 1.0 - self.n_leaves_unique / raw


def plan_query(
    expression: Expression, tracer: "Optional[Tracer]" = None
) -> QueryPlan:
    """Canonicalize one expression and collect its unique leaves."""
    if tracer is not None:
        with tracer.span("canonicalize"):
            return plan_query(expression)
    canon = canonicalize(expression)
    leaves: dict[LeafKey, Predicate] = {}
    for leaf in canon.leaves():
        leaves.setdefault(leaf_key(leaf), leaf)
    return QueryPlan(
        original=expression,
        expression=canon,
        leaves=leaves,
        n_leaves_raw=expression.n_predicates,
    )


def plan_batch(
    expressions: Sequence[Expression],
    cache: Optional["PlanCache"] = None,
    tracer: "Optional[Tracer]" = None,
) -> BatchPlan:
    """Plan every query of a batch and union their unique leaves.

    With a :class:`PlanCache`, repeated query shapes reuse their compiled
    plans instead of re-canonicalizing.  With a
    :class:`~repro.service.observability.Tracer`, the whole phase runs
    under a ``plan`` span whose metadata reports the batch's plan-cache
    hit/miss split and its leaf-dedup outcome; every compile (plan-cache
    miss, or no cache) nests a ``canonicalize`` child span.
    """
    if tracer is None:
        planner: Callable[[Expression], QueryPlan] = (
            cache.plan if cache is not None else plan_query
        )
        batch = BatchPlan(plans=[planner(e) for e in expressions])
        for plan in batch.plans:
            for key, leaf in plan.leaves.items():
                batch.unique_leaves.setdefault(key, leaf)
        return batch
    with tracer.span("plan", n_queries=len(expressions)) as span:
        if cache is not None:
            hits0, misses0 = cache.hits, cache.misses
            planner = lambda e: cache.plan(e, tracer=tracer)  # noqa: E731
        else:
            planner = lambda e: plan_query(e, tracer=tracer)  # noqa: E731
        batch = BatchPlan(plans=[planner(e) for e in expressions])
        for plan in batch.plans:
            for key, leaf in plan.leaves.items():
                batch.unique_leaves.setdefault(key, leaf)
        span.meta.update(
            n_leaves_raw=batch.n_leaves_raw,
            n_leaves_unique=batch.n_leaves_unique,
            dedup_ratio=batch.dedup_ratio,
        )
        if cache is not None:
            span.meta["plan_cache_hits"] = cache.hits - hits0
            span.meta["plan_cache_misses"] = cache.misses - misses0
    return batch


def _combine_and(values: list) -> LeafAnswer:
    """Intersection in whichever algebra the values use."""
    if isinstance(values[0], DatasetBitmap):
        out = values[0]
        for v in values[1:]:
            out = out & v
        return out
    return set.intersection(*values)


def _combine_or(values: list) -> LeafAnswer:
    """Union in whichever algebra the values use."""
    if isinstance(values[0], DatasetBitmap):
        out = values[0]
        for v in values[1:]:
            out = out | v
        return out
    return set.union(*values)


def answer_indices(value: LeafAnswer) -> Iterable[int]:
    """Iterate an answer's member indexes regardless of representation."""
    return value.to_array() if isinstance(value, DatasetBitmap) else value


def evaluate_with_leaf_results(
    expression: Expression, leaf_results: Mapping[LeafKey, LeafAnswer]
) -> LeafAnswer:
    """Evaluate an expression given precomputed per-leaf answers.

    With set-valued ``leaf_results`` this is pure set algebra and returns a
    ``set``; with bitset-valued results, And/Or collapse to word-wise
    ``&``/``|`` over packed ``uint64`` words and a bitmap is returned.
    """
    if isinstance(expression, Predicate):
        value = leaf_results[leaf_key(expression)]
        # Bitmaps are immutable by convention; sets are copied because the
        # And/Or reducers below may hand the result to mutating callers.
        return value if isinstance(value, DatasetBitmap) else set(value)
    if isinstance(expression, And):
        values = [evaluate_with_leaf_results(c, leaf_results) for c in expression.children]
        return _combine_and(values)
    if isinstance(expression, Or):
        values = [evaluate_with_leaf_results(c, leaf_results) for c in expression.children]
        return _combine_or(values)
    raise QueryError(f"unsupported expression node {type(expression).__name__}")


def partial_bounds(
    expression: Expression,
    known: Mapping[LeafKey, LeafAnswer],
    universe: LeafAnswer,
) -> tuple[LeafAnswer, LeafAnswer]:
    """Three-valued evaluation: (definitely-in, possibly-in) index sets.

    A leaf whose answer is not yet in ``known`` contributes the trivial
    bounds ``(∅, universe)``.  And/Or are monotone, so intersecting /
    unioning the child bounds is exact: an index in the lower set is in the
    final answer no matter how the unknown leaves resolve, and an index
    outside the upper set is out no matter what.  The representation of
    ``universe`` (set or bitmap) selects the algebra.
    """
    if isinstance(expression, Predicate):
        result = known.get(leaf_key(expression))
        if result is None:
            if isinstance(universe, DatasetBitmap):
                return DatasetBitmap.zeros(universe.nbits), universe
            return set(), set(universe)
        if isinstance(result, DatasetBitmap):
            return result, result
        return set(result), set(result)
    if isinstance(expression, (And, Or)):
        lowers, uppers = [], []
        for child in expression.children:
            lo, hi = partial_bounds(child, known, universe)
            lowers.append(lo)
            uppers.append(hi)
        if isinstance(expression, And):
            return _combine_and(lowers), _combine_and(uppers)
        return _combine_or(lowers), _combine_or(uppers)
    raise QueryError(f"unsupported expression node {type(expression).__name__}")


def emit_schedule(
    expression: Expression,
    leaf_order: Iterable[LeafKey],
    leaf_results: Mapping[LeafKey, LeafAnswer],
    leaf_times: Mapping[LeafKey, float],
    universe: LeafAnswer,
) -> list[tuple[int, float]]:
    """Per-index emission times implied by per-leaf completion times.

    Replays the leaves in ``leaf_order`` (typically completion order) and,
    after each leaf, stamps every index whose membership in the final answer
    has just become determined with that leaf's completion time.  Returns
    ``(index, time)`` pairs sorted by (time, index) — the order in which a
    streaming evaluator could have emitted them.  The indexes of the result
    are exactly the full evaluation's answer.
    """
    known: dict[LeafKey, LeafAnswer] = {}
    emitted: dict[int, float] = {}
    for key in leaf_order:
        if key in known:
            continue
        known[key] = leaf_results[key]
        lower, _upper = partial_bounds(expression, known, universe)
        stamp = leaf_times[key]
        for idx in answer_indices(lower):
            idx = int(idx)
            if idx not in emitted:
                emitted[idx] = stamp
    return sorted(emitted.items(), key=lambda pair: (pair[1], pair[0]))


class PlanCache:
    """A bounded LRU of compiled query plans keyed by expression structure.

    Keys are the *submitted* expression's :meth:`canonical_key` — a pure
    structural identity that is much cheaper to compute than the full
    canonical rewrite (no child sorting, no repr-based total order, no node
    rebuilding).  A hit therefore skips canonicalization and leaf
    collection entirely and reuses the compiled
    :class:`QueryPlan` — including its deduplicated leaf schedule, which
    downstream layers feed straight into the leaf cache and executor.

    Two syntactically different but semantically equal expressions (e.g.
    ``And(a, b)`` vs ``And(b, a)``) occupy separate entries whose plans
    share the same canonical expression — the leaf cache unifies their
    answers, so the only cost of the split is one extra cache slot.

    Plans are pure expression algebra: they reference no index structures
    and no dataset counts, so entries stay valid across live ingestion,
    removals and full rebuilds.  ``capacity=0`` disables caching.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.measures import PercentileMeasure
    >>> from repro.core.predicates import And, pred
    >>> from repro.geometry.rectangle import Rectangle
    >>> a = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.2)
    >>> b = pred(PercentileMeasure(Rectangle([0.5], [1.0])), 0.4)
    >>> cache = PlanCache(capacity=8)
    >>> p1 = cache.plan(And([a, b]))
    >>> p2 = cache.plan(And([a, b]))      # same shape: compiled once
    >>> p1 is p2, cache.hits, cache.misses
    (True, 1, 1)
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self._plans: OrderedDict[tuple, QueryPlan] = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()

    def __len__(self) -> int:
        # len() of an OrderedDict racing a popitem/clear on another thread
        # is not guaranteed consistent; occupancy reads take the lock.
        with self._lock:
            return len(self._plans)

    def plan(
        self, expression: Expression, tracer: "Optional[Tracer]" = None
    ) -> QueryPlan:  # lint: hot-path
        """The compiled plan for ``expression``, reused on structural hits."""
        if self.capacity == 0:
            return plan_query(expression, tracer=tracer)
        key = expression.canonical_key()
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        compiled = plan_query(expression, tracer=tracer)
        with self._lock:
            self._plans[key] = compiled
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.evictions += 1
        return compiled

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def snapshot(self) -> dict:
        """JSON-ready counters plus occupancy."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": 0.0 if lookups == 0 else self.hits / lookups,
                "size": len(self._plans),
                "capacity": self.capacity,
            }
