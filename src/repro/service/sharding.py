"""Sharded batch execution: partitioned sub-engines behind a thread pool.

The repository is partitioned into ``n_shards`` contiguous slices, each
served by its own :class:`~repro.core.engine.DatasetSearchEngine`.  A leaf
is answered by querying every shard and unioning the translated index sets.
Because every dataset lives in exactly one shard, the union preserves the
per-leaf paper guarantees verbatim: recall is the conjunction of per-shard
recalls (exact), and precision slack is per-dataset, hence unchanged.

Exact equivalence with a single engine needs three partition-independent
ingredients, all handled here:

- **coresets** — ``PtileIndexBase`` draws coresets from one shared rng
  stream, so the sample a dataset gets depends on how many datasets were
  registered before it.  :class:`SeededSampleSynopsis` re-seeds per dataset
  (and per draw size), making each coreset a pure function of
  ``(seed, global index, size)``;
- **bounding box** — derived from the *global* repository (or passed in),
  never per shard;
- **query slack** — ``eps_effective`` depends on the engine's dataset count
  through the ε-sample bound, so each shard's Ptile index is pinned to the
  value a single engine over all ``N`` datasets would use (a widening for
  every shard, hence recall-safe).

Shard engines mutate internal state during Ptile queries (the report loop
temporarily deactivates points), so one shard never runs two leaves
concurrently: the pool parallelizes *across* shards, each shard walking its
leaf batch sequentially under a per-shard lock.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

import numpy as np

from repro.core._ptile_common import resolve_phi, resolve_sample_size
from repro.core.ptile_range import AUTO_BOX_PAD
from repro.core.engine import DatasetSearchEngine
from repro.core.framework import Repository
from repro.core.measures import PercentileMeasure
from repro.core.predicates import Predicate
from repro.errors import CapabilityError, ConstructionError
from repro.geometry.epsilon_sample import epsilon_of_sample_size
from repro.geometry.rectangle import Rectangle
from repro.synopsis.base import Synopsis
from repro.synopsis.exact import ExactSynopsis


def partition_indices(n: int, n_shards: int) -> list[list[int]]:
    """Contiguous, balanced partition of ``range(n)`` into ``n_shards`` parts.

    Shards differ in size by at most one; empty shards are never produced
    (``n_shards`` is clipped to ``n``).

    Examples
    --------
    >>> partition_indices(5, 2)
    [[0, 1, 2], [3, 4]]
    >>> partition_indices(2, 8)
    [[0], [1]]
    """
    if n < 1:
        raise ConstructionError("n must be positive")
    if n_shards < 1:
        raise ConstructionError("n_shards must be positive")
    n_shards = min(n_shards, n)
    base, extra = divmod(n, n_shards)
    out: list[list[int]] = []
    start = 0
    for s in range(n_shards):
        size = base + (1 if s < extra else 0)
        out.append(list(range(start, start + size)))
        start += size
    return out


class SeededSampleSynopsis(Synopsis):
    """Delegating synopsis whose ``sample`` is deterministic per dataset.

    Wraps a base synopsis and replaces the sampling stream: every call to
    :meth:`sample` draws from a fresh generator seeded by
    ``(seed, index, size)``, ignoring the caller's rng.  The same dataset
    therefore receives the same coreset no matter which engine (full or
    shard) registers it, or in which order — the property the sharded
    executor's exact-equivalence guarantee rests on.
    """

    def __init__(self, base: Synopsis, seed: int, index: int) -> None:
        self.base = base
        self.seed = int(seed)
        self.index = int(index)

    @property
    def dim(self) -> int:
        return self.base.dim

    @property
    def n_points(self) -> int:
        return self.base.n_points

    @property
    def delta_ptile(self) -> Optional[float]:
        return self.base.delta_ptile

    @property
    def delta_pref(self) -> Optional[float]:
        return self.base.delta_pref

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        del rng  # replaced by the per-dataset stream
        own = np.random.default_rng((self.seed, self.index, int(size)))
        return self.base.sample(size, own)

    def mass(self, rect: Rectangle) -> float:
        return self.base.mass(rect)

    def score(self, vector: np.ndarray, k: int) -> float:
        return self.base.score(vector, k)

    def score_batch(self, vectors: np.ndarray, k: int) -> np.ndarray:
        return self.base.score_batch(vectors, k)


class ShardedBatchExecutor:
    """Evaluate predicate leaves over ``n_shards`` partitioned sub-engines.

    Parameters
    ----------
    synopses:
        One synopsis per dataset; derived as exact synopses from
        ``repository`` when omitted.
    repository:
        Raw repository; used for exact synopses and the shared bounding box.
    n_shards:
        Number of partitions (clipped to the dataset count).
    eps, phi, delta:
        As for :class:`~repro.core.engine.DatasetSearchEngine`; resolved
        once against the *global* dataset count and forced onto every shard.
    sample_size:
        Explicit coreset size; defaults to the global-N theoretical bound.
    bounding_box:
        Shared Ptile bounding box; defaults to ``repository.bounding_box()``.
    seed:
        Seed of the per-dataset deterministic sampling streams.
    deterministic:
        Wrap synopses in :class:`SeededSampleSynopsis` (default).  Disable
        only if the synopses are already deterministic samplers.
    max_workers:
        Thread-pool width; defaults to ``n_shards``.  ``0`` forces serial
        in-caller execution.
    """

    def __init__(
        self,
        synopses: Optional[Sequence[Synopsis]] = None,
        repository: Optional[Repository] = None,
        n_shards: int = 1,
        eps: float = 0.1,
        phi: Optional[float] = None,
        delta: Optional[float] = None,
        sample_size: Optional[int] = None,
        bounding_box: Optional[Rectangle] = None,
        seed: int = 0,
        deterministic: bool = True,
        max_workers: Optional[int] = None,
    ) -> None:
        if synopses is None and repository is None:
            raise ConstructionError("provide synopses and/or a repository")
        if synopses is None:
            synopses = [ExactSynopsis(ds.points) for ds in repository]
        synopses = list(synopses)
        if repository is not None and len(synopses) != repository.n_datasets:
            raise ConstructionError("one synopsis per repository dataset required")
        dims = {s.dim for s in synopses}
        if len(dims) != 1:
            raise ConstructionError("all synopses must share the same dimension")
        self.dim = dims.pop()
        self.n_datasets = len(synopses)
        self.eps = float(eps)
        self.seed = int(seed)
        if deterministic:
            # Idempotent: synopses coming back from a previous executor
            # (QueryService.rebuild) are already seeded — re-wrapping them
            # would be harmless but obscures `.base` introspection.
            synopses = [
                s
                if isinstance(s, SeededSampleSynopsis)
                and (s.seed, s.index) == (self.seed, i)
                else SeededSampleSynopsis(s, seed, i)
                for i, s in enumerate(synopses)
            ]
        self.synopses = synopses
        self.repository = repository

        # Resolve the Ptile accuracy parameters once, against the global N,
        # so every shard runs with single-engine semantics.
        self.phi_eff = resolve_phi(phi, self.n_datasets)
        self.sample_size = resolve_sample_size(
            eps, phi, self.n_datasets, sample_size, self.dim
        )
        if bounding_box is None and repository is not None:
            bounding_box = repository.bounding_box()
        if bounding_box is None and deterministic:
            bounding_box = self._bounding_box_from_synopses()
        if (
            bounding_box is None
            and n_shards > 1
            and any(s.delta_ptile is not None for s in synopses)
        ):
            # Non-deterministic sampling, no repository, no explicit box:
            # every shard would auto-derive a different Ptile box from its
            # local coresets, silently breaking the partition-independence
            # this class documents.  Refuse rather than diverge.  Pref-only
            # synopses are exempt — no Ptile index is ever built over them.
            raise ConstructionError(
                "sharding non-deterministic synopses needs an explicit "
                "bounding_box (or a repository to derive one from)"
            )
        self.bounding_box = bounding_box
        self.eps_effective = max(
            self.eps,
            epsilon_of_sample_size(self.sample_size, self.phi_eff, self.n_datasets),
        )

        self.shards = partition_indices(self.n_datasets, n_shards)
        self.n_shards = len(self.shards)
        self.engines = [
            DatasetSearchEngine(
                synopses=[self.synopses[i] for i in shard],
                eps=eps,
                phi=self.phi_eff,
                delta=delta,
                sample_size=self.sample_size,
                bounding_box=self.bounding_box,
                rng=np.random.default_rng((self.seed, s)),
            )
            for s, shard in enumerate(self.shards)
        ]
        self._locks = [threading.Lock() for _ in range(self.n_shards)]
        self._stats_lock = threading.Lock()
        if max_workers is None:
            max_workers = self.n_shards
        self._pool = (
            ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-shard"
            )
            if max_workers > 0 and self.n_shards > 1
            else None
        )
        self.stats: dict = {"leaf_evals": 0, "shard_tasks": 0}

    def _bounding_box_from_synopses(self) -> Optional[Rectangle]:
        """A shared Ptile box in the federated (synopses-only) setting.

        Without a shared box, each shard's Ptile index would auto-derive its
        own from its local coresets and shard answers could diverge from a
        single engine's.  Deterministic sampling means the draws below are
        exactly the coresets the shard engines will draw later, so a padded
        bound over them contains every shard's coresets by construction.
        Returns None for synopses without percentile support (a Ptile index
        can never be built over them anyway).
        """
        try:
            samples = [
                s.sample(self.sample_size, np.random.default_rng(0))
                for s in self.synopses
            ]
        except CapabilityError:
            return None
        pts = np.vstack(samples)
        lo, hi = pts.min(axis=0), pts.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        return Rectangle(lo - AUTO_BOX_PAD * span, hi + AUTO_BOX_PAD * span)

    # ------------------------------------------------------------------
    # Per-shard evaluation
    # ------------------------------------------------------------------
    def _pin_ptile(self, engine: DatasetSearchEngine) -> None:
        """Build the shard's Ptile index and widen its slack to global-N."""
        index = engine.ptile_index
        if index.eps_effective < self.eps_effective:
            index.eps_effective = self.eps_effective

    def _eval_on_shard(
        self, shard: int, leaves: Sequence[Predicate]
    ) -> list[tuple[set[int], float]]:
        """All leaves on one shard, sequentially, as *global* index sets.

        Each leaf's answer is paired with its per-shard completion stamp so
        the merge can report when the whole leaf (max over shards) finished.
        """
        engine = self.engines[shard]
        mapping = self.shards[shard]
        out: list[tuple[set[int], float]] = []
        with self._locks[shard]:
            for leaf in leaves:
                if isinstance(leaf.measure, PercentileMeasure):
                    self._pin_ptile(engine)
                local = engine.eval_leaf(leaf)
                out.append(({mapping[i] for i in local}, time.perf_counter()))
        with self._stats_lock:
            self.stats["shard_tasks"] += len(out)
        return out

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def eval_leaf(self, leaf: Predicate) -> frozenset[int]:
        """One leaf across all shards; union of the per-shard answers."""
        return self.eval_leaves([leaf])[0][0]

    def eval_leaves(
        self, leaves: Sequence[Predicate]
    ) -> list[tuple[frozenset[int], float]]:
        """A batch of leaves across all shards.

        Returns one ``(global index set, completion time)`` pair per leaf,
        aligned with the input order.  The completion time is the
        ``time.perf_counter()`` instant at which the last shard finished
        that leaf — the stamp the emit scheduler attributes to it.
        """
        leaves = list(leaves)
        if not leaves:
            return []
        if self._pool is None:
            per_shard = [
                self._eval_on_shard(s, leaves) for s in range(self.n_shards)
            ]
        else:
            futures = [
                self._pool.submit(self._eval_on_shard, s, leaves)
                for s in range(self.n_shards)
            ]
            per_shard = [f.result() for f in futures]
        out: list[tuple[frozenset[int], float]] = []
        for li in range(len(leaves)):
            merged: set[int] = set()
            done = 0.0
            for s in range(self.n_shards):
                indexes, stamp = per_shard[s][li]
                merged |= indexes
                done = max(done, stamp)
            out.append((frozenset(merged), done))
        with self._stats_lock:
            self.stats["leaf_evals"] += len(out)
        return out

    def warm(self) -> None:
        """Eagerly build every shard's Ptile structure (pinned)."""
        for engine, lock in zip(self.engines, self._locks):
            with lock:
                self._pin_ptile(engine)

    def shard_sizes(self) -> list[int]:
        """Datasets per shard."""
        return [len(s) for s in self.shards]

    def close(self) -> None:
        """Shut the thread pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedBatchExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
