"""Sharded batch execution: partitioned sub-engines behind a thread pool.

The repository is partitioned into ``n_shards`` contiguous slices, each
served by its own :class:`~repro.core.engine.DatasetSearchEngine`.  A leaf
is answered by querying every shard and unioning the translated index sets.
Because every dataset lives in exactly one shard, the union preserves the
per-leaf paper guarantees verbatim: recall is the conjunction of per-shard
recalls (exact), and precision slack is per-dataset, hence unchanged.

Exact equivalence with a single engine needs three partition-independent
ingredients, all handled here:

- **coresets** — ``PtileIndexBase`` draws coresets from one shared rng
  stream, so the sample a dataset gets depends on how many datasets were
  registered before it.  :class:`SeededSampleSynopsis` re-seeds per dataset
  (and per draw size), making each coreset a pure function of
  ``(seed, global index, size)``;
- **bounding box** — derived from the *global* repository (or passed in),
  never per shard;
- **query slack** — ``eps_effective`` depends on the engine's dataset count
  through the ε-sample bound, so each shard's Ptile index is pinned to the
  value a single engine over all ``N`` datasets would use (a widening for
  every shard, hence recall-safe).

Shard engines mutate internal state during Ptile queries (the report loop
temporarily deactivates points), so one shard never runs two leaves
concurrently: the pool parallelizes *across* shards, each shard walking its
leaf batch sequentially under a per-shard lock.

Live mutation
-------------
The executor supports repository churn without a full rebuild:

- **additions** go into an append-only *delta shard*: an extra engine whose
  datasets keep global indexes ``N, N+1, ...``.  Coresets stay a pure
  function of ``(seed, global index, size)``, the delta engine shares the
  frozen bounding box, and its Ptile slack is pinned to the same
  ``eps_effective`` as every base shard, so the union over base + delta is
  exactly what a fresh build over the grown repository would answer;
- **removals** are an index mask (:attr:`removed`) applied when per-shard
  answers are merged — a tombstone, not a structural delete.  Masks only
  grow between rebuilds, so answers masked at any point stay valid under
  later masking;
- the **accuracy contract** ``(phi_eff, sample_size, eps_effective,
  bounding_box)`` is frozen at construction, resolved against
  ``max(n_live, capacity)``.  A serving system must not let its advertised
  precision drift as datasets arrive; size ``capacity`` for the expected
  repository growth and the contract (hence every cached answer) remains
  exact across ingests.  Growth beyond the contract only degrades the union
  bound gracefully (per-dataset failure budget ``phi/N`` is fixed), and the
  rebalance threshold triggers a full rebuild long before it matters.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from repro.core._ptile_common import resolve_phi, resolve_sample_size
from repro.core.bitset import DatasetBitmap, make_remapper
from repro.core.ptile_range import AUTO_BOX_PAD
from repro.core.engine import DatasetSearchEngine
from repro.core.framework import Repository
from repro.core.measures import PercentileMeasure
from repro.core.predicates import Predicate
from repro.errors import (
    CapabilityError,
    ConstructionError,
    DeadlineExceeded,
    QueryError,
)
from repro.geometry.epsilon_sample import epsilon_of_sample_size
from repro.geometry.rectangle import Rectangle
from repro.index.backend import DYNAMIC_ENGINES, check_engine
from repro.service import faults
from repro.synopsis.base import Synopsis
from repro.synopsis.exact import ExactSynopsis

if TYPE_CHECKING:
    from repro.service.deadline import Deadline
    from repro.service.observability import Span, Tracer


def partition_indices(n: int, n_shards: int) -> list[list[int]]:
    """Contiguous, balanced partition of ``range(n)`` into ``n_shards`` parts.

    Shards differ in size by at most one; empty shards are never produced
    (``n_shards`` is clipped to ``n``).

    Examples
    --------
    >>> partition_indices(5, 2)
    [[0, 1, 2], [3, 4]]
    >>> partition_indices(2, 8)
    [[0], [1]]
    """
    if n < 1:
        raise ConstructionError("n must be positive")
    if n_shards < 1:
        raise ConstructionError("n_shards must be positive")
    n_shards = min(n_shards, n)
    base, extra = divmod(n, n_shards)
    out: list[list[int]] = []
    start = 0
    for s in range(n_shards):
        size = base + (1 if s < extra else 0)
        out.append(list(range(start, start + size)))
        start += size
    return out


class SeededSampleSynopsis(Synopsis):
    """Delegating synopsis whose ``sample`` is deterministic per dataset.

    Wraps a base synopsis and replaces the sampling stream: every call to
    :meth:`sample` draws from a fresh generator seeded by
    ``(seed, index, size)``, ignoring the caller's rng.  The same dataset
    therefore receives the same coreset no matter which engine (full or
    shard) registers it, or in which order — the property the sharded
    executor's exact-equivalence guarantee rests on.
    """

    def __init__(self, base: Synopsis, seed: int, index: int) -> None:
        self.base = base
        self.seed = int(seed)
        self.index = int(index)

    @property
    def dim(self) -> int:
        return self.base.dim

    @property
    def n_points(self) -> int:
        return self.base.n_points

    @property
    def delta_ptile(self) -> Optional[float]:
        return self.base.delta_ptile

    @property
    def delta_pref(self) -> Optional[float]:
        return self.base.delta_pref

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        del rng  # replaced by the per-dataset stream
        own = np.random.default_rng((self.seed, self.index, int(size)))
        return self.base.sample(size, own)

    def mass(self, rect: Rectangle) -> float:
        return self.base.mass(rect)

    def score(self, vector: np.ndarray, k: int) -> float:
        return self.base.score(vector, k)

    def score_batch(self, vectors: np.ndarray, k: int) -> np.ndarray:
        return self.base.score_batch(vectors, k)


class ShardedBatchExecutor:
    """Evaluate predicate leaves over ``n_shards`` partitioned sub-engines.

    Parameters
    ----------
    synopses:
        One synopsis per dataset; derived as exact synopses from
        ``repository`` when omitted.
    repository:
        Raw repository; used for exact synopses and the shared bounding box.
    n_shards:
        Number of partitions (clipped to the dataset count).
    eps, phi, delta:
        As for :class:`~repro.core.engine.DatasetSearchEngine`; resolved
        once against the *global* dataset count and forced onto every shard.
    sample_size:
        Explicit coreset size; defaults to the global-N theoretical bound.
    bounding_box:
        Shared Ptile bounding box; defaults to ``repository.bounding_box()``.
    seed:
        Seed of the per-dataset deterministic sampling streams.
    deterministic:
        Wrap synopses in :class:`SeededSampleSynopsis` (default).  Disable
        only if the synopses are already deterministic samplers.
    engine:
        Range-search backend name forced onto every shard engine (and the
        delta shard): ``"kd"`` (default), ``"columnar"`` (vectorized
        scans; fastest at service scale), ``"rangetree"`` (static — live
        ingestion into the delta shard is refused).  See
        :mod:`repro.index.backend`.
    max_workers:
        Thread-pool width; defaults to ``n_shards``.  ``0`` forces serial
        in-caller execution.
    batch_leaves:
        Route each shard's leaf batch through the engine's batched
        evaluation (one multi-box backend call per shard) instead of a
        per-leaf Python loop.  Default True; ``False`` restores the
        per-leaf loop — identical answers, measurably slower cold — and
        exists for the cold-path benchmark's before/after comparison.
    capacity:
        Expected repository size the accuracy contract is resolved against:
        ``phi_eff``, ``sample_size`` and ``eps_effective`` are computed for
        ``max(n_live, capacity)`` datasets, so live ingestion up to
        ``capacity`` keeps single-engine semantics exactly.  ``None`` sizes
        the contract for the construction-time count (static behaviour).
    removed:
        Global dataset indexes to tombstone from the start; these stay in
        ``synopses`` (positions are stable identities) but are excluded from
        the shard engines and masked out of every answer.
    """

    #: Recorded pool width, parked by the supervisor parent before forking
    #: (pools don't survive ``fork``); children rebuild from it.
    _pool_width: int

    def __init__(
        self,
        synopses: Optional[Sequence[Synopsis]] = None,
        repository: Optional[Repository] = None,
        n_shards: int = 1,
        eps: float = 0.1,
        phi: Optional[float] = None,
        delta: Optional[float] = None,
        sample_size: Optional[int] = None,
        bounding_box: Optional[Rectangle] = None,
        seed: int = 0,
        deterministic: bool = True,
        engine: str = "kd",
        max_workers: Optional[int] = None,
        capacity: Optional[int] = None,
        removed: Optional[Iterable[int]] = None,
        batch_leaves: bool = True,
    ) -> None:
        if synopses is None and repository is None:
            raise ConstructionError("provide synopses and/or a repository")
        if synopses is None:
            synopses = [ExactSynopsis(ds.points) for ds in repository]
        synopses = list(synopses)
        if repository is not None and len(synopses) != repository.n_datasets:
            raise ConstructionError("one synopsis per repository dataset required")
        dims = {s.dim for s in synopses}
        if len(dims) != 1:
            raise ConstructionError("all synopses must share the same dimension")
        self.dim = dims.pop()
        self.eps = float(eps)
        self.seed = int(seed)
        self._deterministic = bool(deterministic)
        self._batch_leaves = bool(batch_leaves)
        self._delta_param = delta
        self.engine_kind = check_engine(engine)
        if deterministic:
            # Idempotent: synopses coming back from a previous executor
            # (QueryService.rebuild) are already seeded — re-wrapping them
            # would be harmless but obscures `.base` introspection.
            synopses = [
                s
                if isinstance(s, SeededSampleSynopsis)
                and (s.seed, s.index) == (self.seed, i)
                else SeededSampleSynopsis(s, seed, i)
                for i, s in enumerate(synopses)
            ]
        self.synopses = synopses
        self.repository = repository

        self.removed = frozenset(int(i) for i in (removed or ()))
        #: Memoized ANDNOT mask; keyed by identity of ``removed`` (which is
        #: replaced wholesale on every mutation, never edited in place).
        self._removed_bits_cache: Optional[tuple] = None
        if any(i < 0 or i >= len(synopses) for i in self.removed):
            raise ConstructionError("removed indexes must lie in [0, n_datasets)")
        live = [i for i in range(len(synopses)) if i not in self.removed]
        if not live:
            raise ConstructionError("cannot tombstone every dataset")

        # Resolve the Ptile accuracy parameters once, against the global
        # live count (or the declared capacity, whichever is larger), so
        # every shard runs with single-engine semantics and the contract
        # survives live ingestion up to ``capacity``.
        self.capacity = int(capacity) if capacity is not None else None
        n_acc = max(len(live), self.capacity or 0)
        self.phi_eff = resolve_phi(phi, n_acc)
        self.sample_size = resolve_sample_size(
            eps, phi, n_acc, sample_size, self.dim
        )
        if bounding_box is None and repository is not None:
            bounding_box = repository.bounding_box()
        if bounding_box is None and deterministic:
            bounding_box = self._bounding_box_from_synopses()
        if (
            bounding_box is None
            and n_shards > 1
            and any(s.delta_ptile is not None for s in synopses)
        ):
            # Non-deterministic sampling, no repository, no explicit box:
            # every shard would auto-derive a different Ptile box from its
            # local coresets, silently breaking the partition-independence
            # this class documents.  Refuse rather than diverge.  Pref-only
            # synopses are exempt — no Ptile index is ever built over them.
            raise ConstructionError(
                "sharding non-deterministic synopses needs an explicit "
                "bounding_box (or a repository to derive one from)"
            )
        self.bounding_box = bounding_box
        self.eps_effective = max(
            self.eps,
            epsilon_of_sample_size(self.sample_size, self.phi_eff, n_acc),
        )

        parts = partition_indices(len(live), n_shards)
        self.shards = [[live[p] for p in part] for part in parts]
        self.n_shards = len(self.shards)
        self.engines = [
            DatasetSearchEngine(
                synopses=[self.synopses[i] for i in shard],
                eps=eps,
                phi=self.phi_eff,
                delta=delta,
                sample_size=self.sample_size,
                bounding_box=self.bounding_box,
                engine=self.engine_kind,
                rng=np.random.default_rng((self.seed, s)),
            )
            for s, shard in enumerate(self.shards)
        ]
        self._locks = [threading.Lock() for _ in range(self.n_shards)]
        self._stats_lock = threading.Lock()

        # Delta shard: lazily created on the first add_synopses call.
        self.delta_engine: Optional[DatasetSearchEngine] = None
        self.delta_ids: list[int] = []
        self._delta_lock = threading.Lock()

        if max_workers is None:
            max_workers = self.n_shards
        self._pool = (
            ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-shard"
            )
            if max_workers > 0 and self.n_shards > 1
            else None
        )
        self.stats: dict = {"leaf_evals": 0, "shard_tasks": 0, "delta_evals": 0}  # guarded-by: _stats_lock

    @property
    def n_datasets(self) -> int:
        """Total datasets ever registered (including tombstoned ones)."""
        return len(self.synopses)

    @property
    def n_live(self) -> int:
        """Datasets currently served (total minus removal mask)."""
        return len(self.synopses) - len(self.removed)

    @property
    def delta_size(self) -> int:
        """Datasets sitting in the append-only delta shard."""
        return len(self.delta_ids)

    def _bounding_box_from_synopses(self) -> Optional[Rectangle]:
        """A shared Ptile box in the federated (synopses-only) setting.

        Without a shared box, each shard's Ptile index would auto-derive its
        own from its local coresets and shard answers could diverge from a
        single engine's.  Deterministic sampling means the draws below are
        exactly the coresets the shard engines will draw later, so a padded
        bound over them contains every shard's coresets by construction.
        Returns None for synopses without percentile support (a Ptile index
        can never be built over them anyway).
        """
        try:
            samples = [
                s.sample(self.sample_size, np.random.default_rng(0))
                for s in self.synopses
            ]
        except CapabilityError:
            return None
        pts = np.vstack(samples)
        lo, hi = pts.min(axis=0), pts.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        return Rectangle(lo - AUTO_BOX_PAD * span, hi + AUTO_BOX_PAD * span)

    # ------------------------------------------------------------------
    # Per-shard evaluation
    # ------------------------------------------------------------------
    def _pin_ptile(self, engine: DatasetSearchEngine) -> None:
        """Build the shard's Ptile index and widen its slack to global-N."""
        index = engine.build().ptile_index
        if index.eps_effective < self.eps_effective:
            index.eps_effective = self.eps_effective

    def _eval_on_unit(
        self,
        engine: DatasetSearchEngine,
        mapping: Sequence[int],
        lock: threading.Lock,
        leaves: Sequence[Predicate],
        tracer: Optional[Tracer] = None,
        parent: Optional[Span] = None,
        span_name: str = "shard_eval",
        span_meta: Optional[dict] = None,
        deadline: "Optional[Deadline]" = None,
    ) -> list[tuple[DatasetBitmap, float]]:
        """All leaves on one shard as *global* packed bitsets.

        By default the shard's whole leaf batch goes through
        :meth:`~repro.core.engine.DatasetSearchEngine.eval_leaf_batch_bits`
        — one multi-box backend call for every percentile leaf — so a cold
        batch costs one traversal per shard, not one per leaf.  With
        ``batch_leaves=False`` the per-leaf loop is used instead
        (identical answers; the cold-path benchmark's baseline).

        Local answers translate to global bitsets through the shard's index
        mapping: contiguous mappings (every base shard, and the delta shard
        between rebuilds) are one offset-shifted word copy; mappings with
        gaps scatter the member indexes.  The translated universe ends at
        the shard's largest global index — the merge's word-wise OR aligns
        operands of different sizes by zero-padding, so per-unit sizes
        never have to agree.

        Each leaf's answer is paired with its per-shard completion stamp so
        the merge can report when the whole leaf (max over shards) finished;
        batched leaves share the batch's completion stamp, which is exactly
        when their answers became available.

        With a tracer the whole unit evaluation runs under a per-unit
        span (``shard_eval`` / ``delta_eval``); ``parent`` links it to
        the caller's span across the thread-pool boundary, and the
        engine's own ``engine_leaf_batch`` span nests inside because the
        per-unit span tops this worker thread's span stack.

        With a ``deadline`` the budget is polled once the unit lock is
        held (before any evaluation) and between leaves on the per-leaf
        path; the batched path delegates polling to the engine.  The
        raised :class:`DeadlineExceeded` carries the *global* ``(bitmap,
        stamp)`` prefix this unit completed.  The ``shard_eval``
        failpoint fires first — inside the lock, before the poll — so an
        armed ``sleep`` deterministically trips a short deadline.
        """
        span = (
            tracer.span(span_name, parent=parent, **(span_meta or {}))
            if tracer is not None
            else None
        )
        out: list[tuple[DatasetBitmap, float]] = []
        if span is not None:
            span.__enter__()
        try:
            with lock:
                if faults.ARMED is not None:
                    faults.hit("shard_eval")
                # Compile the mapping once per unit call, not once per leaf:
                # the contiguity probe is O(shard size) and the mapping is
                # fixed for the duration (the delta mapping grows in place
                # only under this same lock).  Ascending mapping: the unit's
                # global universe ends one past its largest id.
                nbits = (int(mapping[-1]) + 1) if len(mapping) else 0
                to_global = make_remapper(mapping, nbits)
                if deadline is not None and deadline.expired():
                    raise DeadlineExceeded(
                        f"deadline expired before unit eval of "
                        f"{len(leaves)} leaves",
                        stage="shard_eval",
                        partial=[],
                    )
                if self._batch_leaves:
                    if any(isinstance(lf.measure, PercentileMeasure) for lf in leaves):
                        self._pin_ptile(engine)
                    try:
                        if deadline is not None:
                            locals_ = engine.eval_leaf_batch_bits(
                                leaves, deadline=deadline
                            )
                        elif tracer is None:
                            locals_ = engine.eval_leaf_batch_bits(leaves)
                        else:
                            locals_ = engine.eval_leaf_batch_bits(
                                leaves, tracer=tracer
                            )
                    except DeadlineExceeded as exc:
                        # Translate the engine's local-bitmap prefix into
                        # this unit's global (bitmap, stamp) shape before
                        # re-raising, so the fan-out merge can salvage it.
                        done = time.perf_counter()
                        exc.stage = "shard_eval"
                        exc.partial = [
                            (to_global(local), done) for local in exc.partial
                        ]
                        raise
                    done = time.perf_counter()
                    out = [(to_global(local), done) for local in locals_]
                else:
                    for leaf in leaves:
                        if deadline is not None and deadline.expired():
                            raise DeadlineExceeded(
                                f"deadline expired after {len(out)}/"
                                f"{len(leaves)} leaves",
                                stage="shard_eval",
                                partial=out,
                            )
                        if isinstance(leaf.measure, PercentileMeasure):
                            self._pin_ptile(engine)
                        local = engine.eval_leaf_bits(leaf)
                        out.append((to_global(local), time.perf_counter()))
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        with self._stats_lock:
            self.stats["shard_tasks"] += len(out)
        return out

    def _units(
        self, delta_only: bool = False
    ) -> list[tuple[DatasetSearchEngine, Sequence[int], threading.Lock]]:
        """The (engine, global-index mapping, lock) tuples to fan out over."""
        units: list = []
        if not delta_only:
            units.extend(zip(self.engines, self.shards, self._locks))
        if self.delta_engine is not None:
            units.append((self.delta_engine, self.delta_ids, self._delta_lock))
        return units

    def removed_bits(self) -> Optional[DatasetBitmap]:
        """The tombstone mask as a persistent ANDNOT bitmap (None if empty).

        Rebuilt only when :attr:`removed` is swapped (masks are replaced,
        never mutated in place), so steady-state reads reuse one bitmap.
        """
        removed = self.removed
        if not removed:
            return None
        cached = self._removed_bits_cache
        if cached is not None and cached[0] is removed:
            return cached[1]
        bits = DatasetBitmap.from_indices(removed, max(removed) + 1)
        self._removed_bits_cache = (removed, bits)
        return bits

    def _eval_on_units(
        self,
        units: Sequence[tuple],
        leaves: Sequence[Predicate],
        tracer: Optional[Tracer] = None,
        deadline: "Optional[Deadline]" = None,
    ) -> list[tuple[DatasetBitmap, float]]:
        """Fan a leaf batch over the given units and merge (masked) answers.

        With a tracer each unit gets its own span (``shard_eval`` with a
        ``shard`` index for base shards, ``delta_eval`` for the delta
        shard), parented to the caller's current span so pool-thread spans
        land in the right tree, and the merge loop runs under a ``merge``
        span.

        With a ``deadline``, a unit that trips its budget does not poison
        the fan-out: its :class:`DeadlineExceeded` is captured (not
        propagated out of pool futures), the leaf prefix every unit
        completed — ``min`` over units — is merged exactly as a full
        answer would be, and a fresh ``DeadlineExceeded`` carrying those
        merged global ``(bitmap, stamp)`` pairs is raised.  A prefix leaf
        is *exact*: all shards answered it and the tombstone mask was
        applied, so callers can keep it.
        """
        if not units:
            stamp = time.perf_counter()
            return [(DatasetBitmap.zeros(0), stamp) for _ in leaves]
        if tracer is not None:
            parent = tracer.current()
            calls = []
            for engine, mapping, lock in units:
                if engine is self.delta_engine:
                    name, meta = "delta_eval", {"n_datasets": len(mapping)}
                else:
                    name = "shard_eval"
                    meta = {
                        "shard": self.engines.index(engine),
                        "n_datasets": len(mapping),
                    }
                calls.append(
                    (engine, mapping, lock, leaves, tracer, parent, name, meta)
                )
        else:
            calls = [(*unit, leaves) for unit in units]
        def _run(call: tuple) -> tuple[str, object]:
            # DeadlineExceeded is a *salvageable* outcome, not a failure:
            # capture it so one slow unit cannot discard the others'
            # answers (and so pool futures never propagate it raw).
            try:
                if deadline is not None:
                    return ("ok", self._eval_on_unit(*call, deadline=deadline))
                return ("ok", self._eval_on_unit(*call))
            except DeadlineExceeded as exc:
                return ("deadline", exc)

        pool = self._pool  # snapshot: close() may null it concurrently
        if pool is None or len(units) == 1:
            statuses = [_run(call) for call in calls]
        else:
            try:
                futures = [pool.submit(_run, call) for call in calls]
            except RuntimeError:
                # The pool was shut down between the snapshot and submit (a
                # rebuild closed this executor mid-batch).  The engines and
                # locks are still intact, so finish the batch serially.
                statuses = [_run(call) for call in calls]
            else:
                statuses = [f.result() for f in futures]
        deadline_exc = next(
            (res for kind, res in statuses if kind == "deadline"), None
        )
        per_unit = [
            res if kind == "ok" else res.partial for kind, res in statuses
        ]
        n_merge = (
            len(leaves)
            if deadline_exc is None
            else min(len(answers) for answers in per_unit)
        )
        merge_span = (
            tracer.span("merge", n_units=len(units), n_leaves=len(leaves))
            if tracer is not None
            else None
        )
        if merge_span is not None:
            merge_span.__enter__()
        try:
            removed = self.removed_bits()
            out: list[tuple[DatasetBitmap, float]] = []
            for li in range(n_merge):
                merged, done = per_unit[0][li]
                for answers in per_unit[1:]:
                    indexes, stamp = answers[li]
                    merged = merged | indexes
                    done = max(done, stamp)
                if removed is not None:
                    merged = merged.andnot(removed)
                out.append((merged, done))
        finally:
            if merge_span is not None:
                merge_span.__exit__(None, None, None)
        if deadline_exc is not None:
            raise DeadlineExceeded(
                f"deadline expired after {n_merge}/{len(leaves)} leaves",
                stage="shard_eval",
                partial=out,
            )
        return out

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def eval_leaf(self, leaf: Predicate) -> frozenset[int]:
        """One leaf across all shards as a frozen global index set.

        Convenience wrapper over :meth:`eval_leaves` for set-algebra
        callers; the batch API returns packed bitsets.
        """
        return self.eval_leaves([leaf])[0][0].to_frozenset()

    def eval_leaves(
        self,
        leaves: Sequence[Predicate],
        tracer: Optional[Tracer] = None,
        deadline: "Optional[Deadline]" = None,
    ) -> list[tuple[DatasetBitmap, float]]:
        """A batch of leaves across base shards plus the delta shard.

        Returns one ``(global bitset, completion time)`` pair per leaf,
        aligned with the input order; tombstoned datasets are masked out
        (word-wise ANDNOT against the persistent removal mask).  The
        completion time is the ``time.perf_counter()`` instant at which
        the last shard finished that leaf — the stamp the emit scheduler
        attributes to it.
        """
        leaves = list(leaves)
        if not leaves:
            return []
        out = self._eval_on_units(
            self._units(), leaves, tracer=tracer, deadline=deadline
        )
        with self._stats_lock:
            self.stats["leaf_evals"] += len(out)
        return out

    def eval_delta_leaves(
        self,
        leaves: Sequence[Predicate],
        tracer: Optional[Tracer] = None,
        deadline: "Optional[Deadline]" = None,
    ) -> list[tuple[DatasetBitmap, float]]:
        """A leaf batch on the delta shard only (masked global bitsets).

        This is the cache-upgrade primitive: a leaf answer cached before an
        ingest covers exactly the datasets below its watermark, and every
        dataset added since lives in the delta shard (rebuilds flush the
        cache), so ``cached ∪ delta answer`` — a word-wise OR after
        zero-padding the cached bitmap — reconstructs the full answer
        without touching any base shard.  With no delta shard the answers
        are empty bitsets.
        """
        leaves = list(leaves)
        if not leaves:
            return []
        out = self._eval_on_units(
            self._units(delta_only=True), leaves, tracer=tracer, deadline=deadline
        )
        with self._stats_lock:
            self.stats["delta_evals"] += len(out)
        return out

    # ------------------------------------------------------------------
    # Live mutation
    # ------------------------------------------------------------------
    def fits(
        self,
        synopsis: Synopsis,
        points: Optional[np.ndarray] = None,
        index: Optional[int] = None,
    ) -> bool:
        """Whether a new dataset can enter the delta shard under the frozen
        accuracy contract (i.e. its Ptile coreset lies inside the shared
        bounding box).

        Pref-only synopses always fit (no Ptile structure is built over
        them).  With deterministic sampling the check draws exactly the
        coreset the delta engine will use for global index ``index``
        (default: the next index), so it is exact; otherwise it checks the
        raw ``points`` — and without them it refuses (a heuristic draw
        could admit a synopsis whose real build-time coreset then falls
        outside the box, poisoning the delta shard with no rollback).
        """
        if synopsis.dim != self.dim:
            raise ConstructionError("synopsis dimension mismatch")
        if synopsis.delta_ptile is None:
            return True
        if self.bounding_box is None:
            return False
        if self._deterministic:
            gid = self.n_datasets if index is None else int(index)
            own = np.random.default_rng((self.seed, gid, int(self.sample_size)))
            sample = synopsis.sample(self.sample_size, own)
        elif points is not None:
            sample = points
        else:
            return False
        pts = np.asarray(sample, dtype=float)
        return bool(self.bounding_box.contains_points(pts).all())

    def add_synopses(self, synopses: Sequence[Synopsis]) -> list[int]:
        """Append datasets to the delta shard; returns their global indexes.

        New synopses are wrapped for per-dataset deterministic sampling
        keyed by their global index, so the coreset each dataset gets is the
        one a fresh build over the grown repository would draw.  The delta
        engine shares the frozen bounding box and accuracy contract; its
        Ptile index is pinned to the executor ``eps_effective`` on first
        use, exactly like every base shard.
        """
        new = list(synopses)
        if not new:
            return []
        if self.engine_kind not in DYNAMIC_ENGINES:
            raise CapabilityError(
                f"engine {self.engine_kind!r} is static; live ingestion "
                f"requires one of {DYNAMIC_ENGINES}"
            )
        for s in new:
            if s.dim != self.dim:
                raise ConstructionError("synopsis dimension mismatch")
        with self._delta_lock:
            # Publication order matters for the lock-free query path: the
            # delta engine (and its id mapping) must be fully visible
            # BEFORE ``synopses`` grows.  A concurrent batch reads its
            # watermark from ``len(synopses)``; if it saw the new count but
            # not the new engine, it would cache an answer *without* the
            # new datasets under a watermark that claims to cover them —
            # and that entry would never be upgraded.  The reverse window
            # (engine visible, old count) is harmless: the answer includes
            # datasets above the stored watermark and the next upgrade
            # union is idempotent.
            start = len(self.synopses)
            ids: list[int] = []
            wrapped: list[Synopsis] = []
            for offset, s in enumerate(new):
                gid = start + offset
                if self._deterministic and not (
                    isinstance(s, SeededSampleSynopsis)
                    and (s.seed, s.index) == (self.seed, gid)
                ):
                    s = SeededSampleSynopsis(s, self.seed, gid)
                wrapped.append(s)
                ids.append(gid)
            if self.delta_engine is None:
                engine = DatasetSearchEngine(
                    synopses=wrapped,
                    eps=self.eps,
                    phi=self.phi_eff,
                    delta=self._delta_param,
                    sample_size=self.sample_size,
                    bounding_box=self.bounding_box,
                    engine=self.engine_kind,
                    rng=np.random.default_rng((self.seed, self.n_shards)),
                )
                # Mapping before engine: _units() gates on the engine, so
                # a racing reader must never pair it with the old mapping.
                self.delta_ids = list(ids)
                self.delta_engine = engine
            else:
                for s in wrapped:
                    self.delta_engine.insert_synopsis(s, delta=self._delta_param)
                # In-place extend: _units() snapshots the list object.
                self.delta_ids.extend(ids)
            self.synopses.extend(wrapped)
        return ids

    def remove_indexes(self, indexes: Iterable[int]) -> list[int]:
        """Tombstone datasets by global index (masked at merge time).

        The structures are untouched — and so is the cache layered above,
        because masks are applied when answers are read.  Tombstones are
        compacted out of the shard engines at the next rebuild.
        """
        idx = sorted({int(i) for i in indexes})
        for i in idx:
            if not 0 <= i < self.n_datasets:
                raise QueryError(f"unknown dataset index {i}")
            if i in self.removed:
                raise QueryError(f"dataset {i} is already removed")
        if len(self.removed) + len(idx) >= self.n_datasets:
            raise QueryError("cannot remove every dataset")
        self.removed = self.removed | frozenset(idx)
        return idx

    def needs_rebalance(self) -> bool:
        """True when the delta shard outgrew the mean base shard size."""
        if not self.delta_ids:
            return False
        mean = sum(len(s) for s in self.shards) / len(self.shards)
        return len(self.delta_ids) > mean

    def warm(self) -> None:
        """Eagerly build every shard's Ptile structure (pinned).

        Builds run concurrently on the executor's thread pool, one task
        per shard (plus the delta shard), so a warmup costs one shard
        build of wall clock instead of ``n_shards`` of them.  Build
        results are deterministic either way: coresets are pure functions
        of ``(seed, global index, size)`` and each shard owns a private
        rng, so thread scheduling cannot change what gets built.
        """
        units = self._units()

        def _build_unit(engine: DatasetSearchEngine, lock: threading.Lock) -> None:
            with lock:
                self._pin_ptile(engine)

        pool = self._pool  # snapshot: close() may null it concurrently
        if pool is None or len(units) == 1:
            for engine, _mapping, lock in units:
                _build_unit(engine, lock)
            return
        try:
            futures = [
                pool.submit(_build_unit, engine, lock)
                for engine, _mapping, lock in units
            ]
        except RuntimeError:
            # Pool shut down between snapshot and submit; build serially.
            for engine, _mapping, lock in units:
                _build_unit(engine, lock)
            return
        for f in futures:
            f.result()

    def shard_sizes(self) -> list[int]:
        """Datasets per base shard (the delta shard is reported separately)."""
        return [len(s) for s in self.shards]

    def stats_snapshot(self) -> dict:
        """A consistent copy of the counters (taken under the stats lock)."""
        with self._stats_lock:
            return dict(self.stats)

    def save(self, path: str | os.PathLike[str], generation: int = 0) -> dict:
        """Persist the executor (shard engines, delta shard, tombstones)
        into one snapshot container; see :mod:`repro.service.snapshot`."""
        from repro.service import snapshot

        return snapshot.save(self, path, generation=generation)

    @classmethod
    def load(cls, path: str | os.PathLike[str], mmap: bool = True) -> "ShardedBatchExecutor":
        """Reconstruct an executor saved by :meth:`save` (mmap-backed by
        default); refuses containers holding a different kind."""
        from repro.service import snapshot

        return snapshot.load_expected(path, "sharded_executor", mmap=mmap)

    def close(self) -> None:
        """Shut the thread pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedBatchExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
