"""End-to-end query tracing, stage metrics, and Prometheus exposition.

Three complementary layers, all dependency-free:

- **Span tracer** — :class:`Tracer` hands out context-manager
  :class:`Span` objects with monotonic-clock durations and parent links.
  Nesting is implicit per thread (a thread-local span stack); spans that
  cross a thread boundary (the sharded executor's pool workers) pass
  their parent explicitly.  Finished spans feed the registry's per-stage
  histogram, so every traced query updates ``repro_stage_seconds``.
  When tracing is off the instrumented call sites receive ``tracer=None``
  and skip all of this behind one ``is not None`` branch — the disabled
  cost is a single pointer comparison per site.
- **Metrics registry** — :class:`MetricsRegistry` holds named counters
  and :class:`Histogram` families and renders the Prometheus text
  exposition format (``GET /metrics``).  Histograms use fixed log-spaced
  bucket bounds with counts in a flat ``int64`` word array — the same
  flat-array discipline as :class:`~repro.core.bitset.DatasetBitmap` —
  so two histograms over the same bounds merge by vector addition and
  quantiles come straight from the cumulative counts.
- **Slow-query log** — :class:`SlowQueryLog` keeps the ``k`` worst
  queries above a latency threshold (a bounded min-heap, so only the
  worst survive), each with its stats and its trace when one was
  recorded.  Dumped by ``GET /stats/slow`` and enabled by
  ``repro serve --slow-log``.

:class:`ServiceObservability` wires the three to a
:class:`~repro.service.service.QueryService`: ``snapshot()`` is the
``/stats`` payload and ``render_prometheus()`` is the ``/metrics`` body,
and both are built from the *same* component snapshots taken in one
pass, so the two endpoints can never disagree about a counter.

Timing schema
-------------
Every wire-visible timestamp in this system is **seconds relative to the
start of its query or batch**, measured on the monotonic span clock
(``time.perf_counter``); absolute monotonic values are process-local and
never leave the server.  Concretely:

- ``/search`` and ``/search/batch`` with ``"record_times": true`` return
  per-result ``emit_times`` (start-relative offsets, one per reported
  index) plus ``duration_s``;
- ``/search`` and ``/search/batch`` with ``"trace": true`` return a
  ``trace`` span tree whose nodes carry ``start_s`` (offset from the
  trace root's start) and ``duration_s``; sibling stage durations at the
  top level sum to ~``duration_s`` of the root;
- slow-query log entries store ``latency_ms`` and, when the query was
  traced, the same relative-clock span tree.

The batch clock and the trace clock share one origin (the
``search_batch`` entry stamp), so emit times and span times of the same
request line up.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from bisect import bisect_left
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

import numpy as np

if TYPE_CHECKING:
    from repro.service.service import QueryService

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "ServiceObservability",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "default_latency_bounds",
]


def default_latency_bounds() -> tuple[float, ...]:
    """Log-spaced (powers of two) latency bucket bounds, 1 µs .. ~67 s.

    27 finite upper bounds; everything above the last lands in the +Inf
    overflow bucket.  Powers of two keep neighbouring buckets within 2x,
    so a bucket-derived quantile is always within 2x of the true sample
    quantile — tight enough to tell a 50 µs warm hit from a 5 ms miss.
    """
    return tuple(1e-6 * 2.0**i for i in range(27))


class Histogram:
    """A fixed-bucket latency histogram with mergeable flat-array counts.

    Parameters
    ----------
    bounds:
        Strictly increasing finite bucket *upper* bounds.  Observations
        land in the first bucket whose bound is >= the value; larger
        values land in the implicit +Inf overflow bucket.  Defaults to
        :func:`default_latency_bounds`.

    Counts live in one flat array of ``len(bounds) + 1`` words, so two
    histograms over the same bounds merge by vector addition — exactly
    how per-worker histograms would aggregate in a multi-process server.
    ``observe`` is a bisect plus one plain-``int`` increment under a
    lock (the hot store is a Python list; :attr:`counts` materializes an
    ``int64`` view on read, keeping per-observation cost off the numpy
    scalar-indexing path).

    Examples
    --------
    >>> h = Histogram(bounds=(0.001, 0.01, 0.1))
    >>> for v in (0.0005, 0.002, 0.02, 5.0):
    ...     h.observe(v)
    >>> h.count, h.counts.tolist()
    (4, [1, 1, 1, 1])
    >>> h.quantile(50.0) <= 0.01
    True
    >>> g = Histogram(bounds=(0.001, 0.01, 0.1)); g.observe(0.002)
    >>> h.merge(g).counts.tolist()
    [1, 2, 1, 1]
    """

    __slots__ = ("bounds", "_counts", "count", "sum", "_lock")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        if bounds is None:
            bounds = default_latency_bounds()
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("bounds must be non-empty and strictly increasing")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # guarded-by: _lock
        self.count = 0  # guarded-by: _lock
        self.sum = 0.0  # guarded-by: _lock
        self._lock = threading.Lock()

    @property
    def counts(self) -> np.ndarray:
        """The bucket counts as an ``int64`` array (copy, mergeable)."""
        with self._lock:
            return np.asarray(self._counts, dtype=np.int64)

    def observe(self, value: float) -> None:  # lint: hot-path
        """Record one observation (thread-safe)."""
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self.count += 1
            self.sum += value

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram holding both operands' counts (same bounds)."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        out = Histogram(self.bounds)
        with self._lock:
            counts, count, total = list(self._counts), self.count, self.sum
        with other._lock:
            out._counts = [a + b for a, b in zip(counts, other._counts)]
            out.count = count + other.count
            out.sum = total + other.sum
        return out

    def quantile_bounds(self, q: float) -> tuple[float, float]:
        """The ``(lo, hi]`` bucket interval containing the q-th percentile.

        Nearest-rank over the cumulative counts: the true q-th percentile
        of the observed sample lies in the returned half-open interval
        (``hi`` is ``inf`` when the rank falls in the overflow bucket,
        ``lo`` is 0 for the first bucket).  NaN bounds when empty.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            count = self.count
            cum = np.cumsum(self._counts)
        if count == 0:
            return (float("nan"), float("nan"))
        rank = max(1, int(np.ceil(q / 100.0 * count)))
        idx = int(np.searchsorted(cum, rank))
        lo = 0.0 if idx == 0 else self.bounds[idx - 1]
        hi = self.bounds[idx] if idx < len(self.bounds) else float("inf")
        return (lo, hi)

    def quantile(self, q: float) -> float:
        """A point estimate of the q-th percentile (upper bucket bound).

        Returning the containing bucket's upper bound makes the estimate
        conservative (never below the true sample quantile) and at most
        one bucket width above it — with the default power-of-two bounds,
        within 2x.  The overflow bucket reports its lower bound instead
        (there is no finite upper), and NaN when empty.
        """
        lo, hi = self.quantile_bounds(q)
        if np.isnan(lo):
            return float("nan")
        return hi if np.isfinite(hi) else lo

    def snapshot(self) -> dict:
        """JSON-ready counts plus bucket-derived p50/p95/p99 estimates."""
        with self._lock:
            counts = list(self._counts)
            count = self.count
            total = self.sum
        out = {
            "count": count,
            "sum_s": total,
            "bounds_s": list(self.bounds),
            "counts": counts,
        }
        for q in (50.0, 95.0, 99.0):
            v = self.quantile(q)
            out[f"p{q:g}_s"] = None if np.isnan(v) else v
        return out


def _fmt_value(v: float) -> str:
    """Prometheus sample value formatting (integers without the .0)."""
    f = float(v)
    return str(int(f)) if f.is_integer() and abs(f) < 1e15 else repr(f)


def _escape_label(value: object) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '{}="{}"'.format(k, _escape_label(v)) for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


class MetricsRegistry:
    """Named counters and histogram families with Prometheus rendering.

    Three metric kinds, matching what the service needs:

    - ``counter(name)`` / ``inc(name, labels, by)`` — monotone totals
      (rendered with the ``_total`` suffix convention already in the
      metric name);
    - ``histogram(name, labels)`` — a :class:`Histogram` child per label
      set, created lazily on first use (``repro_stage_seconds`` gains a
      child per stage as stages first run);
    - ``gauge_source(fn)`` — a callable returning ``(name, labels,
      value)`` triples evaluated at render time, so gauges always
      reflect the live service (cache occupancy, shard sizes, ...).

    ``render()`` emits the text exposition format: ``# HELP``/``# TYPE``
    headers, cumulative ``_bucket`` counts with ``le`` labels, ``_sum``
    and ``_count`` series per histogram child.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> (type, help)
        self._help: dict[str, tuple[str, str]] = {}  # guarded-by: _lock
        self._counters: dict[tuple[str, tuple], float] = {}  # guarded-by: _lock
        self._histograms: dict[tuple[str, tuple], Histogram] = {}  # guarded-by: _lock
        self._hist_bounds: dict[str, tuple[float, ...]] = {}  # guarded-by: _lock
        self._gauge_sources: list[Callable[[], Iterable[tuple]]] = []  # guarded-by: _lock

    # -- declaration ---------------------------------------------------
    def describe(self, name: str, kind: str, help_text: str) -> None:
        """Register a metric family's TYPE and HELP line."""
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {kind!r}")
        with self._lock:
            self._help[name] = (kind, help_text)

    def help_snapshot(self) -> "dict[str, tuple[str, str]]":
        """A consistent copy of the TYPE/HELP table (taken under the lock)."""
        with self._lock:
            return dict(self._help)

    def declare_histogram(
        self,
        name: str,
        help_text: str,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        """Describe a histogram family and pin its bucket bounds."""
        self.describe(name, "histogram", help_text)
        with self._lock:
            self._hist_bounds[name] = (
                tuple(bounds) if bounds is not None else default_latency_bounds()
            )

    def gauge_source(self, fn: Callable[[], Iterable[tuple]]) -> None:
        """Register a render-time source of ``(name, labels, value)``."""
        with self._lock:
            self._gauge_sources.append(fn)

    # -- recording -----------------------------------------------------
    @staticmethod
    def _label_key(labels: Optional[dict]) -> tuple:
        return tuple(sorted((labels or {}).items()))

    def inc(self, name: str, labels: Optional[dict] = None, by: float = 1.0) -> None:
        key = (name, self._label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + by

    def counter_value(self, name: str, labels: Optional[dict] = None) -> float:
        with self._lock:
            return self._counters.get((name, self._label_key(labels)), 0.0)

    def histogram(self, name: str, labels: Optional[dict] = None) -> Histogram:
        """The (lazily created) histogram child for one label set."""
        key = (name, self._label_key(labels))
        with self._lock:
            child = self._histograms.get(key)
            if child is None:
                child = Histogram(self._hist_bounds.get(name))
                self._histograms[key] = child
            return child

    def adopt_histogram(
        self, name: str, hist: Histogram, labels: Optional[dict] = None
    ) -> None:
        """Render an externally-owned :class:`Histogram` under ``name``.

        The owner keeps observing into its object; ``render`` reads the
        live counts.  This is how component-owned distributions (the
        telemetry latency histogram) appear on ``/metrics`` without being
        double-counted into a registry shadow copy.
        """
        with self._lock:
            self._hist_bounds.setdefault(name, hist.bounds)
            self._histograms[(name, self._label_key(labels))] = hist

    def observe(
        self, name: str, value: float, labels: Optional[dict] = None
    ) -> None:
        self.histogram(name, labels).observe(value)

    # -- rendering -----------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition of everything registered."""
        with self._lock:
            help_lines = dict(self._help)
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            sources = list(self._gauge_sources)
        gauges: list[tuple[str, dict, float]] = []
        for fn in sources:
            gauges.extend(fn())

        by_family: dict[str, list[str]] = {}

        def family(name: str) -> list[str]:
            if name not in by_family:
                kind, help_text = help_lines.get(name, ("untyped", name))
                by_family[name] = [
                    f"# HELP {name} {help_text}",
                    f"# TYPE {name} {kind}",
                ]
            return by_family[name]

        for (name, label_key), value in sorted(counters.items()):
            family(name).append(
                f"{name}{_fmt_labels(dict(label_key))} {_fmt_value(value)}"
            )
        for name, labels, value in gauges:
            family(name).append(
                f"{name}{_fmt_labels(labels)} {_fmt_value(value)}"
            )
        for (name, label_key), hist in sorted(histograms.items()):
            lines = family(name)
            labels = dict(label_key)
            with hist._lock:
                counts = list(hist._counts)
                count = hist.count
                total = hist.sum
            cum = 0
            for bound, c in zip(hist.bounds, counts):
                cum += c
                lines.append(
                    f"{name}_bucket{_fmt_labels({**labels, 'le': repr(bound)})}"
                    f" {cum}"
                )
            lines.append(
                f"{name}_bucket{_fmt_labels({**labels, 'le': '+Inf'})} {count}"
            )
            lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(total)}")
            lines.append(f"{name}_count{_fmt_labels(labels)} {count}")
        out: list[str] = []
        for name in sorted(by_family):
            out.extend(by_family[name])
        return "\n".join(out) + "\n"


class Span:
    """One timed stage: name, monotonic start/end, parent link, children.

    Use as a context manager (via :meth:`Tracer.span`); attach metadata
    through keyword arguments at creation or by assigning into ``meta``
    inside the block.  ``to_dict`` serializes the subtree with times
    relative to a clock origin (the trace root's start — see the module
    docstring's timing schema).
    """

    __slots__ = ("name", "tracer", "parent", "children", "meta", "t0", "t1")

    def __init__(
        self,
        name: str,
        tracer: "Tracer",
        parent: Optional["Span"] = None,
        **meta: object,
    ) -> None:
        self.name = name
        self.tracer = tracer
        self.parent = parent
        self.children: list[Span] = []
        self.meta = meta
        self.t0: Optional[float] = None
        self.t1: Optional[float] = None

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.t1 = time.perf_counter()
        self.tracer._pop(self)

    @property
    def duration_s(self) -> float:
        if self.t0 is None or self.t1 is None:
            return 0.0
        return self.t1 - self.t0

    def to_dict(self, origin: Optional[float] = None) -> dict:
        """JSON-ready subtree; times relative to ``origin`` (default: own
        start, making the root start at 0.0)."""
        if origin is None:
            origin = self.t0 if self.t0 is not None else 0.0
        out = {
            "name": self.name,
            "start_s": (self.t0 - origin) if self.t0 is not None else None,
            "duration_s": self.duration_s,
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.to_dict(origin) for c in self.children]
        return out


class Tracer:
    """Produces linked spans and feeds finished durations to a registry.

    One tracer instance serves one traced batch.  Nesting is implicit
    within a thread (a thread-local stack: the innermost open span of the
    current thread adopts new spans); spans opened on *another* thread —
    the executor's pool workers — pass ``parent`` explicitly, which also
    seeds that worker's local stack so deeper spans nest under it
    naturally.

    On exit every span's duration is recorded into the registry histogram
    ``stage_metric{stage=<name>}``, so traced traffic populates the
    per-stage histograms that ``/metrics`` exposes.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with tracer.span("a") as a:
    ...     with tracer.span("b", detail=1) as b:
    ...         pass
    >>> tracer.root is a and a.children == [b] and b.parent is a
    True
    >>> a.duration_s >= b.duration_s >= 0.0
    True
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        stage_metric: str = "repro_stage_seconds",
    ) -> None:
        self.registry = registry
        self.stage_metric = stage_metric
        self.root: Optional[Span] = None
        self._local = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on *this* thread (None outside spans).

        Cross-thread call sites capture this before fanning out and pass
        it as the explicit ``parent`` of spans opened on worker threads.
        """
        stack = self._stack()
        return stack[-1] if stack else None

    def record_span(
        self,
        name: str,
        t0: float,
        t1: float,
        parent: Optional[Span] = None,
        **meta: object,
    ) -> Span:
        """Attach an already-finished span from captured stamps.

        For call sites that measured a phase with existing
        ``perf_counter`` stamps (the service's batch pipeline) — creates
        the span, links it, and feeds the stage histogram, without the
        context-manager protocol in the hot path.
        """
        span = self.span(name, parent=parent, **meta)
        span.t0 = t0
        span.t1 = t1
        if self.registry is not None:
            self.registry.observe(
                self.stage_metric, span.duration_s, {"stage": name}
            )
        return span

    def span(self, name: str, parent: Optional[Span] = None, **meta: object) -> Span:
        """A new span; nests under ``parent`` or the thread's open span."""
        if parent is None:
            stack = self._stack()
            parent = stack[-1] if stack else None
        span = Span(name, self, parent=parent, **meta)
        if parent is not None:
            # Children lists are appended from pool threads concurrently.
            with self._lock:
                parent.children.append(span)
        elif self.root is None:
            self.root = span
        return span

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if self.registry is not None:
            self.registry.observe(
                self.stage_metric, span.duration_s, {"stage": span.name}
            )


class SlowQueryLog:
    """A bounded log of the ``k`` worst queries above a latency threshold.

    Entries are kept in a min-heap of size ``k`` keyed by latency: once
    full, a new slow query evicts the *fastest* logged one, so the log
    always holds the k worst seen.  ``snapshot()`` returns them
    worst-first.  ``threshold_ms=None`` disables recording entirely.

    Examples
    --------
    >>> log = SlowQueryLog(k=2, threshold_ms=1.0)
    >>> for ms in (5.0, 0.5, 9.0, 7.0):
    ...     _ = log.record({"latency_ms": ms})
    >>> [e["latency_ms"] for e in log.snapshot()]
    [9.0, 7.0]
    >>> log.n_recorded   # 0.5 was under the threshold
    3
    """

    def __init__(self, k: int = 32, threshold_ms: Optional[float] = None) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = int(k)
        self.threshold_ms = None if threshold_ms is None else float(threshold_ms)
        self.n_recorded = 0  # guarded-by: _lock
        self._heap: list[tuple[float, int, dict]] = []  # guarded-by: _lock
        self._seq = itertools.count()  # tie-break: dicts do not compare
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.threshold_ms is not None

    def record(self, entry: dict) -> bool:
        """Log ``entry`` (must carry ``latency_ms``) if slow enough."""
        if self.threshold_ms is None:
            return False
        latency = float(entry["latency_ms"])
        if latency < self.threshold_ms:
            return False
        with self._lock:
            self.n_recorded += 1
            item = (latency, next(self._seq), entry)
            if len(self._heap) < self.k:
                heapq.heappush(self._heap, item)
            elif latency > self._heap[0][0]:
                heapq.heapreplace(self._heap, item)
            else:
                return False
        return True

    def snapshot(self) -> list[dict]:
        """The logged entries, worst (highest latency) first."""
        with self._lock:
            items = sorted(self._heap, key=lambda it: (-it[0], it[1]))
        return [entry for _lat, _seq, entry in items]

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()


class ServiceObservability:
    """Registry + tracing policy + slow log for one ``QueryService``.

    The service owns exactly one of these.  It decides per batch whether
    to trace (:meth:`tracer_for`), collects every component snapshot in
    one pass (:meth:`snapshot` — the ``/stats`` payload), and renders
    the Prometheus exposition from those same snapshots plus the
    registry's counters and histograms (:meth:`render_prometheus` — the
    ``/metrics`` body).  Because both endpoints read the same collected
    state, a scrape and a ``/stats`` poll can never tell different
    stories about the same counter.

    Parameters
    ----------
    service:
        The owning :class:`~repro.service.service.QueryService`.
    tracing:
        Trace *every* batch (otherwise only batches that opt in with
        ``trace=True``).
    slow_query_threshold_ms:
        Queries at or above this latency enter the slow log; ``None``
        disables it.
    slow_log_size:
        How many worst traces the slow log retains.
    """

    #: (prometheus gauge name, help) -> extractor over the stats snapshot.
    _GAUGES: tuple = (
        ("repro_datasets", "Registered datasets (incl. tombstoned).",
         lambda s: s["n_datasets"]),
        ("repro_datasets_live", "Currently served datasets.",
         lambda s: s["n_live"]),
        ("repro_tombstones", "Tombstoned (removed) dataset indexes.",
         lambda s: s["n_removed"]),
        ("repro_delta_shard_depth", "Datasets in the append-only delta shard.",
         lambda s: s["delta_size"]),
        ("repro_cache_resident_bytes",
         "Estimated heap bytes held by cached leaf answers.",
         lambda s: s["cache"]["resident_bytes"]),
        ("repro_cache_size", "Cached leaf answers.",
         lambda s: s["cache"]["size"]),
        ("repro_cache_hit_ratio", "Leaf-cache lifetime hit ratio.",
         lambda s: s["cache"]["hit_rate"]),
        ("repro_plan_cache_size", "Compiled plans resident in the plan cache.",
         lambda s: s["plan_cache"]["size"]),
        ("repro_plan_cache_hit_ratio", "Plan-cache lifetime hit ratio.",
         lambda s: s["plan_cache"]["hit_rate"]),
    )

    #: (prometheus counter name, help) -> extractor over the snapshot.
    _COUNTERS: tuple = (
        ("repro_queries_total", "Queries answered.",
         lambda s: s["telemetry"]["n_queries"]),
        ("repro_batches_total", "search_batch calls answered.",
         lambda s: s["telemetry"]["n_batches"]),
        ("repro_cache_hits_total", "Leaf-cache hits.",
         lambda s: s["cache"]["hits"]),
        ("repro_cache_misses_total", "Leaf-cache misses.",
         lambda s: s["cache"]["misses"]),
        ("repro_cache_upgrades_total",
         "Stale cached answers refreshed from the delta shard.",
         lambda s: s["cache"]["upgrades"]),
        ("repro_cache_evictions_total", "Leaf-cache LRU evictions.",
         lambda s: s["cache"]["evictions"]),
        ("repro_cache_invalidations_total", "Full leaf-cache flushes.",
         lambda s: s["cache"]["invalidations"]),
        ("repro_plan_cache_hits_total", "Plan-cache hits.",
         lambda s: s["plan_cache"]["hits"]),
        ("repro_plan_cache_misses_total", "Plan-cache misses.",
         lambda s: s["plan_cache"]["misses"]),
        ("repro_executor_leaf_evals_total",
         "Unique leaves evaluated by the sharded executor.",
         lambda s: s["executor"]["leaf_evals"]),
        ("repro_executor_shard_tasks_total",
         "Per-shard leaf evaluations performed.",
         lambda s: s["executor"]["shard_tasks"]),
        ("repro_executor_delta_evals_total",
         "Delta-shard-only leaf evaluations (cache upgrades).",
         lambda s: s["executor"]["delta_evals"]),
        ("repro_slow_queries_total",
         "Queries at or above the slow-query threshold.",
         lambda s: s["observability"]["slow_queries"]),
    )

    def __init__(
        self,
        service: QueryService,
        tracing: bool = False,
        slow_query_threshold_ms: Optional[float] = None,
        slow_log_size: int = 32,
    ) -> None:
        self.service = service
        self.tracing = bool(tracing)
        self.registry = MetricsRegistry()
        self.slow_log = SlowQueryLog(
            k=slow_log_size, threshold_ms=slow_query_threshold_ms
        )
        reg = self.registry
        reg.declare_histogram(
            "repro_stage_seconds",
            "Time per pipeline stage, from traced queries.",
        )
        reg.declare_histogram(
            "repro_query_seconds",
            "Per-query service latency (shared batch phase + own assembly).",
        )
        reg.declare_histogram(
            "repro_batch_seconds", "search_batch wall-clock time."
        )
        # The telemetry layer observes these on every query/batch; the
        # registry renders the very same objects, so /stats quantiles and
        # scraped buckets cannot drift apart.
        reg.adopt_histogram(
            "repro_query_seconds", service.telemetry.latency_histogram
        )
        reg.adopt_histogram(
            "repro_batch_seconds", service.telemetry.batch_histogram
        )
        reg.declare_histogram(
            "repro_request_seconds", "HTTP request handling time per endpoint."
        )
        reg.describe(
            "repro_requests_total", "counter", "HTTP requests per endpoint/status."
        )
        reg.describe(
            "repro_traced_batches_total", "counter", "Batches answered with tracing on."
        )
        for name, help_text, _fn in self._GAUGES:
            reg.describe(name, "gauge", help_text)
        reg.describe("repro_shard_size", "gauge", "Datasets per base shard.")
        reg.describe(
            "repro_slow_query_threshold_ms", "gauge",
            "Slow-query latency threshold (0 = disabled).",
        )
        for name, help_text, _fn in self._COUNTERS:
            reg.describe(name, "counter", help_text)
        # Resilience counters are inc'ed directly on the registry (by the
        # service's degrade path and the server's admission gate), so the
        # registry renders them itself — describing them here only fixes
        # their HELP/TYPE lines.  They must NOT be added to _COUNTERS,
        # which would render a second, shadow sample for each.
        reg.describe(
            "repro_degraded_queries_total", "counter",
            "Queries answered with synopsis-screened (degraded) bounds.",
        )
        reg.describe(
            "repro_deadline_expirations_total", "counter",
            "Batches whose deadline budget expired before evaluation finished.",
        )
        reg.describe(
            "repro_requests_shed_total", "counter",
            "HTTP requests shed by admission control (429).",
        )

    # -- tracing policy ------------------------------------------------
    def tracer_for(self, trace: Optional[bool]) -> Optional[Tracer]:
        """A fresh tracer when this batch should be traced, else None.

        ``trace=None`` defers to the service-level ``tracing`` default;
        an explicit True/False overrides it per batch.
        """
        if trace is None:
            trace = self.tracing
        if not trace:
            return None
        self.registry.inc("repro_traced_batches_total")
        return Tracer(registry=self.registry)

    # -- recording helpers (called by the service/server) --------------
    def observe_request(self, endpoint: str, seconds: float, status: int) -> None:
        """One handled HTTP request (called by the server layer)."""
        self.registry.observe(
            "repro_request_seconds", seconds, {"endpoint": endpoint}
        )
        self.registry.inc(
            "repro_requests_total",
            {"endpoint": endpoint, "status": str(status)},
        )

    def record_slow(
        self,
        latency_s: float,
        expression_repr: str,
        stats: dict,
        trace: Optional[dict] = None,
    ) -> bool:
        """Offer one finished query to the slow log (no-op when disabled)."""
        entry = {
            "latency_ms": latency_s * 1e3,
            "unix_time": time.time(),
            "expression": expression_repr,
            "stats": dict(stats),
        }
        if trace is not None:
            entry["trace"] = trace
        return self.slow_log.record(entry)

    # -- exposition ----------------------------------------------------
    def snapshot(self) -> dict:
        """The ``/stats`` payload: every component snapshot in one pass."""
        service = self.service
        executor = service.executor
        return {
            "engine": executor.engine_kind,
            "algebra": service.algebra,
            "n_datasets": executor.n_datasets,
            "n_live": executor.n_live,
            "n_removed": len(executor.removed),
            "n_shards": executor.n_shards,
            "shard_sizes": executor.shard_sizes(),
            "delta_size": executor.delta_size,
            "capacity": executor.capacity,
            "executor": executor.stats_snapshot(),
            "cache": service.cache.snapshot(),
            "plan_cache": service.plans.snapshot(),
            "telemetry": service.telemetry.summary(),
            "observability": {
                "tracing": self.tracing,
                "slow_query_threshold_ms": self.slow_log.threshold_ms,
                "slow_log_size": self.slow_log.k,
                "slow_queries": self.slow_log.n_recorded,
            },
            "resilience": {
                "degraded_queries": self.registry.counter_value(
                    "repro_degraded_queries_total"
                ),
                "deadline_expirations": self.registry.counter_value(
                    "repro_deadline_expirations_total"
                ),
                "requests_shed": self.registry.counter_value(
                    "repro_requests_shed_total"
                ),
            },
        }

    def _gauge_samples(self) -> list[tuple[str, dict, float]]:
        stats = self.snapshot()
        out: list[tuple[str, dict, float]] = []
        for name, _help, fn in self._GAUGES:
            out.append((name, {}, float(fn(stats))))
        for shard, size in enumerate(stats["shard_sizes"]):
            out.append(("repro_shard_size", {"shard": shard}, float(size)))
        out.append((
            "repro_slow_query_threshold_ms", {},
            float(self.slow_log.threshold_ms or 0.0),
        ))
        for name, _help, fn in self._COUNTERS:
            out.append((name, {}, float(fn(stats))))
        return out

    def render_prometheus(self) -> str:
        """The ``/metrics`` body (text exposition format).

        Component counters (cache, plan cache, executor, telemetry) are
        read through the same :meth:`snapshot` that ``/stats`` serves —
        they are rendered as the source-of-truth lifetime totals rather
        than shadow-counted, which is what keeps the two endpoints
        consistent by construction.
        """
        # Gauge + component-counter samples are collected at render time;
        # registering the source once would keep a stale bound method on
        # service swap, so the source list is rebuilt per render instead.
        reg = self.registry
        samples = self._gauge_samples()
        out: list[str] = []
        rendered = reg.render().splitlines()
        out.extend(rendered)
        by_name: dict[str, list[str]] = {}
        # One consistent copy of the description table: reading reg._help
        # per sample would race concurrent describe() calls mid-scrape.
        help_lines = reg.help_snapshot()
        for name, labels, value in samples:
            kind, help_text = help_lines.get(name, ("gauge", name))
            block = by_name.setdefault(
                name,
                [f"# HELP {name} {help_text}", f"# TYPE {name} {kind}"],
            )
            block.append(f"{name}{_fmt_labels(labels)} {_fmt_value(value)}")
        for name in sorted(by_name):
            out.extend(by_name[name])
        return "\n".join(line for line in out if line) + "\n"
