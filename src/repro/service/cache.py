"""LRU cache of per-leaf answers with hit/miss/eviction accounting.

The cache sits between the planner and the sharded executor: keys are the
planner's canonical leaf keys, values are the global answers the executor
computed for those leaves — packed
:class:`~repro.core.bitset.DatasetBitmap` bitsets on the warm path
(``ceil(N / 64)`` words ≈ 64x smaller than a frozenset of the same
indexes), or frozensets when a set-algebra caller stores them (the
measurable baseline; ``put`` freezes plain sets).  Caching at the *leaf*
granularity — rather than whole expressions — is what makes cross-query
reuse effective: two different expressions that share a predicate share
its cached answer.  ``resident_bytes`` tracks the estimated heap footprint
of the stored values, so ``/stats`` can surface cache-memory regressions.

Cached answers are only valid for the synopsis set they were computed
against, so the cache exposes explicit :meth:`~LeafResultCache.invalidate`
(called by ``QueryService.rebuild`` whenever the synopsis set changes) and
tracks a ``generation`` counter so stale readers can detect the flush.

Live repository mutation deliberately does *not* flush the cache.  Every
entry carries the dataset-count **watermark** it was computed at: an entry
whose watermark trails the current count is still exact for every dataset
below the watermark, so the service upgrades it by evaluating the leaf on
the delta shard only and unioning (see
``ShardedBatchExecutor.eval_delta_leaves``).  Removals never touch entries
at all — tombstone masks are applied when answers are read.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Union

from repro.core.bitset import DatasetBitmap

#: What a cache entry may hold: packed bitset (warm path) or frozen set.
CachedAnswer = Union[frozenset, DatasetBitmap]

#: Estimated heap bytes of one CPython ``int`` object in a set.
_INT_BYTES = 28


def _answer_bytes(value: CachedAnswer) -> int:
    """Estimated heap footprint of one stored answer."""
    if isinstance(value, DatasetBitmap):
        # words buffer + ndarray/view header + bitmap object.
        return value.nbytes + 96
    return sys.getsizeof(value) + _INT_BYTES * len(value)


@dataclass
class CacheStats:
    """Counters of one cache's lifetime activity."""

    hits: int = 0
    misses: int = 0
    upgrades: int = 0
    evictions: int = 0
    invalidations: int = 0
    max_size_seen: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup; 0.0 before the first lookup."""
        return 0.0 if self.lookups == 0 else self.hits / self.lookups

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "upgrades": self.upgrades,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
            "max_size_seen": self.max_size_seen,
        }


@dataclass(frozen=True)
class CacheEntry:
    """One cached leaf answer plus the dataset-count it was computed at.

    ``indexes`` holds whatever representation the producer stored: a
    packed :class:`~repro.core.bitset.DatasetBitmap` on the warm path, a
    frozenset in the legacy set algebra.
    """

    indexes: CachedAnswer
    watermark: int = 0


class LeafResultCache:
    """A bounded LRU mapping leaf keys to frozen index sets.

    Parameters
    ----------
    capacity:
        Maximum number of cached leaves.  ``0`` disables caching (every
        lookup is a miss, nothing is stored) — handy for benchmarking the
        cold path without branching at call sites.

    Examples
    --------
    >>> cache = LeafResultCache(capacity=2)
    >>> cache.put("a", {1, 2})
    >>> sorted(cache.get("a"))
    [1, 2]
    >>> cache.get("b") is None
    True
    >>> cache.put("b", {3}); cache.put("c", {4})   # evicts "a" (LRU)
    >>> cache.get("a") is None, cache.stats.evictions
    (True, 1)

    Watermarked entries support warm-cache ingestion: the service stores the
    dataset count an answer was computed at and upgrades stale entries from
    the delta shard instead of flushing.

    >>> cache.put("leaf", {0, 2}, watermark=3)
    >>> entry = cache.get_entry("leaf")
    >>> (sorted(entry.indexes), entry.watermark)
    ([0, 2], 3)

    Bitset-valued entries (the warm path) are stored as-is — ~64x smaller
    than the equivalent frozenset — and ``resident_bytes`` tracks the
    footprint either way:

    >>> from repro.core.bitset import DatasetBitmap
    >>> cache.put("bits", DatasetBitmap.from_indices([0, 2], 128))
    >>> cache.get("bits").to_list()
    [0, 2]
    >>> cache.resident_bytes > 0
    True
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.stats = CacheStats()
        self.generation = 0
        self._entries: OrderedDict[Hashable, CacheEntry] = OrderedDict()  # guarded-by: _lock
        self._resident_bytes = 0  # guarded-by: _lock
        # The service can sit behind a ThreadingHTTPServer, so the
        # read-then-move and insert-then-evict sequences must be atomic.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        # OrderedDict.__len__ during a concurrent popitem/clear is not a
        # documented-safe combination; the lock costs nothing off the warm
        # path and keeps the read consistent with resident_bytes.
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership without touching recency or hit/miss counters."""
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> Optional[CachedAnswer]:  # lint: hot-path
        """The cached answer, or None; refreshes LRU recency on hit."""
        entry = self.get_entry(key)
        return None if entry is None else entry.indexes

    def get_entry(self, key: Hashable) -> Optional[CacheEntry]:  # lint: hot-path
        """The cached :class:`CacheEntry` (answer + watermark), or None.

        Counts a hit/miss and refreshes LRU recency exactly like
        :meth:`get`; callers that care about staleness compare the entry's
        ``watermark`` against the current dataset count.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(
        self,
        key: Hashable,
        indexes: "CachedAnswer | set",
        generation: Optional[int] = None,
        watermark: int = 0,
    ) -> None:
        """Store (or refresh) an answer, evicting the LRU entry if full.

        Bitset answers are stored as-is (bitmaps are immutable by
        convention); set answers are frozen so later caller mutation cannot
        leak in.  Pass the ``generation`` observed *before* computing
        ``indexes`` to make the write flush-safe: if an :meth:`invalidate`
        happened in the meantime (the synopsis set changed
        mid-computation), the stale answer is silently dropped instead of
        poisoning the fresh cache.  ``watermark`` records the dataset count
        the answer covers.
        """
        if self.capacity == 0:
            return
        if not isinstance(indexes, DatasetBitmap):
            indexes = frozenset(indexes)
        with self._lock:
            if generation is not None and generation != self.generation:
                return
            old = self._entries.get(key)
            if old is not None:
                self._resident_bytes -= _answer_bytes(old.indexes)
            self._entries[key] = CacheEntry(indexes, int(watermark))
            self._resident_bytes += _answer_bytes(indexes)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                _k, evicted = self._entries.popitem(last=False)
                self._resident_bytes -= _answer_bytes(evicted.indexes)
                self.stats.evictions += 1
            self.stats.max_size_seen = max(
                self.stats.max_size_seen, len(self._entries)
            )

    def export_entries(self) -> list[tuple[Hashable, CacheEntry]]:
        """The entries in LRU order (oldest first), for snapshotting.

        A consistent copy taken under the lock; recency and counters are
        untouched, so exporting is invisible to the hit-rate accounting.
        """
        with self._lock:
            return list(self._entries.items())

    def restore_entries(
        self,
        items: "list[tuple[Hashable, CacheEntry]]",
        generation: int = 0,
    ) -> None:
        """Replace the contents with snapshotted entries (oldest first).

        The inverse of :meth:`export_entries`: entries land in the given
        order so LRU recency survives a save/load cycle, resident-byte
        accounting is recomputed, and the generation counter is restored so
        generation-guarded writers from before the snapshot stay doomed.
        Entries beyond ``capacity`` are dropped from the old end, exactly
        as ``put`` would have evicted them (without counting evictions).
        """
        with self._lock:
            self._entries.clear()
            self._resident_bytes = 0
            kept = items[-self.capacity :] if self.capacity else []
            for key, entry in kept:
                self._entries[key] = entry
                self._resident_bytes += _answer_bytes(entry.indexes)
            self.generation = int(generation)

    def note_upgrades(self, n: int = 1) -> None:
        """Count ``n`` stale entries refreshed in place from the delta shard."""
        with self._lock:
            self.stats.upgrades += int(n)

    def invalidate(self) -> None:
        """Drop every entry (the synopsis set changed) and bump generation."""
        with self._lock:
            self._entries.clear()
            self._resident_bytes = 0
            self.stats.invalidations += 1
            self.generation += 1

    @property
    def resident_bytes(self) -> int:
        """Estimated heap bytes held by the cached answers."""
        with self._lock:
            return self._resident_bytes

    def snapshot(self) -> dict:
        """Stats plus current occupancy, JSON-ready."""
        with self._lock:
            out = self.stats.as_dict()
            out["size"] = len(self._entries)
            out["capacity"] = self.capacity
            out["generation"] = self.generation
            out["resident_bytes"] = self._resident_bytes
            return out
