"""Federated scatter-gather coordinator over per-node ``repro serve`` nodes.

The paper's federated setting (Section 1.1) is a marketplace: sellers
publish synopses, the index answers over the union of their catalogs,
and "missing sellers is generally unacceptable".  This module promotes
the one-process demo (``examples/federated_market.py``) to a real
topology: a :class:`FederatedCoordinator` owns a registry of *nodes*
(independent ``repro serve`` HTTP instances, each over a disjoint slice
of the global dataset universe), scatters ``POST /search/batch`` to all
of them, and merges the per-node bitset answers with the same
offset-shifted OR algebra the sharded executor uses in-process
(:meth:`~repro.core.bitset.DatasetBitmap.shift_into`) — sound because
every dataset lives in exactly one node, exactly like shards.  Nodes
built with :func:`federated_node_service` share the *global* accuracy
frame (``capacity``, global-index coresets, one bounding box), which
makes the healthy-path merge bit-identical to a single service over the
whole lake, not merely sound.

Robustness is the headline; the coordinator never turns a node problem
into a 500:

- **Sub-deadlines** — a query's ``deadline_ms`` budget is carved into a
  per-node RPC budget (the whole budget minus a merge-margin reserve, on
  the same monotonic :class:`~repro.service.deadline.Deadline` clock as
  the rest of the serving layer).  The forwarded body carries a slightly
  smaller ``deadline_ms`` so a healthy-but-slow node *degrades itself*
  (its own synopsis screen) instead of timing out on the wire.
- **Bounded retries + hedging** — failed RPC attempts are retried up to
  ``max_retries`` times with capped exponential backoff and full jitter
  (so a blip does not resynchronize every retry into a thundering herd);
  on the *first* attempt a single hedged duplicate request fires after
  ``hedge_delay_s`` if the primary looks like a straggler, and the first
  success wins.
- **Circuit breaker** — ``breaker_threshold`` consecutive failures trip
  a node's breaker open; while open the coordinator answers for that
  node from its registered synopsis screen without burning budget on
  doomed RPCs.  After ``breaker_reset_s`` a single half-open probe is
  admitted: success closes the breaker, failure re-opens it.
- **Graceful degradation** — a node that is down, tripped, drifted, or
  over budget contributes the three-valued screen of its *registered*
  synopses (:func:`~repro.service.degrade.screen_synopses` +
  :func:`~repro.service.degrade.combine_bounds`): a **must** bitmap of
  datasets certainly in its answer and a **maybe** bitmap of datasets
  possibly in it.  Nodes registered without synopses degrade to
  ``(∅, full)`` — still sound, just uninformative.  Because nodes
  partition the universe, OR-merging per-node ``must``/``maybe`` pairs
  preserves ``must ⊆ exact ⊆ must ∪ maybe`` globally, and the answer
  reports ``coverage``: the fraction of the universe answered exactly.

Failure injection: the ``node_rpc`` failpoint
(:mod:`repro.service.faults`) fires at the top of every RPC attempt in
the coordinator process, so a chaos test can stall or fail every scatter
leg without touching the node processes.

HTTP surface (see :func:`make_federation_server`):

- ``POST /nodes`` — register a node: ``{"url": ..., "n_datasets"?,
  "eps"?, "eps_effective"?, "synopses"?: [serialized synopsis, ...]}``
  (synopses in the :mod:`repro.synopsis.serialize` wire format; when
  ``n_datasets`` is omitted the node's ``/healthz`` is probed for it).
- ``DELETE /nodes`` — ``{"node_id": k}`` drops a node (later nodes'
  offsets shift down; the universe stays contiguous).
- ``POST /search`` / ``POST /search/batch`` — the single-node wire
  format plus a ``"federation"`` object reporting per-node outcomes and
  per-result ``coverage``.
- ``GET /stats`` — per-node health: breaker state, attempt/retry/hedge
  counters, last error.  ``GET /metrics`` — Prometheus text exposition
  with per-node latency histograms and scatter/gather/merge stage
  timings.  ``GET /healthz`` — liveness plus the federated universe size.
"""

from __future__ import annotations

import json
import queue
import random
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from http.server import ThreadingHTTPServer
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.bitset import DatasetBitmap, bitmap_from_wire
from repro.core.predicates import Expression
from repro.core.results import QueryResult
from repro.errors import QueryError, ReproError
from repro.service import faults
from repro.service.deadline import Deadline
from repro.service.degrade import combine_bounds, screen_synopses
from repro.service.observability import MetricsRegistry, Tracer
from repro.service.planner import plan_query
from repro.service.server import (
    JsonRequestHandler,
    expression_from_json,
    expression_to_json,
)
from repro.synopsis.base import Synopsis
from repro.synopsis.serialize import from_dict as synopsis_from_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geometry.rectangle import Rectangle
    from repro.service.service import QueryService

#: One node's parsed per-expression answer: (must, maybe-or-None).
NodeAnswer = Tuple[DatasetBitmap, Optional[DatasetBitmap]]


class NodeRPCError(RuntimeError):
    """A node RPC leg that failed after retries (internal control flow).

    Never escapes the coordinator: every :class:`NodeRPCError` is
    converted into a synopsis-screened degraded contribution.  ``reason``
    is the wire-visible label (``"unreachable"``, ``"breaker_open"``,
    ``"budget_exhausted"``, ``"universe_drift"``, ...).
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.reason = reason


class CircuitBreaker:
    """Consecutive-failure breaker with single-probe half-open recovery.

    States: ``closed`` (all traffic admitted) → ``open`` after
    ``threshold`` consecutive failures (all traffic rejected for
    ``reset_s``) → ``half_open`` (exactly one probe admitted) → back to
    ``closed`` on probe success or ``open`` on probe failure.  The clock
    is injectable so tests can drive transitions without sleeping.

    Examples
    --------
    >>> t = [0.0]
    >>> b = CircuitBreaker(threshold=2, reset_s=1.0, clock=lambda: t[0])
    >>> b.record_failure(); b.record_failure(); b.state
    'open'
    >>> b.allow()
    False
    >>> t[0] = 1.5
    >>> b.allow(), b.allow()  # one half-open probe, not two
    (True, False)
    >>> b.record_success(); b.state
    'closed'
    """

    def __init__(
        self,
        threshold: int = 3,
        reset_s: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = int(threshold)
        self.reset_s = float(reset_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"  # guarded-by: _lock
        self._failures = 0  # guarded-by: _lock
        self._opened_at = 0.0  # guarded-by: _lock
        self._probe_inflight = False  # guarded-by: _lock
        self._trips = 0  # guarded-by: _lock

    def allow(self) -> bool:
        """May a request go out now?  Half-open admits exactly one probe."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at < self.reset_s:
                    return False
                self._state = "half_open"
                self._probe_inflight = True
                return True
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._probe_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            if self._state == "half_open":
                self._state = "open"
                self._opened_at = self._clock()
                self._probe_inflight = False
                self._trips += 1
                return
            self._failures += 1
            if self._state == "closed" and self._failures >= self.threshold:
                self._state = "open"
                self._opened_at = self._clock()
                self._trips += 1

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "trips": self._trips,
                "threshold": self.threshold,
                "reset_s": self.reset_s,
            }


class FederatedNode:
    """One registered node: address, universe slice, screen, health."""

    def __init__(
        self,
        node_id: int,
        url: str,
        n_datasets: int,
        synopses: Optional[Sequence[Synopsis]],
        eps: Optional[float],
        eps_effective: Optional[float],
        breaker: CircuitBreaker,
    ) -> None:
        self.node_id = node_id
        self.url = url.rstrip("/")
        self.n_datasets = int(n_datasets)
        self.synopses = list(synopses) if synopses is not None else None
        self.eps = eps
        self.eps_effective = eps_effective
        self.breaker = breaker
        self._lock = threading.Lock()
        self.ok_calls = 0  # guarded-by: _lock
        self.failed_calls = 0  # guarded-by: _lock
        self.retries = 0  # guarded-by: _lock
        self.hedges = 0  # guarded-by: _lock
        self.degraded_served = 0  # guarded-by: _lock
        self.last_error: Optional[str] = None  # guarded-by: _lock
        self.last_latency_s: Optional[float] = None  # guarded-by: _lock

    def note_success(self, latency_s: float) -> None:
        with self._lock:
            self.ok_calls += 1
            self.last_latency_s = latency_s

    def note_failure(self, error: str) -> None:
        with self._lock:
            self.failed_calls += 1
            self.last_error = error

    def note_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def note_hedge(self) -> None:
        with self._lock:
            self.hedges += 1

    def note_degraded(self) -> None:
        with self._lock:
            self.degraded_served += 1

    def snapshot(self) -> dict:
        with self._lock:
            counters = {
                "ok_calls": self.ok_calls,
                "failed_calls": self.failed_calls,
                "retries": self.retries,
                "hedges": self.hedges,
                "degraded_served": self.degraded_served,
                "last_error": self.last_error,
                "last_latency_ms": (
                    self.last_latency_s * 1e3
                    if self.last_latency_s is not None
                    else None
                ),
            }
        return {
            "node_id": self.node_id,
            "url": self.url,
            "n_datasets": self.n_datasets,
            "synopses_registered": self.synopses is not None,
            "breaker": self.breaker.snapshot(),
            **counters,
        }


class FederatedBatch:
    """One scatter-gather outcome: merged results + per-node metadata."""

    __slots__ = ("results", "nodes", "coverage", "n_datasets", "trace")

    def __init__(
        self,
        results: List[QueryResult],
        nodes: List[dict],
        coverage: float,
        n_datasets: int,
        trace: Optional[dict] = None,
    ) -> None:
        self.results = results
        self.nodes = nodes
        self.coverage = coverage
        self.n_datasets = n_datasets
        self.trace = trace

    def meta(self) -> dict:
        """The wire-format ``"federation"`` object."""
        out: dict = {
            "n_datasets": self.n_datasets,
            "coverage": self.coverage,
            "nodes": self.nodes,
        }
        if self.trace is not None:
            out["trace"] = self.trace
        return out


class FederatedCoordinator:
    """Scatter-gather ``/search/batch`` over registered nodes; never 500s
    on a node failure.

    Parameters
    ----------
    rpc_timeout_s:
        Per-attempt transport timeout when the query carries no deadline
        (with a deadline, the attempt budget is the tighter of the two).
    max_retries:
        Failed-attempt retries per node call (attempts = 1 + retries).
    backoff_base_s, backoff_max_s:
        Capped exponential retry backoff; each sleep is fully jittered in
        ``[base·2^k/2, base·2^k]`` so simultaneous failures de-correlate.
    hedge_delay_s:
        Straggler hedge: if the first attempt has not answered after this
        long, one duplicate request fires and the first success wins.
        ``None`` disables hedging.
    breaker_threshold, breaker_reset_s:
        Per-node circuit breaker (see :class:`CircuitBreaker`).
    merge_margin:
        Fraction of a query's deadline budget reserved for the merge
        phase (the scatter legs see the rest).
    probe_timeout_s:
        ``/healthz`` probe timeout used at registration.
    seed:
        Seeds backoff jitter (tests pin it; production leaves it None).
    tracing:
        Record scatter/gather/merge spans on every batch and ship the
        span tree in the ``"federation"`` metadata.
    """

    def __init__(
        self,
        *,
        rpc_timeout_s: float = 5.0,
        max_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 0.5,
        hedge_delay_s: Optional[float] = 0.25,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 2.0,
        merge_margin: float = 0.15,
        probe_timeout_s: float = 2.0,
        seed: Optional[int] = None,
        tracing: bool = False,
    ) -> None:
        if not 0.0 <= merge_margin < 1.0:
            raise ValueError(
                f"merge_margin must be in [0, 1), got {merge_margin}"
            )
        self.rpc_timeout_s = float(rpc_timeout_s)
        self.max_retries = max(0, int(max_retries))
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.hedge_delay_s = (
            float(hedge_delay_s) if hedge_delay_s is not None else None
        )
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_reset_s = float(breaker_reset_s)
        self.merge_margin = float(merge_margin)
        self.probe_timeout_s = float(probe_timeout_s)
        self.tracing = bool(tracing)
        self._lock = threading.Lock()
        self._nodes: Dict[int, FederatedNode] = {}  # guarded-by: _lock
        self._next_node_id = 0  # guarded-by: _lock
        self._pool: Optional[ThreadPoolExecutor] = None  # guarded-by: _lock
        self._rng_lock = threading.Lock()
        self._rng = random.Random(seed)  # guarded-by: _rng_lock
        self.registry = MetricsRegistry()
        self._declare_metrics()

    # -- metrics -------------------------------------------------------
    def _declare_metrics(self) -> None:
        reg = self.registry
        reg.declare_histogram(
            "repro_federation_node_seconds",
            "Per-node scatter RPC latency (successful calls).",
        )
        reg.declare_histogram(
            "repro_federation_stage_seconds",
            "Coordinator pipeline stage latency (gather, merge).",
        )
        reg.declare_histogram(
            "repro_federation_request_seconds",
            "Coordinator HTTP request latency by endpoint.",
        )
        reg.describe(
            "repro_federation_requests_total",
            "counter",
            "Coordinator batches served, by outcome (exact/degraded).",
        )
        reg.describe(
            "repro_federation_node_attempts_total",
            "counter",
            "Node RPC attempts, by node and outcome.",
        )
        reg.describe(
            "repro_federation_retries_total",
            "counter",
            "Node RPC retries after a failed attempt.",
        )
        reg.describe(
            "repro_federation_hedges_total",
            "counter",
            "Hedged duplicate RPCs fired against stragglers.",
        )
        reg.describe(
            "repro_federation_breaker_trips_total",
            "counter",
            "Circuit-breaker open transitions across all nodes.",
        )
        reg.describe(
            "repro_federation_degraded_nodes_total",
            "counter",
            "Node contributions answered from the synopsis screen.",
        )
        reg.describe(
            "repro_federation_nodes",
            "gauge",
            "Registered node count.",
        )
        reg.gauge_source(self._gauges)

    def _gauges(self) -> List[Tuple[str, dict, float]]:
        with self._lock:
            n = len(self._nodes)
        return [("repro_federation_nodes", {}, float(n))]

    # -- node registry -------------------------------------------------
    def add_node(
        self,
        url: str,
        *,
        n_datasets: Optional[int] = None,
        synopses: Optional[Sequence[Union[Synopsis, dict]]] = None,
        eps: Optional[float] = None,
        eps_effective: Optional[float] = None,
    ) -> dict:
        """Register a node; returns its id and universe slice.

        ``n_datasets`` defaults to probing the node's ``/healthz``.
        ``synopses`` (optional, one per dataset, objects or the
        :mod:`repro.synopsis.serialize` wire dicts) power the node's
        degraded answers; without them an absent node contributes
        ``(∅, full slice)``.  ``eps`` / ``eps_effective`` are the node
        engine's accuracy-contract parameters — they tighten the screen's
        *can't* side; unknown is sound but looser.
        """
        if n_datasets is None:
            n_datasets = self._probe_n_datasets(url)
        n_datasets = int(n_datasets)
        if n_datasets <= 0:
            raise QueryError(
                f"node must own at least one dataset, got {n_datasets}"
            )
        parsed: Optional[List[Synopsis]] = None
        if synopses is not None:
            parsed = []
            for syn in synopses:
                if isinstance(syn, dict):
                    parsed.append(synopsis_from_dict(syn))
                else:
                    parsed.append(syn)
            if len(parsed) != n_datasets:
                raise QueryError(
                    f"synopsis count ({len(parsed)}) must match the node's "
                    f"n_datasets ({n_datasets}); a partial screen would make "
                    "degraded answers unsound"
                )
        with self._lock:
            node_id = self._next_node_id
            self._next_node_id += 1
            node = FederatedNode(
                node_id=node_id,
                url=url,
                n_datasets=n_datasets,
                synopses=parsed,
                eps=eps,
                eps_effective=eps_effective,
                breaker=CircuitBreaker(
                    threshold=self.breaker_threshold,
                    reset_s=self.breaker_reset_s,
                ),
            )
            self._nodes[node_id] = node
            offset = sum(
                n.n_datasets
                for n in self._nodes.values()
                if n.node_id < node_id
            )
            total = sum(n.n_datasets for n in self._nodes.values())
        return {
            "node_id": node_id,
            "url": node.url,
            "n_datasets": n_datasets,
            "offset": offset,
            "total_datasets": total,
            "synopses_registered": parsed is not None,
        }

    def remove_node(self, node_id: int) -> dict:
        """Drop a node; later nodes' offsets shift down to stay contiguous."""
        with self._lock:
            node = self._nodes.pop(int(node_id), None)
            total = sum(n.n_datasets for n in self._nodes.values())
        if node is None:
            raise QueryError(f"unknown node_id {node_id}")
        return {
            "node_id": node.node_id,
            "url": node.url,
            "removed": True,
            "total_datasets": total,
        }

    def _probe_n_datasets(self, url: str) -> int:
        try:
            with urllib.request.urlopen(
                url.rstrip("/") + "/healthz", timeout=self.probe_timeout_s
            ) as resp:
                health = json.loads(resp.read())
            return int(health["n_datasets"])
        except (OSError, ValueError, KeyError) as exc:
            raise QueryError(
                f"cannot register node {url!r}: /healthz probe failed "
                f"({exc}); pass n_datasets explicitly to register a node "
                "that is currently down"
            )

    def _layout(self) -> Tuple[List[FederatedNode], List[int], int]:
        """A consistent (nodes, offsets, total) snapshot for one request."""
        with self._lock:
            nodes = [self._nodes[k] for k in sorted(self._nodes)]
        offsets: List[int] = []
        total = 0
        for node in nodes:
            offsets.append(total)
            total += node.n_datasets
        return nodes, offsets, total

    @property
    def n_datasets(self) -> int:
        return self._layout()[2]

    @property
    def n_nodes(self) -> int:
        with self._lock:
            return len(self._nodes)

    def stats(self) -> dict:
        nodes, offsets, total = self._layout()
        per_node = []
        for node, offset in zip(nodes, offsets):
            snap = node.snapshot()
            snap["offset"] = offset
            per_node.append(snap)
        return {
            "federation": {
                "n_nodes": len(nodes),
                "n_datasets": total,
                "rpc_timeout_s": self.rpc_timeout_s,
                "max_retries": self.max_retries,
                "hedge_delay_s": self.hedge_delay_s,
                "merge_margin": self.merge_margin,
                "nodes": per_node,
            }
        }

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    # -- search --------------------------------------------------------
    def search(
        self,
        expression: Expression,
        *,
        deadline_ms: Optional[float] = None,
    ) -> FederatedBatch:
        """Scatter-gather a single expression (a one-element batch)."""
        return self.search_batch([expression], deadline_ms=deadline_ms)

    def search_batch(
        self,
        expressions: Sequence[Expression],
        *,
        deadline_ms: Optional[float] = None,
    ) -> FederatedBatch:
        """Scatter a batch to every node, merge with offset-shifted OR.

        Always returns one :class:`~repro.core.results.QueryResult` per
        expression; a node problem degrades that node's slice instead of
        failing the batch.  An all-healthy merge is *exactly* the answer
        a single-node service over the concatenated universe would give.
        """
        if not expressions:
            raise QueryError("'expressions' must be a non-empty list")
        nodes, offsets, total = self._layout()
        if not nodes:
            raise QueryError("no nodes registered with the coordinator")
        deadline = (
            Deadline.from_ms(deadline_ms) if deadline_ms is not None else None
        )
        merge_reserve = (
            float(deadline_ms) / 1e3 * self.merge_margin
            if deadline_ms is not None
            else 0.0
        )
        exprs_json = [expression_to_json(e) for e in expressions]
        tracer = Tracer(
            self.registry, stage_metric="repro_federation_stage_seconds"
        ) if self.tracing else None
        root = (
            tracer.span(
                "federated_batch",
                n_nodes=len(nodes),
                n_queries=len(expressions),
            )
            if tracer is not None
            else None
        )
        if root is not None:
            root.__enter__()
        try:
            t_gather = time.perf_counter()
            outcomes = self._scatter(
                nodes, exprs_json, deadline, merge_reserve, tracer
            )
            gather_s = time.perf_counter() - t_gather
            self.registry.observe(
                "repro_federation_stage_seconds", gather_s, {"stage": "gather"}
            )

            t_merge = time.perf_counter()
            if tracer is not None:
                with tracer.span("merge", n_nodes=len(nodes)):
                    batch = self._merge(
                        nodes, offsets, total, list(expressions), outcomes
                    )
            else:
                batch = self._merge(
                    nodes, offsets, total, list(expressions), outcomes
                )
            self.registry.observe(
                "repro_federation_stage_seconds",
                time.perf_counter() - t_merge,
                {"stage": "merge"},
            )
        finally:
            if root is not None:
                root.__exit__(None, None, None)
        degraded_any = any(r.stats.get("degraded") for r in batch.results)
        self.registry.inc(
            "repro_federation_requests_total",
            {"outcome": "degraded" if degraded_any else "exact"},
        )
        if tracer is not None and tracer.root is not None:
            batch.trace = tracer.root.to_dict()
        return batch

    # -- scatter -------------------------------------------------------
    def _scatter(
        self,
        nodes: List[FederatedNode],
        exprs_json: List[dict],
        deadline: Optional[Deadline],
        merge_reserve: float,
        tracer: Optional[Tracer],
    ) -> List[Union[List[NodeAnswer], NodeRPCError]]:
        """One outcome per node: parsed answers, or the error to screen."""
        span = tracer.span("scatter", n_nodes=len(nodes)) if tracer else None
        if span is not None:
            span.__enter__()
        try:
            if len(nodes) == 1:
                return [self._call_node_safe(
                    nodes[0], exprs_json, deadline, merge_reserve
                )]
            pool = self._ensure_pool(len(nodes))
            futures = [
                pool.submit(
                    self._call_node_safe,
                    node, exprs_json, deadline, merge_reserve,
                )
                for node in nodes
            ]
            return [f.result() for f in futures]
        finally:
            if span is not None:
                span.__exit__(None, None, None)

    def _ensure_pool(self, width: int) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None or self._pool._max_workers < width:
                old = self._pool
                self._pool = ThreadPoolExecutor(
                    max_workers=max(4, 2 * width),
                    thread_name_prefix="fed-scatter",
                )
            else:
                old = None
            pool = self._pool
        if old is not None:
            old.shutdown(wait=False)
        return pool

    def _call_node_safe(
        self,
        node: FederatedNode,
        exprs_json: List[dict],
        deadline: Optional[Deadline],
        merge_reserve: float,
    ) -> Union[List[NodeAnswer], NodeRPCError]:
        try:
            return self._call_node(node, exprs_json, deadline, merge_reserve)
        except NodeRPCError as exc:
            node.note_failure(str(exc))
            return exc

    def _attempt_budget(
        self, deadline: Optional[Deadline], merge_reserve: float
    ) -> Optional[float]:
        """Seconds available for the next RPC attempt (None = no deadline)."""
        if deadline is None:
            return None
        return deadline.remaining() - merge_reserve

    def _call_node(
        self,
        node: FederatedNode,
        exprs_json: List[dict],
        deadline: Optional[Deadline],
        merge_reserve: float,
    ) -> List[NodeAnswer]:
        """One node's answers, through breaker + retries + hedging."""
        if not node.breaker.allow():
            raise NodeRPCError(
                "breaker_open", f"node {node.node_id} circuit breaker is open"
            )
        last_exc: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            budget = self._attempt_budget(deadline, merge_reserve)
            if budget is not None and budget <= 1e-3:
                # Out of budget: NOT a node failure — don't feed the
                # breaker, just fall back to the screen.
                raise NodeRPCError(
                    "budget_exhausted",
                    f"node {node.node_id}: deadline budget exhausted "
                    f"before attempt {attempt}",
                )
            timeout = (
                self.rpc_timeout_s
                if budget is None
                else min(self.rpc_timeout_s, budget)
            )
            if attempt > 0:
                node.note_retry()
                self.registry.inc("repro_federation_retries_total")
            try:
                answers, latency_s = self._one_round(
                    node, exprs_json, timeout,
                    hedge=(attempt == 0 and self.hedge_delay_s is not None),
                    forward_deadline=budget is not None,
                )
            except (
                OSError, ValueError, KeyError, QueryError,
                faults.FailpointError,
            ) as exc:
                last_exc = exc
                node.breaker.record_failure()
                self.registry.inc(
                    "repro_federation_node_attempts_total",
                    {"node": str(node.node_id), "outcome": "error"},
                )
                if attempt < self.max_retries:
                    self._backoff_sleep(attempt, deadline, merge_reserve)
                continue
            node.breaker.record_success()
            node.note_success(latency_s)
            self.registry.inc(
                "repro_federation_node_attempts_total",
                {"node": str(node.node_id), "outcome": "ok"},
            )
            self.registry.observe(
                "repro_federation_node_seconds",
                latency_s,
                {"node": str(node.node_id)},
            )
            return answers
        self._note_breaker_trips(node)
        raise NodeRPCError(
            "unreachable",
            f"node {node.node_id} failed after "
            f"{self.max_retries + 1} attempts: {last_exc}",
        )

    def _note_breaker_trips(self, node: FederatedNode) -> None:
        # The registry counter mirrors the breaker's own trip count so
        # /metrics needs no breaker-internal reads at render time.
        trips = node.breaker.snapshot()["trips"]
        seen = self.registry.counter_value(
            "repro_federation_breaker_trips_total",
            {"node": str(node.node_id)},
        )
        if trips > seen:
            self.registry.inc(
                "repro_federation_breaker_trips_total",
                {"node": str(node.node_id)},
                by=trips - seen,
            )

    def _backoff_sleep(
        self,
        attempt: int,
        deadline: Optional[Deadline],
        merge_reserve: float,
    ) -> None:
        """Capped exponential backoff with full jitter, budget-bounded."""
        ceiling = min(
            self.backoff_base_s * (2.0 ** attempt), self.backoff_max_s
        )
        with self._rng_lock:
            delay = ceiling * (0.5 + 0.5 * self._rng.random())
        budget = self._attempt_budget(deadline, merge_reserve)
        if budget is not None:
            # Never sleep the whole remaining budget away: leave at least
            # half of it for the retry itself.
            delay = min(delay, max(0.0, budget * 0.5))
        if delay > 0.0:
            time.sleep(delay)

    def _one_round(
        self,
        node: FederatedNode,
        exprs_json: List[dict],
        timeout: float,
        hedge: bool,
        forward_deadline: bool,
    ) -> Tuple[List[NodeAnswer], float]:
        """One attempt round: a primary request plus at most one hedge.

        Returns the first successful response; raises the last failure
        when every launched request failed or the round timed out.
        """
        results: "queue.Queue[Tuple[str, object]]" = queue.Queue()
        self._launch_attempt(
            results, node, exprs_json, timeout, forward_deadline
        )
        outstanding = 1
        hedged = False
        t_end = time.perf_counter() + timeout
        last_exc: Optional[BaseException] = None
        while outstanding > 0:
            now = time.perf_counter()
            if now >= t_end:
                break
            if hedge and not hedged and self.hedge_delay_s is not None:
                wait = min(self.hedge_delay_s, t_end - now)
            else:
                wait = t_end - now
            try:
                kind, value = results.get(timeout=wait)
            except queue.Empty:
                if hedge and not hedged and time.perf_counter() < t_end:
                    hedged = True
                    outstanding += 1
                    node.note_hedge()
                    self.registry.inc("repro_federation_hedges_total")
                    self._launch_attempt(
                        results, node, exprs_json,
                        max(1e-3, t_end - time.perf_counter()),
                        forward_deadline,
                    )
                continue
            if kind == "ok":
                answers, latency_s = value  # type: ignore[misc]
                return answers, latency_s
            outstanding -= 1
            assert isinstance(value, BaseException)
            last_exc = value
        if last_exc is not None:
            raise last_exc
        raise OSError(
            f"node {node.node_id} RPC timed out after {timeout:.3f}s"
        )

    def _launch_attempt(
        self,
        results: "queue.Queue[Tuple[str, object]]",
        node: FederatedNode,
        exprs_json: List[dict],
        timeout: float,
        forward_deadline: bool,
    ) -> None:
        """Fire one RPC attempt on a dedicated daemon thread.

        Attempts outlive the round that launched them (an abandoned
        straggler finishes into a queue nobody reads); dedicated threads
        keep a stuck attempt from starving the scatter pool.
        """
        payload: dict = {"expressions": exprs_json, "format": "bitset"}
        if forward_deadline:
            # Slightly under the transport timeout so the node degrades
            # itself on deadline (sound must/maybe; see service.search_batch)
            # instead of dying on the wire.
            payload["deadline_ms"] = max(1.0, timeout * 0.9 * 1e3)
        body = json.dumps(payload).encode("utf-8")

        def run() -> None:
            t0 = time.perf_counter()
            try:
                if faults.ARMED is not None:
                    faults.hit("node_rpc")
                req = urllib.request.Request(
                    node.url + "/search/batch",
                    data=body,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(req, timeout=timeout) as resp:
                    raw = json.loads(resp.read())
                answers = self._parse_node_results(
                    node, raw, len(exprs_json)
                )
                results.put(("ok", (answers, time.perf_counter() - t0)))
            except (
                OSError, ValueError, KeyError, QueryError,
                NodeRPCError, faults.FailpointError,
            ) as exc:
                results.put(("err", exc))

        threading.Thread(target=run, daemon=True).start()

    def _parse_node_results(
        self, node: FederatedNode, raw: dict, n_expected: int
    ) -> List[NodeAnswer]:
        body = raw.get("results")
        if not isinstance(body, list) or len(body) != n_expected:
            raise ValueError(
                f"node {node.node_id} answered {0 if not isinstance(body, list) else len(body)} "
                f"results for {n_expected} expressions"
            )
        answers: List[NodeAnswer] = []
        for one in body:
            must = bitmap_from_wire(one["bitset"])
            if must.nbits != node.n_datasets:
                # The node's universe grew past its registration — merging
                # would mis-map datasets.  Treat as failure; re-register
                # the node to adopt the new slice size.
                raise NodeRPCError(
                    "universe_drift",
                    f"node {node.node_id} answered over {must.nbits} "
                    f"datasets but registered {node.n_datasets}",
                )
            maybe: Optional[DatasetBitmap] = None
            if one.get("degraded"):
                maybe = bitmap_from_wire(one["maybe_bitset"])
                if maybe.nbits != node.n_datasets:
                    raise NodeRPCError(
                        "universe_drift",
                        f"node {node.node_id} maybe-bitset over "
                        f"{maybe.nbits} != {node.n_datasets} datasets",
                    )
            answers.append((must, maybe))
        return answers

    # -- degradation + merge -------------------------------------------
    def _screen_node(
        self, node: FederatedNode, expressions: List[Expression]
    ) -> List[NodeAnswer]:
        """Three-valued (must, maybe) per expression from the node's
        registered synopses; ``(∅, full)`` when none were registered."""
        node.note_degraded()
        self.registry.inc("repro_federation_degraded_nodes_total")
        n = node.n_datasets
        if node.synopses is None:
            empty = DatasetBitmap.zeros(n)
            full = DatasetBitmap.full(n)
            return [(empty, full) for _ in expressions]
        answers: List[NodeAnswer] = []
        for expression in expressions:
            plan = plan_query(expression)
            bounds = {
                key: screen_synopses(
                    node.synopses,
                    leaf,
                    eps=node.eps,
                    eps_effective=node.eps_effective,
                    n_datasets=n,
                )
                for key, leaf in plan.leaves.items()
            }
            must, possible = combine_bounds(plan.expression, bounds)
            answers.append((must, possible.andnot(must)))
        return answers

    def _merge(
        self,
        nodes: List[FederatedNode],
        offsets: List[int],
        total: int,
        expressions: List[Expression],
        outcomes: List[Union[List[NodeAnswer], NodeRPCError]],
    ) -> FederatedBatch:
        node_meta: List[dict] = []
        resolved: List[List[NodeAnswer]] = []
        exact_node: List[bool] = []
        for node, outcome in zip(nodes, outcomes):
            if isinstance(outcome, NodeRPCError):
                resolved.append(self._screen_node(node, expressions))
                exact_node.append(False)
                node_meta.append(
                    {
                        "node_id": node.node_id,
                        "url": node.url,
                        "status": outcome.reason,
                        "screened": True,
                    }
                )
            else:
                resolved.append(outcome)
                exact_node.append(True)
                node_meta.append(
                    {
                        "node_id": node.node_id,
                        "url": node.url,
                        "status": "ok",
                        "screened": False,
                    }
                )
        results: List[QueryResult] = []
        coverage_sum = 0.0
        for qi in range(len(expressions)):
            must_total = DatasetBitmap.zeros(total)
            maybe_total = DatasetBitmap.zeros(total)
            degraded = False
            exact_datasets = 0
            reasons: List[str] = []
            for ni, (node, offset, answers, ok) in enumerate(
                zip(nodes, offsets, resolved, exact_node)
            ):
                must, maybe = answers[qi]
                must_total = must_total | must.shift_into(offset, total)
                if not ok:
                    degraded = True
                    reasons.append("node_" + str(node_meta[ni]["status"]))
                    if maybe is not None:
                        maybe_total = maybe_total | maybe.shift_into(
                            offset, total
                        )
                elif maybe is not None and maybe.any():
                    # The node answered but degraded itself under its
                    # forwarded sub-deadline.
                    degraded = True
                    reasons.append("node_self_degraded")
                    maybe_total = maybe_total | maybe.shift_into(
                        offset, total
                    )
                else:
                    exact_datasets += node.n_datasets
            coverage = exact_datasets / total if total else 1.0
            coverage_sum += coverage
            stats: dict = {
                "federated": True,
                "n_nodes": len(nodes),
                "coverage": coverage,
            }
            if degraded:
                stats["degraded"] = True
                stats["degrade_reason"] = ",".join(sorted(set(reasons)))
                results.append(
                    QueryResult(
                        bitmap=must_total,
                        maybe_bitmap=maybe_total.andnot(must_total),
                        stats=stats,
                    )
                )
            else:
                results.append(QueryResult(bitmap=must_total, stats=stats))
        return FederatedBatch(
            results=results,
            nodes=node_meta,
            coverage=coverage_sum / len(expressions),
            n_datasets=total,
        )


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
_FED_ENDPOINTS = frozenset(
    {"/healthz", "/stats", "/metrics", "/search", "/search/batch", "/nodes"}
)


class _FederationRequestHandler(JsonRequestHandler):
    """Coordinator endpoints over a bound :class:`FederatedCoordinator`."""

    coordinator: FederatedCoordinator  # injected by make_federation_handler

    def _observe(self, t0: float) -> None:
        endpoint = self.path if self.path in _FED_ENDPOINTS else "other"
        reg = self.coordinator.registry
        reg.observe(
            "repro_federation_request_seconds",
            time.perf_counter() - t0,
            {"endpoint": endpoint},
        )

    def do_GET(self) -> None:
        t0 = time.perf_counter()
        try:
            coord = self.coordinator
            if self.path == "/healthz":
                self._send_json(
                    {
                        "status": "ok",
                        "role": "coordinator",
                        "n_nodes": coord.n_nodes,
                        "n_datasets": coord.n_datasets,
                    }
                )
            elif self.path == "/stats":
                self._send_json(coord.stats())
            elif self.path == "/metrics":
                self._send_text(coord.registry.render())
            else:
                self._send_json(
                    {"error": f"unknown path {self.path}"}, status=404
                )
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self._send_json({"error": f"internal error: {exc}"}, status=500)
        finally:
            self._observe(t0)

    def do_POST(self) -> None:
        t0 = time.perf_counter()
        try:
            body = self._read_json()
            coord = self.coordinator
            if self.path == "/search":
                expr = expression_from_json(body.get("expression"))
                batch = coord.search(
                    expr, deadline_ms=body.get("deadline_ms")
                )
                result = batch.results[0]
                payload: dict = {
                    "indexes": result.indexes,
                    "stats": result.stats,
                    "federation": batch.meta(),
                }
                payload.update(_degraded_fields(result, "indexes"))
                self._send_json(payload)
            elif self.path == "/search/batch":
                exprs_json = body.get("expressions")
                if not isinstance(exprs_json, list) or not exprs_json:
                    raise QueryError("'expressions' must be a non-empty list")
                fmt = body.get("format", "indexes")
                if fmt not in ("indexes", "bitset"):
                    raise QueryError(
                        f"'format' must be 'indexes' or 'bitset', got {fmt!r}"
                    )
                exprs = [expression_from_json(e) for e in exprs_json]
                batch = coord.search_batch(
                    exprs, deadline_ms=body.get("deadline_ms")
                )
                encoded = []
                for r in batch.results:
                    one: dict
                    if fmt == "bitset":
                        assert r.bitmap is not None
                        one = {
                            "bitset": r.bitmap.to_wire(),
                            "out_size": r.out_size,
                            "stats": r.stats,
                        }
                    else:
                        one = {"indexes": r.indexes, "stats": r.stats}
                    one.update(_degraded_fields(r, fmt))
                    encoded.append(one)
                self._send_json(
                    {"results": encoded, "federation": batch.meta()}
                )
            elif self.path == "/nodes":
                url = body.get("url")
                if not isinstance(url, str) or not url:
                    raise QueryError("'url' must be a non-empty string")
                receipt = coord.add_node(
                    url,
                    n_datasets=body.get("n_datasets"),
                    synopses=body.get("synopses"),
                    eps=body.get("eps"),
                    eps_effective=body.get("eps_effective"),
                )
                self._send_json(receipt)
            else:
                self._send_json(
                    {"error": f"unknown path {self.path}"}, status=404
                )
        except ReproError as exc:
            self._send_json({"error": str(exc)}, status=400)
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self._send_json({"error": f"internal error: {exc}"}, status=500)
        finally:
            self._observe(t0)

    def do_DELETE(self) -> None:
        t0 = time.perf_counter()
        try:
            body = self._read_json()
            if self.path == "/nodes":
                node_id = body.get("node_id")
                if not isinstance(node_id, int):
                    raise QueryError("'node_id' must be an integer")
                self._send_json(self.coordinator.remove_node(node_id))
            else:
                self._send_json(
                    {"error": f"unknown path {self.path}"}, status=404
                )
        except ReproError as exc:
            self._send_json({"error": str(exc)}, status=400)
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self._send_json({"error": f"internal error: {exc}"}, status=500)
        finally:
            self._observe(t0)


def _degraded_fields(result: QueryResult, fmt: str) -> dict:
    """Degraded wire fields (mirrors the single-node server's shape)."""
    if not result.stats.get("degraded"):
        return {}
    out: dict = {"degraded": True}
    maybe = result.maybe_bitmap
    assert maybe is not None
    if fmt == "bitset":
        out["maybe_bitset"] = maybe.to_wire()
    else:
        out["maybe_indexes"] = maybe.to_list()
    return out


def make_federation_handler(
    coordinator: FederatedCoordinator, quiet: bool = True
) -> type:
    """A request-handler class bound to one coordinator."""
    return type(
        "BoundFederationRequestHandler",
        (_FederationRequestHandler,),
        {"coordinator": coordinator, "quiet": quiet},
    )


def make_federation_server(
    coordinator: FederatedCoordinator,
    host: str = "127.0.0.1",
    port: int = 8770,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """A ready-to-run coordinator HTTP server (port 0 = ephemeral)."""
    return ThreadingHTTPServer(
        (host, port), make_federation_handler(coordinator, quiet)
    )


def serve_federation(
    coordinator: FederatedCoordinator,
    host: str = "127.0.0.1",
    port: int = 8770,
    quiet: bool = False,
) -> None:
    """Serve forever (Ctrl-C to stop); the ``repro federate`` entry point."""
    httpd = make_federation_server(coordinator, host, port, quiet=quiet)
    addr = httpd.server_address
    print(
        f"repro federation coordinator listening on "
        f"http://{addr[0]}:{addr[1]} "
        f"({coordinator.n_nodes} node(s), {coordinator.n_datasets} datasets)"
    )
    print(
        "endpoints: GET /healthz, GET /stats, GET /metrics, POST /search, "
        "POST /search/batch, POST /nodes, DELETE /nodes"
    )
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("shutting down")
    finally:
        httpd.server_close()
        coordinator.close()


def federated_node_service(
    arrays: Sequence[Any],
    *,
    offset: int,
    total: int,
    bounding_box: "Rectangle",
    seed: int = 0,
    **service_kwargs: Any,
) -> "QueryService":
    """Build one node's :class:`QueryService` in the *global* accuracy frame.

    A node that constructs its service naively over its local slice gets a
    local accuracy contract: ``eps_effective`` resolved against its own
    dataset count, coresets seeded by *local* dataset index, and a Ptile
    bounding box derived from its own repository.  Each is sound in
    isolation, but the union of such nodes is **not** bit-identical to a
    single service over the whole lake — boundary datasets can flip.

    This helper pins all three to the federation's global frame, the same
    three mechanisms :class:`~repro.service.sharding.ShardedBatchExecutor`
    uses to make shard answers partition-independent in-process:

    - ``capacity=total`` resolves ``phi_eff`` / ``sample_size`` /
      ``eps_effective`` against the global universe size;
    - every synopsis is a
      :class:`~repro.service.sharding.SeededSampleSynopsis` seeded by the
      dataset's **global** index ``offset + j`` (with
      ``deterministic=False`` so the service does not re-wrap them with
      local indexes);
    - ``bounding_box`` is the global lake's box, shared by every node.

    With these pinned, the scatter-gather merge over healthy nodes equals
    a single-node service over the same total N exactly — the acceptance
    bar the federation test and bench suites assert.

    Parameters other than the frame (``n_shards``, ``eps``,
    ``sample_size``, ``engine``, ...) pass through to
    :class:`QueryService` and must be identical across nodes.
    """
    from repro.core.framework import Repository
    from repro.service.service import QueryService
    from repro.service.sharding import SeededSampleSynopsis
    from repro.synopsis.exact import ExactSynopsis

    if offset < 0 or offset + len(arrays) > total:
        raise QueryError(
            f"node slice [{offset}, {offset + len(arrays)}) does not fit "
            f"the declared universe of {total} datasets"
        )
    synopses = [
        SeededSampleSynopsis(ExactSynopsis(a), seed, offset + j)
        for j, a in enumerate(arrays)
    ]
    return QueryService(
        repository=Repository.from_arrays(arrays),
        synopses=synopses,
        deterministic=False,
        bounding_box=bounding_box,
        capacity=total,
        seed=seed,
        **service_kwargs,
    )


__all__ = [
    "CircuitBreaker",
    "FederatedBatch",
    "FederatedCoordinator",
    "FederatedNode",
    "NodeRPCError",
    "federated_node_service",
    "make_federation_handler",
    "make_federation_server",
    "serve_federation",
]
