"""CI smoke check for the /metrics Prometheus endpoint.

Boots a small warmed service behind the stdlib HTTP server, drives a few
traced and untraced queries over the wire, then scrapes ``/metrics`` and
asserts the exposition is well-formed and complete:

- every non-comment line parses as ``name{labels} value``;
- every required metric family is present with a ``# TYPE`` header;
- histogram ``_bucket`` series are cumulative and end in ``+Inf`` equal
  to ``_count``;
- ``/stats`` and ``/metrics`` agree on the query counter.

Run from the repo root: ``PYTHONPATH=src python scripts/metrics_smoke.py``.
Exits non-zero (assertion) on any violation; prints one summary line on
success.  No third-party HTTP or Prometheus client is used, so the check
runs anywhere the test suite runs.
"""

from __future__ import annotations

import json
import re
import threading
import urllib.request

import numpy as np

from repro.core.framework import Repository
from repro.service import QueryService
from repro.service.server import expression_to_json, make_server
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[^ ]+)$"
)

REQUIRED_FAMILIES = {
    "repro_stage_seconds": "histogram",
    "repro_query_seconds": "histogram",
    "repro_batch_seconds": "histogram",
    "repro_request_seconds": "histogram",
    "repro_requests_total": "counter",
    "repro_queries_total": "counter",
    "repro_cache_hits_total": "counter",
    "repro_cache_misses_total": "counter",
    "repro_plan_cache_hits_total": "counter",
    "repro_cache_resident_bytes": "gauge",
    "repro_datasets_live": "gauge",
    "repro_tombstones": "gauge",
    "repro_delta_shard_depth": "gauge",
    "repro_shard_size": "gauge",
}


def fetch(url: str) -> tuple[bytes, str]:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.read(), resp.headers.get("Content-Type", "")


def main() -> int:
    lake = synthetic_data_lake(40, 1, np.random.default_rng(7),
                               family="clustered", median_size=80)
    service = QueryService(
        repository=Repository.from_arrays(lake),
        n_shards=2, eps=0.2, sample_size=8, seed=7,
        slow_query_threshold_ms=0.0,
    )
    httpd = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address
    base = f"http://{host}:{port}"
    try:
        queries = batched_query_workload(
            6, 1, np.random.default_rng(8), pref_fraction=0.25, max_leaves=3,
        )
        for trace in (False, True, False):  # cold, traced warm, untraced warm
            body = json.dumps({
                "expressions": [expression_to_json(q) for q in queries],
                "trace": trace,
            }).encode()
            req = urllib.request.Request(f"{base}/search/batch", data=body)
            with urllib.request.urlopen(req, timeout=10) as resp:
                payload = json.loads(resp.read())
            assert ("trace" in payload) == trace, payload.keys()

        text, ctype = fetch(f"{base}/metrics")
        assert ctype.startswith("text/plain"), ctype
        exposition = text.decode("utf-8")

        types: dict[str, str] = {}
        samples: dict[str, list[tuple[dict, float]]] = {}
        for line in exposition.splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                types[name] = kind
                continue
            if line.startswith("#") or not line:
                continue
            m = SAMPLE_LINE.match(line)
            assert m, f"unparseable sample line: {line!r}"
            labels = {}
            if m.group("labels"):
                for part in re.findall(r'(\w+)="((?:[^"\\]|\\.)*)"',
                                       m.group("labels")):
                    labels[part[0]] = part[1]
            samples.setdefault(m.group("name"), []).append(
                (labels, float(m.group("value")))
            )

        for family, kind in REQUIRED_FAMILIES.items():
            assert types.get(family) == kind, (
                f"{family}: expected TYPE {kind}, got {types.get(family)}"
            )
            suffix = "_bucket" if kind == "histogram" else ""
            assert samples.get(family + suffix), f"{family}: no samples"

        # Histogram buckets must be cumulative, ending at +Inf == _count.
        for family, kind in REQUIRED_FAMILIES.items():
            if kind != "histogram":
                continue
            by_series: dict[tuple, list[tuple[float, float]]] = {}
            for labels, value in samples[family + "_bucket"]:
                le = labels.pop("le")
                key = tuple(sorted(labels.items()))
                bound = float("inf") if le == "+Inf" else float(le)
                by_series.setdefault(key, []).append((bound, value))
            counts = {tuple(sorted(lbl.items())): v
                      for lbl, v in samples[family + "_count"]}
            for key, buckets in by_series.items():
                buckets.sort()
                values = [v for _, v in buckets]
                assert values == sorted(values), (
                    f"{family}{dict(key)}: buckets not cumulative"
                )
                assert buckets[-1][0] == float("inf")
                assert values[-1] == counts[key], (
                    f"{family}{dict(key)}: +Inf bucket != _count"
                )

        stats, _ = fetch(f"{base}/stats")
        stats = json.loads(stats)
        prom_queries = samples["repro_queries_total"][0][1]
        assert prom_queries == stats["telemetry"]["n_queries"], (
            "/stats and /metrics disagree on the query count"
        )
        slow, _ = fetch(f"{base}/stats/slow")
        slow = json.loads(slow)
        assert slow["n_recorded"] >= 1, "slow log empty at threshold 0"

        n_families = len(REQUIRED_FAMILIES)
        n_samples = sum(len(v) for v in samples.values())
        print(f"metrics smoke: {n_families} required families present, "
              f"{n_samples} samples parsed, buckets cumulative, "
              f"/stats consistent, slow log recording")
        return 0
    finally:
        httpd.shutdown()
        thread.join(timeout=10)
        service.close()


if __name__ == "__main__":
    raise SystemExit(main())
