"""Packaging for the ``repro`` distribution-aware dataset search library."""

import os
import re

from setuptools import find_packages, setup

HERE = os.path.abspath(os.path.dirname(__file__))


def read_version() -> str:
    # Regex instead of import: setup must not require numpy at build time.
    init_path = os.path.join(HERE, "src", "repro", "__init__.py")
    with open(init_path, encoding="utf-8") as fh:
        match = re.search(r'^__version__ = "([^"]+)"', fh.read(), re.MULTILINE)
    if match is None:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


def read_long_description() -> str:
    readme = os.path.join(HERE, "README.md")
    if not os.path.exists(readme):
        return ""
    with open(readme, encoding="utf-8") as fh:
        return fh.read()


setup(
    name="repro",
    version=read_version(),
    description=(
        "Distribution-aware dataset search: Ptile/Pref indexing with a "
        "sharded, cached query service layer (PODS 2025 reproduction)"
    ),
    long_description=read_long_description(),
    long_description_content_type="text/markdown",
    author="repro contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Information Analysis",
    ],
)
