"""Property-based end-to-end guarantee checks on random instances.

Hypothesis drives random repositories, random query rectangles and random
thetas through the full audit of :mod:`repro.evaluation`: for every
structure, recall must be perfect and every false positive must sit inside
the documented slack band.  These are the strongest correctness tests in
the suite — any soundness bug in the coreset/mapping/engine stack surfaces
here.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.pref_index import PrefIndex
from repro.core.ptile_range import PtileRangeIndex
from repro.core.ptile_threshold import PtileThresholdIndex
from repro.evaluation import (
    audit_interval_query,
    exact_pref_scores,
    exact_ptile_masses,
)
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis
from repro.synopsis.sample import EpsilonSampleSynopsis


def random_repository(rng, n_datasets, dim):
    datasets = []
    for _ in range(n_datasets):
        kind = rng.integers(3)
        n = int(rng.integers(50, 300))
        if kind == 0:
            pts = rng.uniform(size=(n, dim))
        elif kind == 1:
            center = rng.uniform(0.2, 0.8, size=dim)
            pts = np.clip(rng.normal(center, 0.1, size=(n, dim)), 0, 1)
        else:
            pts = np.abs(rng.normal(0.0, 0.3, size=(n, dim))) % 1.0
        datasets.append(pts)
    return datasets


class TestPtileThresholdRandomized:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), a=st.floats(0.0, 0.95))
    def test_guarantees(self, seed, a):
        rng = np.random.default_rng(seed)
        datasets = random_repository(rng, 8, 1)
        index = PtileThresholdIndex(
            [ExactSynopsis(d) for d in datasets],
            eps=0.2,
            sample_size=24,
            rng=np.random.default_rng(seed + 1),
        )
        lo, hi = sorted(rng.uniform(0, 1, size=2).tolist())
        rect = Rectangle([lo], [max(hi, lo + 1e-6)])
        report = audit_interval_query(
            exact_ptile_masses(datasets, rect),
            index.query(rect, a).index_set,
            Interval(a, 1.0),
            slack_of=lambda j: 2 * index.eps_effective,
        )
        assert report.guarantees_hold, (report.missed, report.slack_violations)


class TestPtileRangeRandomized:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        a=st.floats(0.0, 0.9),
        width=st.floats(0.0, 1.0),
    )
    def test_guarantees(self, seed, a, width):
        rng = np.random.default_rng(seed)
        datasets = random_repository(rng, 6, 1)
        index = PtileRangeIndex(
            [ExactSynopsis(d) for d in datasets],
            eps=0.2,
            sample_size=16,
            rng=np.random.default_rng(seed + 1),
        )
        lo, hi = sorted(rng.uniform(0, 1, size=2).tolist())
        rect = Rectangle([lo], [max(hi, lo + 1e-6)])
        theta = Interval(a, min(1.0, a + width))
        report = audit_interval_query(
            exact_ptile_masses(datasets, rect),
            index.query(rect, theta).index_set,
            theta,
            slack_of=lambda j: 2 * index.eps_effective,
        )
        assert report.guarantees_hold, (report.missed, report.slack_violations)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_guarantees_2d(self, seed):
        rng = np.random.default_rng(seed)
        datasets = random_repository(rng, 5, 2)
        index = PtileRangeIndex(
            [ExactSynopsis(d) for d in datasets],
            eps=0.3,
            sample_size=5,
            rng=np.random.default_rng(seed + 1),
        )
        lo = rng.uniform(0, 0.5, size=2)
        hi = lo + rng.uniform(0.1, 0.5, size=2)
        rect = Rectangle(lo, hi)
        theta = Interval(0.2, 0.7)
        report = audit_interval_query(
            exact_ptile_masses(datasets, rect),
            index.query(rect, theta).index_set,
            theta,
            slack_of=lambda j: 2 * index.eps_effective,
        )
        assert report.guarantees_hold, (report.missed, report.slack_violations)


class TestPtileFederatedRandomized:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_guarantees_with_sample_synopses(self, seed):
        rng = np.random.default_rng(seed)
        datasets = random_repository(rng, 6, 1)
        syns = [
            EpsilonSampleSynopsis.from_points(d, size=120, rng=rng) for d in datasets
        ]
        index = PtileRangeIndex(
            syns, eps=0.2, sample_size=16, rng=np.random.default_rng(seed + 1)
        )
        rect = Rectangle([0.2], [0.7])
        theta = Interval(0.25, 0.75)
        report = audit_interval_query(
            exact_ptile_masses(datasets, rect),
            index.query(rect, theta).index_set,
            theta,
            slack_of=lambda j: 2 * index.eps_effective + 2 * index.delta_of(j),
        )
        assert report.guarantees_hold, (report.missed, report.slack_violations)


class TestPrefRandomized:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), a=st.floats(-0.5, 0.8))
    def test_guarantees(self, seed, a):
        rng = np.random.default_rng(seed)
        datasets = [
            np.clip(rng.normal(rng.uniform(-0.4, 0.4, 2), 0.2, size=(100, 2)), -1, 1)
            for _ in range(8)
        ]
        k = int(rng.integers(1, 10))
        index = PrefIndex([ExactSynopsis(d) for d in datasets], k=k, eps=0.15)
        u = rng.normal(size=2)
        u /= np.linalg.norm(u)
        report = audit_interval_query(
            exact_pref_scores(datasets, u, k),
            index.query(u, a).index_set,
            Interval.at_least(a),
            slack_of=lambda j: 2 * index.eps,
        )
        assert report.guarantees_hold, (report.missed, report.slack_violations)
