"""Integration tests for delay guarantees and dynamic updates."""

import numpy as np
import pytest

from repro.core.ptile_range import PtileRangeIndex
from repro.core.ptile_threshold import PtileThresholdIndex
from repro.core.pref_index import PrefIndex
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis

QUERY = Rectangle([0.0], [0.5])


@pytest.fixture
def lake(rng):
    return [rng.uniform(0.0, 1.0, size=(300, 1)) for _ in range(30)]


class TestDelay:
    def test_threshold_delay_recorded(self, lake, rng):
        idx = PtileThresholdIndex(
            [ExactSynopsis(p) for p in lake], eps=0.15, sample_size=24, rng=rng
        )
        res = idx.query(QUERY, 0.3, record_times=True)
        assert res.out_size == 30  # uniform data, mass ~0.5 each
        gaps = res.delays()
        assert len(gaps) == res.out_size + 1
        assert all(g >= 0.0 for g in gaps)

    def test_pref_delay_recorded(self, lake):
        idx = PrefIndex([ExactSynopsis(p) for p in lake], k=3, eps=0.2)
        res = idx.query(np.array([1.0]), 0.5, record_times=True)
        assert res.max_delay() is not None


class TestDynamicChurn:
    def test_threshold_index_under_churn(self, lake, rng):
        idx = PtileThresholdIndex(
            [ExactSynopsis(p) for p in lake[:10]], eps=0.2, sample_size=16, rng=rng
        )
        # Delete half, insert planted datasets, verify planted answers.
        for key in range(0, 10, 2):
            idx.delete_synopsis(key)
        planted_keys = []
        for _ in range(5):
            planted_keys.append(
                idx.insert_synopsis(ExactSynopsis(rng.uniform(0.0, 0.5, (150, 1))))
            )
        got = idx.query(QUERY, 0.8).index_set
        assert set(planted_keys) <= got
        assert not (set(range(0, 10, 2)) & got)

    def test_range_index_insert_delete_roundtrip(self, lake, rng):
        idx = PtileRangeIndex(
            [ExactSynopsis(p) for p in lake[:8]], eps=0.2, sample_size=12, rng=rng
        )
        before = idx.query(QUERY, Interval(0.3, 0.7)).index_set
        key = idx.insert_synopsis(ExactSynopsis(rng.uniform(0.0, 1.0, (200, 1))))
        with_new = idx.query(QUERY, Interval(0.3, 0.7)).index_set
        assert before <= with_new
        idx.delete_synopsis(key)
        after = idx.query(QUERY, Interval(0.3, 0.7)).index_set
        assert after == before

    def test_pref_index_churn(self, lake, rng):
        idx = PrefIndex([ExactSynopsis(p) for p in lake[:6]], k=2, eps=0.25)
        strong = ExactSynopsis(np.full((20, 1), 0.99))
        key = idx.insert_synopsis(strong)
        assert key in idx.query(np.array([1.0]), 0.9).index_set
        idx.delete_synopsis(key)
        got = idx.query(np.array([1.0]), 0.9).index_set
        assert key not in got
