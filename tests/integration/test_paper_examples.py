"""The paper's worked examples, verified literally (Figures 1-3)."""

import numpy as np
import pytest

from repro.core.ptile_range import PtileRangeIndex
from repro.core.ptile_threshold import PtileThresholdIndex
from repro.geometry.interval import Interval
from repro.geometry.rect_enum import RectangleGrid, enumerate_rectangles
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis

S1 = np.array([[1.0], [7.0], [9.0]])
S2 = np.array([[2.0], [4.0], [6.0], [10.0]])


class _FixedSynopsis(ExactSynopsis):
    """A synopsis whose Sample() returns the stored points verbatim,
    reproducing the paper's hand-picked coresets S_1, S_2."""

    def sample(self, size, rng):
        reps = -(-size // self.n_points)
        return np.tile(self.points, (reps, 1))[: max(size, self.n_points)]


def build_threshold_index():
    idx = PtileThresholdIndex(
        [_FixedSynopsis(S1), _FixedSynopsis(S2)],
        eps=0.005,
        sample_size=4,
        rng=np.random.default_rng(0),
    )
    # The paper's toy coresets ARE the datasets (sampling error 0), so the
    # conservative eps_effective bound is overridden to the nominal eps.
    idx.eps_effective = idx.eps
    return idx


class TestFigure1:
    """Section 4.2's running example."""

    def test_precomputed_intervals(self):
        rects = enumerate_rectangles(RectangleGrid(S1))
        intervals = {(r.lo[0], r.hi[0]) for r, _ in rects}
        assert intervals == {(1, 1), (7, 7), (9, 9), (1, 7), (1, 9), (7, 9)}

    def test_weight_of_1_7(self):
        rects = dict(
            ((r.lo[0], r.hi[0]), w) for r, w in enumerate_rectangles(RectangleGrid(S1))
        )
        assert rects[(1.0, 7.0)] == pytest.approx(2 / 3)

    def test_query_r_3_8_theta_02(self):
        """R = [3, 8], theta = [0.2, 1] reports both datasets."""
        idx = build_threshold_index()
        res = idx.query(Rectangle([3.0], [8.0]), a_theta=0.2)
        assert res.index_set == {0, 1}

    def test_tight_threshold_excludes_sparse_dataset(self):
        """With theta = [0.6, 1]: S_1 has 1/3 of its coreset in [3, 8] and
        S_2 has 2/4 — only a dataset meeting 0.6 - eps may be reported."""
        idx = build_threshold_index()
        res = idx.query(Rectangle([3.0], [8.0]), a_theta=0.6)
        assert 0 not in res.index_set  # 1/3 < 0.6 - eps


class TestSection43Example:
    """The range-predicate continuation: R = [3, 8], theta = [0.2, 0.4]."""

    def build(self):
        idx = PtileRangeIndex(
            [_FixedSynopsis(S1), _FixedSynopsis(S2)],
            eps=0.005,
            sample_size=4,
            bounding_box=Rectangle([0.0], [11.0]),
            rng=np.random.default_rng(0),
        )
        idx.eps_effective = idx.eps  # exact toy coresets; see above
        return idx

    def test_index_1_reported_index_2_not(self):
        """The paper: index 1 (mass 1/3 ∈ [0.2-eps, 0.4+eps]) is reported;
        index 2 (maximal interval [4, 6] has weight 0.5 > 0.4+eps) is not."""
        idx = self.build()
        res = idx.query(Rectangle([3.0], [8.0]), Interval(0.2, 0.4))
        assert res.index_set == {0}

    def test_figure_2_failure_mode_absent(self):
        """The threshold structure would match S_2's sub-interval [4, 4]
        (weight 1/4 ∈ theta) — the maximal-pair structure must not."""
        idx = self.build()
        res = idx.query(Rectangle([3.0], [8.0]), Interval(0.2, 0.3))
        assert 1 not in res.index_set


class TestFigure3Property:
    """Any matched pair certifies the maximal rectangle (Lemma 4.5)."""

    def test_maximal_interval_weights_drive_answers(self):
        idx = PtileRangeIndex(
            [_FixedSynopsis(S2)],
            eps=0.005,
            sample_size=4,
            bounding_box=Rectangle([0.0], [11.0]),
            rng=np.random.default_rng(0),
        )
        idx.eps_effective = idx.eps  # exact toy coreset
        # Query exactly around the maximal interval [4, 6]: weight 0.5.
        res = idx.query(Rectangle([3.0], [8.0]), Interval(0.45, 0.55))
        assert res.index_set == {0}
        res2 = idx.query(Rectangle([3.0], [8.0]), Interval(0.7, 0.9))
        assert res2.index_set == set()
