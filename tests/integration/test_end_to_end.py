"""Integration tests: full pipeline across settings and synopsis types."""

import numpy as np
import pytest

from repro.core.engine import DatasetSearchEngine
from repro.core.framework import Repository
from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.core.predicates import And, pred
from repro.core.ptile_range import PtileRangeIndex
from repro.core.pref_index import PrefIndex
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.synopsis import (
    EpsilonSampleSynopsis,
    ExactSynopsis,
    GMMSynopsis,
    HistogramSynopsis,
)
from repro.workloads.opendata import (
    BROOKLYN_REGION,
    city_incident_repository,
    city_quality_repository,
)


class TestBrooklynScenario:
    """Example 1.1: the economist's percentile query end to end."""

    def test_centralized(self, rng):
        repo, fractions = city_incident_repository(25, rng)
        engine = DatasetSearchEngine(repository=repo, eps=0.1, sample_size=32, rng=rng)
        expr = pred(PercentileMeasure(BROOKLYN_REGION), 0.10)
        quality = engine.evaluate_quality(expr)
        assert quality["recall"] == 1.0
        # All false positives are within the documented slack.
        slack = 2 * engine.ptile_index.eps_effective
        for j in quality["false_positives"]:
            assert fractions[j] >= 0.10 - slack - 1e-9

    @pytest.mark.parametrize("synopsis_cls", ["sample", "histogram", "gmm"])
    def test_federated_each_synopsis_type(self, rng, synopsis_cls):
        repo, fractions = city_incident_repository(15, rng)
        syns = []
        for ds in repo:
            if synopsis_cls == "sample":
                syns.append(
                    EpsilonSampleSynopsis.from_points(ds.points, size=300, rng=rng)
                )
            elif synopsis_cls == "histogram":
                syns.append(HistogramSynopsis(ds.points, bins=24))
            else:
                syns.append(GMMSynopsis(ds.points, n_components=3, rng=rng, n_iter=25))
        index = PtileRangeIndex(syns, eps=0.1, sample_size=32, rng=rng)
        theta = Interval(0.10, 1.0)
        truth = {i for i, f in enumerate(fractions) if f in theta}
        got = index.query(BROOKLYN_REGION, theta).index_set
        assert truth <= got, f"missed {truth - got} with {synopsis_cls}"
        for j in got:
            slack = 2 * index.eps_effective + 2 * index.delta_of(j)
            assert fractions[j] >= 0.10 - slack - 1e-9


class TestQualityOfLifeScenario:
    """Example 1.1: cities with k high-quality neighborhoods (Pref)."""

    def test_top_k_quality_query(self, rng):
        repo = city_quality_repository(20, rng)
        weights = np.array([0.4, 0.2, 0.2, 0.2])
        k = 5
        index = PrefIndex([ExactSynopsis(ds.points) for ds in repo], k=k, eps=0.1)
        unit = weights / np.linalg.norm(weights)
        tau = 0.35
        truth = {i for i, ds in enumerate(repo) if ds.kth_score(weights, k) >= tau}
        got = index.query(weights, tau).index_set
        assert truth <= got
        for j in got:
            assert repo[j].kth_score(weights, k) >= tau - 2 * 0.1 - 1e-9
        del unit


class TestMixedExpression:
    def test_percentile_and_preference_conjunction(self, rng):
        arrays = [
            np.clip(rng.normal(rng.uniform(0.3, 0.7, 2), 0.15, (300, 2)), 0, 1)
            for _ in range(12)
        ]
        repo = Repository.from_arrays(arrays)
        engine = DatasetSearchEngine(repository=repo, eps=0.12, sample_size=10, rng=rng)
        expr = And(
            [
                pred(PercentileMeasure(Rectangle([0.0, 0.0], [0.5, 0.5])), 0.1),
                pred(PreferenceMeasure(np.array([1.0, 1.0]), 10), 0.9),
            ]
        )
        assert engine.evaluate_quality(expr)["recall"] == 1.0


class TestCentralizedFederatedConsistency:
    def test_federated_superset_shrinks_with_better_synopses(self, rng):
        """Better synopses (smaller delta) yield tighter result sets."""
        repo, _ = city_incident_repository(15, rng)
        coarse = [
            EpsilonSampleSynopsis.from_points(ds.points, size=40, rng=rng)
            for ds in repo
        ]
        fine = [ExactSynopsis(ds.points) for ds in repo]
        seed = 33
        idx_coarse = PtileRangeIndex(
            coarse, eps=0.1, sample_size=24, rng=np.random.default_rng(seed)
        )
        idx_fine = PtileRangeIndex(
            fine, eps=0.1, sample_size=24, rng=np.random.default_rng(seed)
        )
        theta = Interval(0.2, 0.6)
        got_coarse = idx_coarse.query(BROOKLYN_REGION, theta).index_set
        got_fine = idx_fine.query(BROOKLYN_REGION, theta).index_set
        # Not a strict superset theorem, but the slack ordering should show:
        # the coarse index cannot report fewer of the exact answers.
        truth = {
            i
            for i, ds in enumerate(repo)
            if ds.percentile_mass(BROOKLYN_REGION) in theta
        }
        assert truth <= got_fine and truth <= got_coarse
