"""Tests for the per-leaf emit-time fix in ``DatasetSearchEngine.search``.

The seed stamped every emitted index with ``end_time``, making every delay
diagnostic read zero-gap-then-everything.  Now leaves are evaluated one at a
time (deduplicated through the planner) and each index is stamped with the
completion time of the leaf at which its membership became determined.
"""

import numpy as np
import pytest

from repro.core.engine import DatasetSearchEngine
from repro.core.framework import Repository
from repro.core.measures import PercentileMeasure
from repro.core.predicates import And, Or, pred
from repro.geometry.rectangle import Rectangle


@pytest.fixture(scope="module")
def engine():
    # Datasets 0-4 live entirely in [0, 0.5], datasets 5-9 entirely in
    # (0.5, 1]: with thresholds at 0.9 the two leaves report disjoint
    # halves even after the eps + 2*delta precision slack widens them.
    rng = np.random.default_rng(6)
    arrays = [rng.uniform(0.0, 0.5, size=(200, 1)) for _ in range(5)]
    arrays += [rng.uniform(0.5000001, 1.0, size=(200, 1)) for _ in range(5)]
    repo = Repository.from_arrays(arrays)
    return DatasetSearchEngine(
        repository=repo, eps=0.2, sample_size=16, rng=np.random.default_rng(1)
    )


LEFT = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.9)
RIGHT = pred(PercentileMeasure(Rectangle([0.5], [1.0])), 0.9)


class TestEmitTimes:
    def test_stamps_are_within_query_window_and_monotone(self, engine):
        res = engine.search(Or([LEFT, RIGHT]), record_times=True)
        assert len(res.emit_times) == len(res.indexes) > 0
        for t in res.emit_times:
            assert res.start_time < t < res.end_time
        assert res.emit_times == sorted(res.emit_times)

    def test_not_all_stamps_equal_end_time(self, engine):
        # The seed bug: every stamp was exactly end_time.  An Or of two
        # leaves must stamp the first leaf's contribution strictly earlier.
        res = engine.search(Or([LEFT, RIGHT]), record_times=True)
        assert any(t < res.end_time for t in res.emit_times)
        assert len(set(res.emit_times)) >= 2

    def test_or_emits_before_second_leaf(self, engine):
        res = engine.search(Or([LEFT, RIGHT]), record_times=True)
        # Some dataset satisfies the first-evaluated leaf, so at least one
        # emission happens at the first leaf's completion — i.e. strictly
        # before the last stamp.
        assert min(res.emit_times) < max(res.emit_times)

    def test_and_emits_only_at_final_leaf(self, engine):
        res = engine.search(And([LEFT, RIGHT]), record_times=True)
        if res.indexes:  # conjunction membership needs every leaf known
            assert len(set(res.emit_times)) == 1

    def test_same_answer_as_untimed_search(self, engine):
        for expr in (LEFT, Or([LEFT, RIGHT]), And([LEFT, RIGHT])):
            timed = engine.search(expr, record_times=True)
            untimed = engine.search(expr)
            assert sorted(timed.indexes) == untimed.indexes

    def test_duplicate_leaf_evaluated_once(self, engine):
        # And(x, x) must produce the same schedule as x alone: the planner
        # deduplicates, so there is exactly one leaf completion.
        res = engine.search(And([LEFT, LEFT]), record_times=True)
        assert len(set(res.emit_times)) <= 1 or res.indexes == []
        single = engine.search(LEFT, record_times=True)
        assert sorted(res.indexes) == sorted(single.indexes)

    def test_delays_are_meaningful(self, engine):
        res = engine.search(Or([LEFT, RIGHT]), record_times=True)
        gaps = res.delays()
        assert len(gaps) == len(res.indexes) + 1
        assert all(g >= 0.0 for g in gaps)
        assert res.max_delay() > 0.0

    def test_timed_search_batches_percentile_leaves(self, engine, monkeypatch):
        # The timed path must route its deduplicated leaf schedule through
        # the batched multi-box kernel: one query_many call for all the
        # percentile leaves, not one backend walk per leaf.
        index = engine.ptile_index
        calls = {"many": 0}
        orig = index.query_many

        def counting_query_many(queries):
            calls["many"] += 1
            return orig(queries)

        monkeypatch.setattr(index, "query_many", counting_query_many)
        res = engine.search(Or([LEFT, RIGHT]), record_times=True)
        assert calls["many"] == 1
        assert len(res.emit_times) == len(res.indexes) > 0
