"""Tests for the sharded executor and the QueryService facade.

The load-bearing property is *shard-merge equivalence*: on fixed seeds a
``QueryService`` with any shard count must return exactly the index sets a
single ``DatasetSearchEngine`` returns, because each dataset lives in one
shard and the executor pins sampling and query slack to global-N semantics.
"""

import numpy as np
import pytest

from repro.core.engine import DatasetSearchEngine
from repro.core.framework import Repository
from repro.errors import ConstructionError
from repro.service import QueryService
from repro.service.sharding import (
    SeededSampleSynopsis,
    ShardedBatchExecutor,
    partition_indices,
)
from repro.synopsis.exact import ExactSynopsis
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

N_DATASETS = 24
EPS = 0.2
SAMPLE_SIZE = 12
SEED = 17


@pytest.fixture(scope="module")
def lake():
    return synthetic_data_lake(
        N_DATASETS, 1, np.random.default_rng(2), family="clustered", median_size=150
    )


@pytest.fixture(scope="module")
def repo(lake):
    return Repository.from_arrays(lake)


@pytest.fixture(scope="module")
def queries():
    return batched_query_workload(
        24, 1, np.random.default_rng(3), duplicate_leaf_rate=0.5, max_leaves=3
    )


@pytest.fixture(scope="module")
def reference_engine(lake, repo):
    """A single engine with the service's deterministic sampling semantics."""
    probe = ShardedBatchExecutor(
        repository=repo, n_shards=1, eps=EPS, sample_size=SAMPLE_SIZE, seed=SEED
    )
    engine = DatasetSearchEngine(
        synopses=[
            SeededSampleSynopsis(ExactSynopsis(p), SEED, i)
            for i, p in enumerate(lake)
        ],
        repository=repo,
        eps=EPS,
        phi=probe.phi_eff,
        sample_size=probe.sample_size,
        bounding_box=repo.bounding_box(),
        rng=np.random.default_rng(0),
    )
    probe.close()
    return engine


class TestPartition:
    def test_balanced_contiguous(self):
        parts = partition_indices(10, 3)
        assert parts == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert [i for p in parts for i in p] == list(range(10))

    def test_clips_to_n(self):
        assert partition_indices(2, 8) == [[0], [1]]

    def test_validation(self):
        with pytest.raises(ConstructionError):
            partition_indices(0, 2)
        with pytest.raises(ConstructionError):
            partition_indices(5, 0)


class TestSeededSynopsis:
    def test_sample_is_partition_independent(self, lake):
        base = ExactSynopsis(lake[0])
        w1 = SeededSampleSynopsis(base, seed=5, index=3)
        w2 = SeededSampleSynopsis(base, seed=5, index=3)
        # Different caller streams, identical draws:
        s1 = w1.sample(8, np.random.default_rng(111))
        s2 = w2.sample(8, np.random.default_rng(999))
        assert np.array_equal(s1, s2)
        # Repeated draws are stable too:
        assert np.array_equal(s1, w1.sample(8, np.random.default_rng(0)))

    def test_distinct_index_distinct_sample(self, lake):
        base = ExactSynopsis(lake[0])
        a = SeededSampleSynopsis(base, seed=5, index=0).sample(
            8, np.random.default_rng(0)
        )
        b = SeededSampleSynopsis(base, seed=5, index=1).sample(
            8, np.random.default_rng(0)
        )
        assert not np.array_equal(a, b)

    def test_delegates_metadata(self, lake):
        base = ExactSynopsis(lake[0])
        w = SeededSampleSynopsis(base, seed=0, index=0)
        assert w.dim == base.dim and w.n_points == base.n_points
        assert w.delta_ptile == base.delta_ptile
        assert w.delta_pref == base.delta_pref


class TestShardMergeEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 3, 4])
    def test_identical_to_single_engine(
        self, repo, queries, reference_engine, n_shards
    ):
        with QueryService(
            repository=repo,
            n_shards=n_shards,
            eps=EPS,
            sample_size=SAMPLE_SIZE,
            seed=SEED,
        ) as service:
            got = [r.indexes for r in service.search_batch(queries)]
        expected = [sorted(reference_engine._eval(q)) for q in queries]
        assert got == expected

    def test_serial_pool_matches_threaded(self, repo, queries):
        kwargs = dict(repository=repo, eps=EPS, sample_size=SAMPLE_SIZE, seed=SEED)
        with QueryService(n_shards=4, **kwargs) as threaded, QueryService(
            n_shards=4, max_workers=0, **kwargs
        ) as serial:
            a = [r.indexes for r in threaded.search_batch(queries)]
            b = [r.indexes for r in serial.search_batch(queries)]
        assert a == b

    def test_federated_synopses_only_matches_single_engine(self, lake, queries):
        # No repository, no explicit bounding box: the executor must derive
        # one shared box (from the deterministic coresets) instead of
        # letting every shard auto-derive its own.
        synopses = [ExactSynopsis(p) for p in lake]
        with QueryService(
            synopses=synopses, n_shards=4, eps=EPS, sample_size=SAMPLE_SIZE,
            seed=SEED,
        ) as service:
            assert service.executor.bounding_box is not None
            got = [r.indexes for r in service.search_batch(queries)]
        single = DatasetSearchEngine(
            synopses=list(service.executor.synopses),
            eps=EPS,
            phi=service.executor.phi_eff,
            sample_size=service.executor.sample_size,
            bounding_box=service.executor.bounding_box,
            rng=np.random.default_rng(0),
        )
        assert got == [sorted(single._eval(q)) for q in queries]

    def test_every_dataset_in_exactly_one_shard(self, repo):
        with QueryService(
            repository=repo, n_shards=5, eps=EPS, sample_size=SAMPLE_SIZE
        ) as service:
            shards = service.executor.shards
            flat = [i for shard in shards for i in shard]
            assert sorted(flat) == list(range(repo.n_datasets))
            assert sum(service.executor.shard_sizes()) == repo.n_datasets


class TestServiceFacade:
    @pytest.fixture(scope="class")
    def service(self, repo):
        with QueryService(
            repository=repo,
            n_shards=3,
            eps=EPS,
            sample_size=SAMPLE_SIZE,
            seed=SEED,
            cache_capacity=1024,
        ) as svc:
            yield svc

    def test_single_equals_batch(self, service, queries):
        batch = service.search_batch(queries[:6])
        singles = [service.search(q) for q in queries[:6]]
        assert [r.indexes for r in batch] == [r.indexes for r in singles]

    def test_cache_hits_on_repeat(self, repo, queries):
        with QueryService(
            repository=repo, n_shards=2, eps=EPS, sample_size=SAMPLE_SIZE
        ) as svc:
            svc.search_batch(queries)
            misses_after_cold = svc.cache.stats.misses
            svc.search_batch(queries)
            assert svc.cache.stats.misses == misses_after_cold  # all warm
            assert svc.cache.stats.hit_rate > 0.0
            # invalidation forces recomputation
            svc.invalidate_cache()
            svc.search_batch(queries)
            assert svc.cache.stats.misses > misses_after_cold

    def test_answers_unchanged_after_invalidate(self, service, queries):
        before = [r.indexes for r in service.search_batch(queries[:8])]
        service.invalidate_cache()
        after = [r.indexes for r in service.search_batch(queries[:8])]
        assert before == after

    def test_record_times_schedule(self, service, queries):
        result = service.search(queries[0], record_times=True)
        assert len(result.emit_times) == len(result.indexes)
        assert result.start_time is not None and result.end_time is not None
        for t in result.emit_times:
            assert result.start_time <= t <= result.end_time
        assert result.emit_times == sorted(result.emit_times)
        # emission order, not sorted index order — but same set as untimed
        untimed = service.search(queries[0])
        assert sorted(result.indexes) == untimed.indexes

    def test_stats_shape(self, service, queries):
        service.search_batch(queries[:4])
        stats = service.stats()
        assert stats["n_datasets"] == N_DATASETS
        assert stats["n_shards"] == 3
        assert sum(stats["shard_sizes"]) == N_DATASETS
        assert stats["telemetry"]["n_queries"] >= 4
        assert stats["telemetry"]["throughput_qps"] > 0.0
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0

    def test_ground_truth_requires_repository(self, lake, queries):
        with QueryService(
            synopses=[ExactSynopsis(p) for p in lake],
            eps=EPS,
            sample_size=SAMPLE_SIZE,
        ) as svc:
            from repro.errors import QueryError

            with pytest.raises(QueryError):
                svc.ground_truth(queries[0])

    def test_recall_against_ground_truth(self, service, repo, queries):
        # The paper's guarantee survives the service layer: exact recall.
        for q in queries[:10]:
            truth = service.ground_truth(q)
            got = set(service.search(q).indexes)
            assert truth <= got

    def test_rebuild_keeps_user_synopses(self, lake, repo, queries):
        # rebuild() without arguments must not swap user-supplied synopses
        # for repository-derived exact ones.
        synopses = [ExactSynopsis(p) for p in lake]
        with QueryService(
            repository=repo,
            synopses=synopses,
            n_shards=2,
            eps=EPS,
            sample_size=SAMPLE_SIZE,
            seed=SEED,
        ) as svc:
            before = [s.base for s in svc.executor.synopses]
            assert before == synopses
            svc.rebuild(n_shards=3)
            assert [s.base for s in svc.executor.synopses] == synopses

    def test_rebuild_invalidates_and_reshards(self, repo, queries):
        with QueryService(
            repository=repo, n_shards=2, eps=EPS, sample_size=SAMPLE_SIZE, seed=SEED
        ) as svc:
            before = [r.indexes for r in svc.search_batch(queries[:5])]
            svc.rebuild(n_shards=4)
            assert svc.n_shards == 4
            assert svc.cache.generation >= 1 and len(svc.cache) == 0
            after = [r.indexes for r in svc.search_batch(queries[:5])]
            assert before == after  # same data, same answers

    def test_construction_validation(self):
        with pytest.raises(ConstructionError):
            QueryService()

    def test_nondeterministic_sharding_needs_box(self, lake):
        # deterministic=False with neither repository nor bounding_box would
        # give every shard a different auto-derived Ptile box.
        synopses = [ExactSynopsis(p) for p in lake]
        with pytest.raises(ConstructionError):
            QueryService(
                synopses=synopses, n_shards=2, deterministic=False, eps=EPS,
                sample_size=SAMPLE_SIZE,
            )

    def test_stats_json_clean_before_first_query(self, repo):
        import json

        with QueryService(
            repository=repo, n_shards=2, eps=EPS, sample_size=SAMPLE_SIZE
        ) as svc:
            body = json.dumps(svc.stats())
            assert "NaN" not in body
            assert json.loads(body)["telemetry"]["latency_p50_s"] is None


class TestEngineThreading:
    """Backend selection must flow service -> executor -> shard engines,
    with identical answers across backends (same seeds, same coresets)."""

    def test_engine_reaches_every_layer(self, repo):
        svc = QueryService(
            repository=repo, n_shards=2, eps=EPS, sample_size=SAMPLE_SIZE,
            seed=SEED, engine="columnar",
        )
        try:
            assert svc.engine_kind == "columnar"
            assert svc.stats()["engine"] == "columnar"
            assert svc.executor.engine_kind == "columnar"
            for engine in svc.executor.engines:
                assert engine.engine_kind == "columnar"
                assert engine.ptile_index.engine_kind == "columnar"
        finally:
            svc.close()

    def test_columnar_matches_kd_service(self, repo, queries):
        answers = {}
        for backend in ("kd", "columnar"):
            svc = QueryService(
                repository=repo, n_shards=3, eps=EPS,
                sample_size=SAMPLE_SIZE, seed=SEED, engine=backend,
            )
            try:
                answers[backend] = [
                    r.index_set for r in svc.search_batch(queries)
                ]
            finally:
                svc.close()
        assert answers["kd"] == answers["columnar"]

    def test_columnar_delta_shard_ingest(self, lake, repo, queries):
        svc = QueryService(
            repository=repo, n_shards=2, eps=EPS, sample_size=SAMPLE_SIZE,
            seed=SEED, engine="columnar", capacity=4 * N_DATASETS,
        )
        try:
            svc.search_batch(queries)
            receipt = svc.add_datasets([lake[0] + 0.01])
            assert receipt["rebuilt"] is False  # landed in the delta shard
            assert svc.executor.delta_engine.engine_kind == "columnar"
            got = [r.index_set for r in svc.search_batch(queries)]
            fresh = QueryService(
                repository=svc.repository, n_shards=2, eps=EPS,
                sample_size=SAMPLE_SIZE, seed=SEED, engine="columnar",
                capacity=4 * N_DATASETS,
            )
            try:
                expect = [r.index_set for r in fresh.search_batch(queries)]
            finally:
                fresh.close()
            assert got == expect
        finally:
            svc.close()

    def test_rangetree_service_refuses_live_ingest(self, lake, repo):
        from repro.errors import CapabilityError

        svc = QueryService(
            repository=repo, n_shards=2, eps=EPS, sample_size=SAMPLE_SIZE,
            seed=SEED, engine="rangetree",
        )
        try:
            with pytest.raises(CapabilityError):
                svc.add_datasets([lake[0]])
        finally:
            svc.close()

    def test_unknown_engine_rejected_at_construction(self, repo):
        with pytest.raises(ConstructionError):
            QueryService(repository=repo, engine="btree")
