"""Tests for the HTTP JSON endpoint and the expression wire format."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.framework import Repository
from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.core.predicates import And, Or, Predicate, pred
from repro.errors import QueryError
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.service import QueryService
from repro.service.server import (
    expression_from_json,
    expression_to_json,
    make_server,
)
from repro.workloads.generators import synthetic_data_lake


class TestWireFormat:
    def test_leaf_round_trip(self):
        ptile = pred(PercentileMeasure(Rectangle([0.0, 0.1], [0.5, 0.9])), 0.2, 0.6)
        pref = Predicate(
            PreferenceMeasure(np.array([1.0, 0.0]), k=3), Interval.at_least(0.7)
        )
        for leaf in (ptile, pref):
            back = expression_from_json(expression_to_json(leaf))
            assert back.canonical_key() == leaf.canonical_key()

    def test_threshold_theta_round_trip(self):
        leaf = pred(PercentileMeasure(Rectangle([0.0], [1.0])), 0.3)  # [0.3, inf)
        obj = expression_to_json(leaf)
        assert obj["theta"] == [0.3]
        back = expression_from_json(obj)
        assert back.canonical_key() == leaf.canonical_key()

    def test_open_interval_refuses_to_serialize(self):
        # The wire format carries no open/closed flags; round-tripping an
        # open interval as closed would flip boundary membership.
        leaf = Predicate(
            PercentileMeasure(Rectangle([0.0], [1.0])),
            Interval(0.2, 0.6, lo_open=True),
        )
        with pytest.raises(QueryError):
            expression_to_json(leaf)

    def test_pref_range_interval_refuses_to_serialize(self):
        # The engine answers only one-sided pref predicates; a silent
        # round-trip through [a, inf) would weaken [a, b].
        leaf = Predicate(
            PreferenceMeasure(np.array([1.0]), k=2), Interval(0.2, 0.5)
        )
        with pytest.raises(QueryError):
            expression_to_json(leaf)

    def test_nested_round_trip(self):
        a = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.2)
        b = pred(PercentileMeasure(Rectangle([0.5], [1.0])), 0.1, 0.8)
        c = Predicate(
            PreferenceMeasure(np.array([1.0]), k=2), Interval.at_least(0.5)
        )
        expr = And([Or([a, b]), c])
        back = expression_from_json(expression_to_json(expr))
        assert back.canonical_key() == expr.canonical_key()

    @pytest.mark.parametrize(
        "bad",
        [
            42,
            {"no_op": 1},
            {"op": "nand", "children": []},
            {"op": "and", "children": []},
            {"op": "ptile", "lo": [0.0]},  # missing hi/theta
            {"op": "ptile", "lo": [0.0], "hi": [1.0], "theta": []},
            {"op": "pref", "vector": [1.0]},  # missing k/tau
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(QueryError):
            expression_from_json(bad)


@pytest.fixture(scope="module")
def server_url():
    lake = synthetic_data_lake(
        10, 1, np.random.default_rng(0), family="clustered", median_size=120
    )
    service = QueryService(
        repository=Repository.from_arrays(lake),
        n_shards=2,
        eps=0.2,
        sample_size=8,
        seed=1,
    )
    httpd = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address
    yield f"http://{host}:{port}"
    httpd.shutdown()
    httpd.server_close()
    service.close()


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _post(url: str, payload: dict) -> dict:
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method="POST"
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read().decode("utf-8"))


PTILE = {"op": "ptile", "lo": [0.0], "hi": [0.6], "theta": [0.05]}
PREF = {"op": "pref", "vector": [1.0], "k": 2, "tau": 0.1}


class TestEndpoints:
    def test_healthz(self, server_url):
        out = _get(server_url + "/healthz")
        assert out == {
            "status": "ok", "engine": "kd", "n_datasets": 10, "n_live": 10,
            "n_shards": 2, "snapshot_generation": 0, "worker_id": 0,
            "worker_count": 1,
        }

    def test_search(self, server_url):
        out = _post(server_url + "/search", {"expression": PTILE})
        assert sorted(out["indexes"]) == out["indexes"]
        assert set(out["indexes"]) <= set(range(10))
        assert out["stats"]["n_leaves_unique"] == 1

    def test_search_and_expression(self, server_url):
        out = _post(
            server_url + "/search",
            {"expression": {"op": "and", "children": [PTILE, PREF]}},
        )
        both = _post(server_url + "/search", {"expression": PTILE})
        assert set(out["indexes"]) <= set(both["indexes"])

    def test_batch(self, server_url):
        out = _post(
            server_url + "/search/batch", {"expressions": [PTILE, PREF, PTILE]}
        )
        assert len(out["results"]) == 3
        assert out["results"][0]["indexes"] == out["results"][2]["indexes"]

    def test_batch_bitset_format(self, server_url):
        from repro.core.bitset import bitmap_from_wire

        plain = _post(
            server_url + "/search/batch", {"expressions": [PTILE, PREF]}
        )
        packed = _post(
            server_url + "/search/batch",
            {"expressions": [PTILE, PREF], "format": "bitset"},
        )
        assert len(packed["results"]) == 2
        for plain_r, packed_r in zip(plain["results"], packed["results"]):
            assert "indexes" not in packed_r
            bm = bitmap_from_wire(packed_r["bitset"])
            assert bm.to_list() == plain_r["indexes"]
            assert packed_r["out_size"] == len(plain_r["indexes"])
            assert bm.nbits == 10  # the full dataset universe

    def test_batch_unknown_format_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(
                server_url + "/search/batch",
                {"expressions": [PTILE], "format": "csv"},
            )
        assert err.value.code == 400

    def test_stats_and_invalidate(self, server_url):
        _post(server_url + "/search", {"expression": PTILE})
        stats = _get(server_url + "/stats")
        assert stats["telemetry"]["n_queries"] >= 1
        gen = stats["cache"]["generation"]
        out = _post(server_url + "/cache/invalidate", {})
        assert out["generation"] == gen + 1

    def test_bad_expression_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server_url + "/search", {"expression": {"op": "nope"}})
        assert err.value.code == 400
        assert "error" in json.loads(err.value.read().decode("utf-8"))

    def test_unknown_path_404(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server_url + "/nope")
        assert err.value.code == 404

    def test_record_times_are_relative_with_duration(self, server_url):
        # Absolute perf_counter stamps are process-local; the wire carries
        # offsets from the query start plus the total duration.
        out = _post(
            server_url + "/search",
            {"expression": PTILE, "record_times": True},
        )
        assert "duration_s" in out and out["duration_s"] > 0.0
        assert len(out["emit_times"]) == len(out["indexes"])
        for t in out["emit_times"]:
            assert 0.0 <= t <= out["duration_s"]

    def test_untimed_search_has_no_duration(self, server_url):
        out = _post(server_url + "/search", {"expression": PTILE})
        assert "duration_s" not in out and out["emit_times"] == []

    def test_search_trace_opt_in(self, server_url):
        plain = _post(server_url + "/search", {"expression": PTILE})
        assert "trace" not in plain
        traced = _post(
            server_url + "/search", {"expression": PTILE, "trace": True}
        )
        trace = traced["trace"]
        assert trace["name"] == "search_batch" and trace["start_s"] == 0.0
        stages = [c["name"] for c in trace["children"]]
        assert stages[0] == "plan" and "assemble" in stages
        assert trace["duration_s"] > 0.0

    def test_batch_trace_is_top_level(self, server_url):
        out = _post(
            server_url + "/search/batch",
            {"expressions": [PTILE, PREF], "trace": True},
        )
        assert out["trace"]["meta"]["n_queries"] == 2
        assert all("trace" not in r for r in out["results"])

    def test_batch_record_times_are_relative(self, server_url):
        out = _post(
            server_url + "/search/batch",
            {"expressions": [PTILE, PREF], "record_times": True},
        )
        for r in out["results"]:
            assert r["duration_s"] > 0.0
            assert len(r["emit_times"]) == len(r["indexes"])
            for t in r["emit_times"]:
                assert 0.0 <= t <= r["duration_s"]

    def test_metrics_endpoint(self, server_url):
        _post(server_url + "/search", {"expression": PTILE, "trace": True})
        req = urllib.request.Request(server_url + "/metrics")
        with urllib.request.urlopen(req, timeout=10) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            body = resp.read().decode("utf-8")
        for family in (
            "repro_stage_seconds",
            "repro_query_seconds",
            "repro_request_seconds",
            "repro_requests_total",
            "repro_cache_hit_ratio",
            "repro_shard_size",
            "repro_datasets_live",
        ):
            assert f"# TYPE {family}" in body, family
        assert 'endpoint="/search"' in body

    def test_stats_slow_endpoint(self, server_url):
        out = _get(server_url + "/stats/slow")
        # The shared server has no threshold configured.
        assert out == {
            "threshold_ms": None, "n_recorded": 0, "slow_queries": [],
        }


def _request(url: str, payload: dict, method: str) -> dict:
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method=method
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read().decode("utf-8"))


@pytest.fixture()
def mutable_server_url():
    """A per-test server: mutation tests must not disturb the shared one."""
    lake = synthetic_data_lake(
        10, 1, np.random.default_rng(0), family="clustered", median_size=120
    )
    service = QueryService(
        repository=Repository.from_arrays(lake),
        n_shards=2,
        eps=0.2,
        sample_size=8,
        seed=1,
        capacity=20,
    )
    httpd = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address
    yield f"http://{host}:{port}"
    httpd.shutdown()
    httpd.server_close()
    service.close()


def test_slow_log_over_http():
    lake = synthetic_data_lake(
        8, 1, np.random.default_rng(2), family="clustered", median_size=100
    )
    service = QueryService(
        repository=Repository.from_arrays(lake),
        n_shards=2,
        eps=0.2,
        sample_size=8,
        seed=1,
        slow_query_threshold_ms=0.0,
    )
    httpd = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address
    url = f"http://{host}:{port}"
    try:
        _post(url + "/search", {"expression": PTILE, "trace": True})
        out = _get(url + "/stats/slow")
        assert out["threshold_ms"] == 0.0 and out["n_recorded"] >= 1
        worst = out["slow_queries"][0]
        assert worst["latency_ms"] >= 0.0
        assert worst["trace"]["name"] == "search_batch"
        stats = _get(url + "/stats")
        assert stats["observability"]["slow_queries"] == out["n_recorded"]
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.close()


class TestMutationEndpoints:
    def test_post_datasets_ingests_live(self, mutable_server_url):
        url = mutable_server_url
        _post(url + "/search", {"expression": PTILE})  # warm one leaf
        new = np.random.default_rng(3).uniform(0.0, 0.6, (50, 1)).tolist()
        out = _post(url + "/datasets", {"datasets": [new, new]})
        assert out["indexes"] == [10, 11]
        assert out["rebuilt"] is False and out["n_datasets"] == 12
        health = _get(url + "/healthz")
        assert health["n_datasets"] == 12 and health["n_live"] == 12
        # The new datasets are servable and the cache was not flushed.
        search = _post(url + "/search", {"expression": PTILE})
        assert set(search["indexes"]) <= set(range(12))
        stats = _get(url + "/stats")
        assert stats["cache"]["invalidations"] == 0
        assert stats["cache"]["upgrades"] >= 1
        assert stats["delta_size"] == 2

    def test_delete_datasets_masks(self, mutable_server_url):
        url = mutable_server_url
        out = _request(url + "/datasets", {"indexes": [0, 3]}, "DELETE")
        assert out["removed"] == [0, 3] and out["n_live"] == 8
        search = _post(url + "/search", {"expression": PTILE})
        assert 0 not in search["indexes"] and 3 not in search["indexes"]
        with pytest.raises(urllib.error.HTTPError) as err:
            _request(url + "/datasets", {"indexes": [0]}, "DELETE")
        assert err.value.code == 400  # already removed

    def test_malformed_mutations_are_400(self, mutable_server_url):
        url = mutable_server_url
        for payload in ({}, {"datasets": []}, {"datasets": "nope"}):
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(url + "/datasets", payload)
            assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _request(url + "/datasets", {"indexes": []}, "DELETE")
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _request(url + "/nope", {"indexes": [1]}, "DELETE")
        assert err.value.code == 404
