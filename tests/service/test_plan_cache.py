"""Tests for the compiled-plan cache and its service integration."""

import numpy as np
import pytest

from repro.core.framework import Repository
from repro.core.measures import PercentileMeasure
from repro.core.predicates import And, Or, pred
from repro.geometry.rectangle import Rectangle
from repro.service import QueryService
from repro.service.planner import PlanCache, plan_batch
from repro.workloads.generators import synthetic_data_lake


def ptile_leaf(lo, hi, a):
    return pred(PercentileMeasure(Rectangle([lo], [hi])), a)


A = ptile_leaf(0.0, 0.5, 0.2)
B = ptile_leaf(0.5, 1.0, 0.4)
C = ptile_leaf(0.2, 0.8, 0.1)


class TestPlanCache:
    def test_structural_hit_reuses_plan(self):
        cache = PlanCache(capacity=8)
        p1 = cache.plan(And([A, Or([B, C])]))
        p2 = cache.plan(And([A, Or([B, C])]))
        assert p1 is p2
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_shapes_distinct_entries(self):
        cache = PlanCache(capacity=8)
        p_ab = cache.plan(And([A, B]))
        p_ba = cache.plan(And([B, A]))
        # Different structure -> different entries, but the same canonical
        # rewrite (so the leaf cache unifies their answers downstream).
        assert p_ab is not p_ba
        assert p_ab.key == p_ba.key
        assert cache.misses == 2 and len(cache) == 2

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.plan(A)
        cache.plan(B)
        cache.plan(A)  # refresh A; B is LRU
        cache.plan(C)  # evicts B
        assert cache.evictions == 1
        cache.plan(B)
        assert cache.misses == 4  # B was re-planned

    def test_zero_capacity_disables(self):
        cache = PlanCache(capacity=0)
        p1 = cache.plan(And([A, B]))
        p2 = cache.plan(And([A, B]))
        assert p1 is not p2 and len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=-1)

    def test_plan_batch_uses_cache(self):
        cache = PlanCache(capacity=8)
        batch1 = plan_batch([And([A, B]), C], cache=cache)
        batch2 = plan_batch([And([A, B]), C], cache=cache)
        assert cache.hits == 2 and cache.misses == 2
        assert [p.expression for p in batch1.plans] == [
            p.expression for p in batch2.plans
        ]
        assert batch2.n_leaves_unique == 3

    def test_snapshot_shape(self):
        cache = PlanCache(capacity=4)
        cache.plan(A)
        cache.plan(A)
        snap = cache.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["hit_rate"] == 0.5
        assert snap["size"] == 1 and snap["capacity"] == 4


class TestServiceIntegration:
    @pytest.fixture(scope="class")
    def service(self):
        lake = synthetic_data_lake(
            10, 1, np.random.default_rng(0), family="clustered", median_size=120
        )
        with QueryService(
            repository=Repository.from_arrays(lake),
            n_shards=2,
            eps=0.2,
            sample_size=10,
            seed=3,
        ) as svc:
            yield svc

    def test_repeated_shapes_hit_plan_cache(self, service):
        expr = And([A, Or([B, C])])
        service.search(expr)
        misses = service.plans.misses
        service.search(expr)
        service.search(And([A, Or([B, C])]))  # rebuilt but same shape
        assert service.plans.misses == misses
        assert service.plans.hits >= 2
        assert service.stats()["plan_cache"]["hits"] >= 2

    def test_plan_cache_survives_rebuild_with_same_answers(self, service):
        expr = Or([A, And([B, C])])
        before = service.search(expr).indexes
        service.rebuild()
        assert len(service.plans) > 0  # plans are data-independent
        hits_before = service.plans.hits
        after = service.search(expr).indexes
        assert after == before
        assert service.plans.hits == hits_before + 1

    def test_answers_identical_with_plan_cache_disabled(self):
        lake = synthetic_data_lake(
            8, 1, np.random.default_rng(1), family="clustered", median_size=100
        )
        repo = Repository.from_arrays(lake)
        queries = [And([A, B]), Or([A, C]), And([A, Or([B, C])]), A]
        kwargs = dict(repository=repo, n_shards=2, eps=0.2, sample_size=10, seed=3)
        with QueryService(plan_cache_capacity=0, **kwargs) as cold, QueryService(
            **kwargs
        ) as warm:
            a = [r.indexes for r in cold.search_batch(queries * 2)]
            b = [r.indexes for r in warm.search_batch(queries * 2)]
        assert a == b
