"""Deadline propagation and synopsis-degraded answers.

The resilience contract: a query with a ``deadline_ms`` budget never
500s — when the budget runs out mid-evaluation (or the caller asks for
``degrade`` outright), the service answers from the per-dataset synopses
already in the tree with a must/maybe bound pair satisfying

    must ⊆ exact ⊆ must ∪ maybe

where *exact* is what an unbounded evaluation returns.  Screened bounds
are never cached; exact prefixes salvaged from a partial evaluation are.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.framework import Repository
from repro.errors import DeadlineExceeded, QueryError
from repro.service import QueryService
from repro.service import faults
from repro.service.deadline import Deadline
from repro.service.server import expression_to_json, make_server
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

SEED = 31
DIM = 2


def build_service(engine: str, **kwargs) -> QueryService:
    lake = synthetic_data_lake(
        12, DIM, np.random.default_rng(SEED), median_size=80
    )
    return QueryService(
        repository=Repository.from_arrays(lake),
        n_shards=2,
        engine=engine,
        seed=SEED,
        eps=0.2,
        sample_size=16,
        **kwargs,
    )


@pytest.fixture(params=["kd", "columnar"])
def service(request):
    svc = build_service(request.param)
    yield svc
    svc.close()


@pytest.fixture()
def queries():
    return batched_query_workload(6, DIM, np.random.default_rng(SEED + 1))


def assert_contained(degraded, exact):
    """must ⊆ exact ⊆ must ∪ maybe, and must/maybe are disjoint."""
    must = set(degraded.indexes)
    maybe = set(degraded.maybe_bitmap.to_list())
    exact_set = set(exact.indexes)
    assert must.isdisjoint(maybe)
    assert must <= exact_set, f"must {must} not within exact {exact_set}"
    assert exact_set <= must | maybe, (
        f"exact {exact_set} escapes must∪maybe {must | maybe}"
    )


class TestDeadlineClass:
    def test_tiny_budget_expires(self):
        d = Deadline.from_ms(1e-6)
        assert d.expired()

    def test_generous_budget_does_not(self):
        assert not Deadline.from_ms(60_000).expired()

    @pytest.mark.parametrize("bad", [0, -5, "soon", None])
    def test_invalid_budgets_rejected(self, bad):
        with pytest.raises(QueryError):
            Deadline.from_ms(bad)


class TestDegradedAnswers:
    def test_expired_before_start_degrades_immediately(self, service, queries):
        results = service.search_batch(queries, deadline_ms=1e-6)
        assert all(r.stats.get("degraded") for r in results)
        assert all(r.stats["degrade_reason"] == "deadline" for r in results)
        exact = service.search_batch(queries)
        for deg, ex in zip(results, exact):
            assert_contained(deg, ex)

    def test_requested_degrade_bounds_exact(self, service, queries):
        degraded = service.search_batch(queries, degrade=True)
        assert all(r.stats.get("degraded") for r in degraded)
        assert all(
            r.stats["degrade_reason"] == "requested" for r in degraded
        )
        exact = service.search_batch(queries)
        for deg, ex in zip(degraded, exact):
            assert_contained(deg, ex)

    def test_generous_deadline_stays_exact(self, service, queries):
        bounded = service.search_batch(queries, deadline_ms=60_000)
        exact = service.search_batch(queries)
        for b, ex in zip(bounded, exact):
            assert not b.stats.get("degraded")
            assert b.maybe_bitmap is None
            assert sorted(b.indexes) == sorted(ex.indexes)

    def test_degraded_bounds_metadata(self, service, queries):
        (r,) = service.search_batch(queries[:1], degrade=True)
        bounds = r.stats["bounds"]
        assert bounds["must"] == len(r.indexes)
        assert bounds["maybe"] == r.maybe_bitmap.count()
        assert bounds["screened_leaves"] >= 1

    def test_degraded_bounds_are_not_cached(self, service, queries):
        service.search_batch(queries, degrade=True)
        # Nothing exact was computed for those leaves, so a later exact
        # run re-evaluates them and comes back undegraded and complete.
        exact = service.search_batch(queries)
        assert all(not r.stats.get("degraded") for r in exact)
        assert all(r.maybe_bitmap is None for r in exact)

    def test_exact_answers_reused_after_deadline_salvage(
        self, service, queries
    ):
        # Populate exactly, then degrade: every leaf is a cache hit, so
        # even degrade=True serves the exact answer (nothing pending).
        exact = service.search_batch(queries)
        again = service.search_batch(queries, degrade=True)
        for ex, ag in zip(exact, again):
            assert not ag.stats.get("degraded")
            assert sorted(ag.indexes) == sorted(ex.indexes)


class TestDeadlineUnderInjectedSlowness:
    def test_slow_shard_triggers_degradation(self, queries):
        svc = build_service("kd")
        try:
            faults.arm("shard_eval=sleep:0.25")
            results = svc.search_batch(queries, deadline_ms=50)
            assert any(r.stats.get("degraded") for r in results)
            assert all(
                r.stats["degrade_reason"] == "deadline"
                for r in results
                if r.stats.get("degraded")
            )
            faults.disarm()
            exact = svc.search_batch(queries)
            for deg, ex in zip(results, exact):
                if deg.stats.get("degraded"):
                    assert_contained(deg, ex)
        finally:
            faults.disarm()
            svc.close()

    def test_executor_raises_with_partial_prefix(self, queries):
        svc = build_service("kd")
        try:
            plans = [svc.plans.plan(q) for q in queries]
            leaves = []
            for p in plans:
                leaves.extend(p.leaves.values())
            deadline = Deadline(-1.0)  # already expired
            with pytest.raises(DeadlineExceeded) as exc_info:
                svc.executor.eval_leaves(leaves, deadline=deadline)
            exc = exc_info.value
            assert exc.stage == "shard_eval"
            assert isinstance(exc.partial, list)
            assert len(exc.partial) < len(leaves) or len(leaves) == 0
        finally:
            svc.close()


class TestDeadlineWire:
    @pytest.fixture(scope="class")
    def server(self):
        svc = build_service("columnar")
        httpd = make_server(svc, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{httpd.server_address[1]}", svc
        httpd.shutdown()
        httpd.server_close()
        svc.close()

    def _post(self, url, payload):
        req = urllib.request.Request(
            url,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=15) as resp:
            return json.loads(resp.read())

    def test_search_degrade_carries_maybe_indexes(self, server, queries):
        url, _svc = server
        expr = expression_to_json(queries[0])
        deg = self._post(
            f"{url}/search", {"expression": expr, "degrade": True}
        )
        exact = self._post(f"{url}/search", {"expression": expr})
        if deg.get("degraded"):
            must = set(deg["indexes"])
            maybe = set(deg["maybe_indexes"])
            exact_set = set(exact["indexes"])
            assert must <= exact_set <= must | maybe
        else:
            # all leaves were already cached by a sibling test
            assert sorted(deg["indexes"]) == sorted(exact["indexes"])

    def test_batch_deadline_never_500s(self, server):
        url, _svc = server
        # Fresh expressions: a leaf already in the exact cache answers
        # exactly even under an expired deadline, which is correct but
        # not what this test is probing.
        queries = batched_query_workload(
            4, DIM, np.random.default_rng(SEED + 17)
        )
        payload = {
            "expressions": [expression_to_json(q) for q in queries],
            "deadline_ms": 1e-6,
        }
        out = self._post(f"{url}/search/batch", payload)
        assert len(out["results"]) == len(queries)
        for r in out["results"]:
            assert r["stats"].get("degraded")
            assert "maybe_indexes" in r

    def test_bitset_format_ships_maybe_bitset(self, server):
        url, _svc = server
        (query,) = batched_query_workload(
            1, DIM, np.random.default_rng(SEED + 19)
        )
        payload = {
            "expressions": [expression_to_json(query)],
            "format": "bitset",
            "deadline_ms": 1e-6,
        }
        out = self._post(f"{url}/search/batch", payload)
        (r,) = out["results"]
        assert r["stats"]["degraded"]
        assert "maybe_bitset" in r

    def test_bad_deadline_is_a_client_error(self, server, queries):
        url, _svc = server
        payload = {
            "expression": expression_to_json(queries[0]),
            "deadline_ms": -10,
        }
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            self._post(f"{url}/search", payload)
        assert exc_info.value.code == 400

    def test_degraded_queries_surface_in_stats(self, server):
        url, _svc = server
        queries = batched_query_workload(
            3, DIM, np.random.default_rng(SEED + 23)
        )
        self._post(
            f"{url}/search/batch",
            {
                "expressions": [expression_to_json(q) for q in queries],
                "deadline_ms": 1e-6,
            },
        )
        with urllib.request.urlopen(f"{url}/stats", timeout=15) as resp:
            stats = json.loads(resp.read())
        res = stats["resilience"]
        assert res["degraded_queries"] >= 1
        assert res["deadline_expirations"] >= 1
