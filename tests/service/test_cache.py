"""Tests for the LRU leaf-result cache."""

import numpy as np
import pytest

from repro.service.cache import LeafResultCache


class TestHitMiss:
    def test_miss_then_hit(self):
        cache = LeafResultCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", {1, 2})
        assert cache.get("k") == frozenset({1, 2})
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_values_are_frozen(self):
        cache = LeafResultCache(capacity=4)
        source = {1, 2}
        cache.put("k", source)
        source.add(99)  # mutating the caller's set must not leak in
        assert cache.get("k") == frozenset({1, 2})

    def test_contains_does_not_touch_stats(self):
        cache = LeafResultCache(capacity=4)
        cache.put("k", {1})
        assert "k" in cache and "other" not in cache
        assert cache.stats.lookups == 0


class TestEviction:
    def test_lru_order(self):
        cache = LeafResultCache(capacity=2)
        cache.put("a", {1})
        cache.put("b", {2})
        assert cache.get("a") is not None  # refresh `a`; `b` is now LRU
        cache.put("c", {3})
        assert cache.get("b") is None and cache.get("a") is not None
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LeafResultCache(capacity=2)
        cache.put("a", {1})
        cache.put("b", {2})
        cache.put("a", {1, 5})  # refresh value + recency
        cache.put("c", {3})
        assert cache.get("a") == frozenset({1, 5})
        assert cache.get("b") is None

    def test_zero_capacity_disables(self):
        cache = LeafResultCache(capacity=0)
        cache.put("a", {1})
        assert cache.get("a") is None and len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LeafResultCache(capacity=-1)


class TestInvalidation:
    def test_invalidate_clears_and_bumps_generation(self):
        cache = LeafResultCache(capacity=4)
        cache.put("a", {1})
        cache.put("b", {2})
        gen = cache.generation
        cache.invalidate()
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.generation == gen + 1
        assert cache.stats.invalidations == 1

    def test_stale_generation_write_dropped(self):
        # A computation that began before invalidate() must not poison the
        # fresh cache with answers for the old synopsis set.
        cache = LeafResultCache(capacity=4)
        gen = cache.generation
        cache.invalidate()  # synopsis set changes mid-computation
        cache.put("a", {1, 2}, generation=gen)
        assert cache.get("a") is None
        cache.put("a", {3}, generation=cache.generation)  # current gen: kept
        assert cache.get("a") == frozenset({3})

    def test_snapshot_shape(self):
        cache = LeafResultCache(capacity=4)
        cache.put("a", {1})
        cache.get("a")
        snap = cache.snapshot()
        assert snap["size"] == 1 and snap["capacity"] == 4
        assert snap["hits"] == 1 and snap["hit_rate"] == 1.0
        assert {"evictions", "invalidations", "generation", "max_size_seen",
                "upgrades"} <= set(snap)


class TestWatermarks:
    def test_entry_carries_watermark(self):
        cache = LeafResultCache(capacity=4)
        cache.put("a", {1, 2}, watermark=7)
        entry = cache.get_entry("a")
        assert entry.indexes == frozenset({1, 2}) and entry.watermark == 7
        # get() remains the watermark-oblivious view of the same entry
        assert cache.get("a") == frozenset({1, 2})
        assert cache.stats.hits == 2

    def test_default_watermark_zero(self):
        cache = LeafResultCache(capacity=4)
        cache.put("a", {1})
        assert cache.get_entry("a").watermark == 0

    def test_note_upgrades_counts(self):
        cache = LeafResultCache(capacity=4)
        cache.note_upgrades(3)
        assert cache.stats.upgrades == 3 and cache.snapshot()["upgrades"] == 3


class TestResidentBytes:
    def test_tracks_insert_replace_evict_invalidate(self):
        from repro.core.bitset import DatasetBitmap

        cache = LeafResultCache(capacity=2)
        assert cache.resident_bytes == 0
        cache.put("a", set(range(100)))
        set_bytes = cache.resident_bytes
        assert set_bytes > 0
        cache.put("a", DatasetBitmap.from_indices(range(100), 320))
        bitset_bytes = cache.resident_bytes
        # The whole point of the representation change: packed words are
        # far smaller than a frozenset of the same indexes.
        assert bitset_bytes * 10 <= set_bytes
        cache.put("b", set(range(50)))
        cache.put("c", set(range(50)))  # evicts "a"
        assert cache.get("a") is None
        two_sets = cache.resident_bytes
        assert two_sets > bitset_bytes
        cache.invalidate()
        assert cache.resident_bytes == 0
        assert cache.snapshot()["resident_bytes"] == 0

    def test_zero_capacity_stays_zero(self):
        cache = LeafResultCache(capacity=0)
        cache.put("a", {1, 2, 3})
        assert cache.resident_bytes == 0


class TestStaleDropThroughRebuild:
    def test_put_after_inflight_rebuild_is_dropped(self):
        """The generation guard end to end: a rebuild that lands while a
        batch is evaluating leaves must win over the batch's write-back."""
        from repro.core.framework import Repository
        from repro.service import QueryService
        from repro.workloads.generators import synthetic_data_lake
        from repro.workloads.queries import batched_query_workload

        lake = synthetic_data_lake(
            8, 1, np.random.default_rng(0), family="clustered", median_size=100
        )
        queries = batched_query_workload(
            4, 1, np.random.default_rng(1), duplicate_leaf_rate=0.0
        )
        with QueryService(
            repository=Repository.from_arrays(lake),
            n_shards=2,
            eps=0.2,
            sample_size=8,
            seed=1,
        ) as svc:
            old_executor = svc.executor
            orig = old_executor.eval_leaves

            def eval_then_rebuild(leaves):
                out = orig(leaves)
                svc.rebuild()  # flushes the cache mid-batch
                return out

            old_executor.eval_leaves = eval_then_rebuild
            results = svc.search_batch(queries)
            # The stale write-backs were dropped: the rebuild flushed the
            # cache and the in-flight batch must not repopulate it with
            # answers computed against the pre-rebuild synopsis set.
            assert svc.cache.generation >= 1  # a rebuild flushes (possibly
            assert svc.cache.stats.invalidations >= 1  # on both swap sides)
            assert len(svc.cache) == 0
            # The in-flight batch still answered from its own evaluation.
            expected = [r.indexes for r in svc.search_batch(queries)]
            assert [r.indexes for r in results] == expected
