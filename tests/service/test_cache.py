"""Tests for the LRU leaf-result cache."""

import pytest

from repro.service.cache import LeafResultCache


class TestHitMiss:
    def test_miss_then_hit(self):
        cache = LeafResultCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", {1, 2})
        assert cache.get("k") == frozenset({1, 2})
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_values_are_frozen(self):
        cache = LeafResultCache(capacity=4)
        source = {1, 2}
        cache.put("k", source)
        source.add(99)  # mutating the caller's set must not leak in
        assert cache.get("k") == frozenset({1, 2})

    def test_contains_does_not_touch_stats(self):
        cache = LeafResultCache(capacity=4)
        cache.put("k", {1})
        assert "k" in cache and "other" not in cache
        assert cache.stats.lookups == 0


class TestEviction:
    def test_lru_order(self):
        cache = LeafResultCache(capacity=2)
        cache.put("a", {1})
        cache.put("b", {2})
        assert cache.get("a") is not None  # refresh `a`; `b` is now LRU
        cache.put("c", {3})
        assert cache.get("b") is None and cache.get("a") is not None
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LeafResultCache(capacity=2)
        cache.put("a", {1})
        cache.put("b", {2})
        cache.put("a", {1, 5})  # refresh value + recency
        cache.put("c", {3})
        assert cache.get("a") == frozenset({1, 5})
        assert cache.get("b") is None

    def test_zero_capacity_disables(self):
        cache = LeafResultCache(capacity=0)
        cache.put("a", {1})
        assert cache.get("a") is None and len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LeafResultCache(capacity=-1)


class TestInvalidation:
    def test_invalidate_clears_and_bumps_generation(self):
        cache = LeafResultCache(capacity=4)
        cache.put("a", {1})
        cache.put("b", {2})
        gen = cache.generation
        cache.invalidate()
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.generation == gen + 1
        assert cache.stats.invalidations == 1

    def test_stale_generation_write_dropped(self):
        # A computation that began before invalidate() must not poison the
        # fresh cache with answers for the old synopsis set.
        cache = LeafResultCache(capacity=4)
        gen = cache.generation
        cache.invalidate()  # synopsis set changes mid-computation
        cache.put("a", {1, 2}, generation=gen)
        assert cache.get("a") is None
        cache.put("a", {3}, generation=cache.generation)  # current gen: kept
        assert cache.get("a") == frozenset({3})

    def test_snapshot_shape(self):
        cache = LeafResultCache(capacity=4)
        cache.put("a", {1})
        cache.get("a")
        snap = cache.snapshot()
        assert snap["size"] == 1 and snap["capacity"] == 4
        assert snap["hits"] == 1 and snap["hit_rate"] == 1.0
        assert {"evictions", "invalidations", "generation", "max_size_seen"} <= set(
            snap
        )
