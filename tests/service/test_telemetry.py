"""Tests for the service telemetry aggregates and their thread safety."""

import json
import threading

import pytest

from repro.service.telemetry import QueryRecord, ServiceTelemetry, percentile


def record(latency: float = 0.01, **overrides) -> QueryRecord:
    kwargs = dict(
        latency_s=latency,
        n_leaves_raw=3,
        n_leaves_unique=2,
        cache_hits=1,
        cache_misses=1,
        out_size=4,
        cache_upgrades=1,
        shared_leaves=1,
    )
    kwargs.update(overrides)
    return QueryRecord(**kwargs)


class TestPercentile:
    def test_nearest_rank(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 100.0) == 4.0
        assert percentile([5.0], 0.0) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestSummary:
    def test_aggregates_and_new_counters(self):
        tel = ServiceTelemetry(window=8)
        tel.record_query(record(0.01))
        tel.record_query(record(0.03))
        tel.record_batch(2, 0.05)
        out = tel.summary()
        assert out["n_queries"] == 2 and out["n_batches"] == 1
        assert out["cache_hits"] == 2 and out["cache_misses"] == 2
        assert out["cache_upgrades"] == 2 and out["shared_leaves"] == 2
        assert out["latency_mean_s"] == pytest.approx(0.02)
        assert out["throughput_qps"] == pytest.approx(2 / 0.05)
        assert "NaN" not in json.dumps(out)

    def test_throughput_zero_before_first_batch(self):
        assert ServiceTelemetry().throughput_qps == 0.0

    def test_empty_window_summary_has_no_nan(self):
        out = ServiceTelemetry().summary()
        assert out["throughput_qps"] == 0.0
        assert out["latency_bucket_p50_s"] is None
        assert "NaN" not in json.dumps(out)

    def test_bucket_quantiles_track_lifetime_distribution(self):
        tel = ServiceTelemetry(window=2)  # window forgets, buckets do not
        for latency in (0.0001, 0.0001, 0.0001, 0.05, 0.05):
            tel.record_query(record(latency))
        out = tel.summary()
        # The two slow queries fell out of the window but not the buckets.
        assert out["latency_p50_s"] == pytest.approx(0.05)
        assert out["latency_bucket_p50_s"] <= 0.001
        assert out["latency_bucket_p99_s"] >= 0.05
        # Bucket estimates are conservative: upper bound of the bucket.
        assert out["latency_bucket_p50_s"] >= 0.0001

    def test_batch_histogram_observes_wall_time(self):
        tel = ServiceTelemetry()
        tel.record_batch(3, 0.02)
        assert tel.batch_histogram.count == 1
        assert tel.batch_histogram.sum == pytest.approx(0.02)

    def test_summary_is_consistent_under_concurrent_recording(self):
        """/stats is read by one server thread while others record; the
        snapshot must be taken under the lock so the derived ratios are
        internally consistent (no torn counter pairs)."""
        tel = ServiceTelemetry(window=64)
        stop = threading.Event()
        errors: list = []

        def writer():
            while not stop.is_set():
                tel.record_query(record(0.001))
                tel.record_batch(1, 0.001)

        def reader():
            try:
                while not stop.is_set():
                    out = tel.summary()
                    # mean is derived from two counters read atomically:
                    # with n recorded identical latencies the mean is exact.
                    if out["n_queries"]:
                        assert out["latency_mean_s"] == pytest.approx(0.001)
                    _ = tel.throughput_qps
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        stop_timer = threading.Timer(0.5, stop.set)
        stop_timer.start()
        for t in threads:
            t.join(timeout=10)
        stop_timer.cancel()
        assert not errors
