"""Federation chaos suite: kill and stall real node processes under
live coordinator traffic.

The acceptance bar from the federation issue: with a node SIGKILLed or
stalled while traffic flows, the coordinator serves **zero 5xx** (every
answer is either exact or a sound synopsis-screened degradation with
``must ⊆ exact ⊆ must ∪ maybe``), the dead node's breaker trips open,
and after the node comes back the breaker's half-open probe closes it
and answers return to exact.  Node processes are ``os.fork``\\ ed so a
SIGKILL is a real process death and a stall (armed ``handler`` sleep
failpoint in the child only) does not slow the coordinator process.
Skipped cleanly on platforms without ``os.fork``.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.bench.harness import http_post_json
from repro.core.bitset import bitmap_from_wire
from repro.core.framework import Repository
from repro.service import QueryService, faults
from repro.service.federation import (
    FederatedCoordinator,
    federated_node_service,
    make_federation_server,
)
from repro.service.server import expression_to_json, make_server
from repro.service.supervisor import fork_available
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="federation chaos suite needs os.fork"
)

SEED = 61
DIM = 1
N_TOTAL = 12
N_NODES = 3


def _wait_for(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class _ForkedNode:
    """A node server running in a forked child process.

    The parent builds the service and binds the listening socket, then
    forks; the child serves on the inherited socket and the parent keeps
    only the pid (plus the service object, whose synopses it registers
    with the coordinator).  ``failpoints`` arms fault injection in the
    child *only* — the parent's ``faults.ARMED`` stays None.
    """

    def __init__(self, arrays, offset, total, bounding_box, failpoints=None):
        # Global accuracy frame: the merge over healthy nodes must equal
        # the single-service oracle exactly, by construction.
        self.service = federated_node_service(
            arrays,
            offset=offset,
            total=total,
            bounding_box=bounding_box,
            seed=1,
            n_shards=2,
            eps=0.2,
            sample_size=8,
        )
        self.service.warm()
        self.port = None
        self.pid = None
        self.failpoints = failpoints
        self._spawn()

    def _spawn(self):
        # Park the executor pool before forking (threads don't survive
        # fork); the child lazily rebuilds it — the supervisor's idiom.
        ex = self.service.executor
        ex._pool_width = ex._pool._max_workers if ex._pool is not None else 0
        ex.close()
        httpd = make_server(self.service, host="127.0.0.1", port=self.port or 0)
        self.port = httpd.server_address[1]
        self.url = f"http://127.0.0.1:{self.port}"
        pid = os.fork()
        if pid == 0:  # child: serve until killed
            try:
                if self.failpoints:
                    faults.arm(self.failpoints)
                httpd.serve_forever()
            finally:
                os._exit(0)
        # parent: drop its copy of the listening socket (the child's
        # inherited fd keeps the port alive).
        httpd.server_close()
        self.pid = pid

    def sigkill(self):
        os.kill(self.pid, signal.SIGKILL)
        os.waitpid(self.pid, 0)
        self.pid = None

    def restart(self):
        """Heal the node: a fresh child on the same port."""
        self._spawn()

    def close(self):
        if self.pid is not None:
            try:
                os.kill(self.pid, signal.SIGKILL)
                os.waitpid(self.pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
            self.pid = None
        self.service.close()


@pytest.fixture(scope="module")
def workload():
    lake = synthetic_data_lake(
        N_TOTAL, DIM, np.random.default_rng(SEED), family="clustered",
        median_size=80,
    )
    (query,) = batched_query_workload(1, DIM, np.random.default_rng(SEED + 1))
    ref = QueryService(
        repository=Repository.from_arrays(lake),
        n_shards=2,
        eps=0.2,
        sample_size=8,
        seed=1,
    )
    exact = frozenset(ref.search_batch([query])[0].indexes)
    ref.close()
    return lake, query, exact


class _FederationTraffic:
    """Live /search/batch traffic against the coordinator, every response
    parsed and containment-checked on arrival."""

    def __init__(self, url, query, exact):
        self.url = url
        self.exact = exact
        self.payload = json.dumps(
            {
                "expressions": [expression_to_json(query)],
                "format": "bitset",
                "deadline_ms": 4000,
            }
        ).encode()
        self.statuses: list[int] = []
        self.transport_errors = 0
        self.violations: list[str] = []
        self.coverages: list[float] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while not self._stop.is_set():
            req = urllib.request.Request(
                f"{self.url}/search/batch",
                data=self.payload,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(req, timeout=30) as resp:
                    self.statuses.append(resp.status)
                    self._check(json.loads(resp.read()))
            except urllib.error.HTTPError as exc:
                self.statuses.append(exc.code)
            except (urllib.error.URLError, ConnectionError, OSError):
                self.transport_errors += 1
            time.sleep(0.02)

    def _check(self, body):
        result = body["results"][0]
        must = set(bitmap_from_wire(result["bitset"]).to_list())
        self.coverages.append(body["federation"]["coverage"])
        if result.get("degraded"):
            maybe = set(bitmap_from_wire(result["maybe_bitset"]).to_list())
        else:
            maybe = set()
            if must != self.exact:
                self.violations.append(
                    f"exact answer mismatch: {sorted(must)}"
                )
                return
        if not must <= self.exact:
            self.violations.append(f"must ⊄ exact: {sorted(must - self.exact)}")
        if not self.exact <= must | maybe:
            self.violations.append(
                f"exact ⊄ must∪maybe: {sorted(self.exact - must - maybe)}"
            )

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=30)


@pytest.fixture()
def federation(workload):
    lake, query, exact = workload
    per = N_TOTAL // N_NODES
    box = Repository.from_arrays(lake).bounding_box()
    nodes = [
        _ForkedNode(lake[i * per:(i + 1) * per], i * per, N_TOTAL, box)
        for i in range(N_NODES)
    ]
    coord = FederatedCoordinator(
        seed=5,
        rpc_timeout_s=1.0,
        max_retries=1,
        backoff_base_s=0.02,
        backoff_max_s=0.1,
        hedge_delay_s=0.3,
        breaker_threshold=2,
        breaker_reset_s=0.5,
    )
    for node in nodes:
        ex = node.service.executor
        coord.add_node(
            node.url,
            synopses=list(ex.synopses),
            eps=ex.eps,
            eps_effective=ex.eps_effective,
        )
    httpd = make_federation_server(coord, host="127.0.0.1", port=0)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    host, port = httpd.server_address
    yield f"http://{host}:{port}", coord, nodes
    httpd.shutdown()
    httpd.server_close()
    coord.close()
    for node in nodes:
        node.close()


def _breaker_states(coord):
    return [
        m["breaker"]["state"] for m in coord.stats()["federation"]["nodes"]
    ]


class TestFederationChaos:
    def test_sigkill_node_zero_5xx_containment_and_breaker_recovery(
        self, federation, workload
    ):
        url, coord, nodes = federation
        _lake, query, exact = workload
        victim = nodes[1]

        with _FederationTraffic(url, query, exact) as traffic:
            # Warm: healthy exact answers flowing.
            assert _wait_for(lambda: len(traffic.statuses) >= 5)
            assert traffic.coverages and traffic.coverages[-1] == 1.0

            # Kill a node mid-traffic.  Coordinator keeps answering,
            # the victim's breaker trips open.
            victim.sigkill()
            assert _wait_for(
                lambda: traffic.coverages
                and traffic.coverages[-1] < 1.0
            ), "no degraded answer observed after SIGKILL"
            assert _wait_for(
                lambda: _breaker_states(coord)[1] == "open"
            ), f"breaker never tripped: {_breaker_states(coord)}"
            n_during_outage = len(traffic.statuses)

            # Heal: same port, fresh process.  The half-open probe must
            # close the breaker and answers return to exact coverage.
            victim.restart()
            assert _wait_for(
                lambda: _breaker_states(coord)[1] == "closed", timeout=30
            ), f"breaker never closed: {_breaker_states(coord)}"
            assert _wait_for(
                lambda: len(traffic.statuses) > n_during_outage
                and traffic.coverages[-1] == 1.0,
                timeout=30,
            ), "answers never returned to full coverage"

        # Zero 5xx across the whole outage and recovery.
        assert all(s == 200 for s in traffic.statuses), sorted(
            set(traffic.statuses)
        )
        assert traffic.violations == [], traffic.violations[:5]
        # The outage really produced degraded-but-sound answers.
        assert any(c < 1.0 for c in traffic.coverages)
        victim_stats = coord.stats()["federation"]["nodes"][1]
        assert victim_stats["breaker"]["trips"] >= 1
        assert victim_stats["degraded_served"] >= 1

    def test_stalled_node_zero_5xx_and_bounded_latency(self, workload):
        lake, query, exact = workload
        per = N_TOTAL // N_NODES
        box = Repository.from_arrays(lake).bounding_box()
        nodes = []
        try:
            for i in range(N_NODES):
                # The last node stalls every request well past the
                # coordinator's RPC timeout — armed in the child only.
                fp = "handler=sleep:30" if i == N_NODES - 1 else None
                nodes.append(
                    _ForkedNode(
                        lake[i * per:(i + 1) * per], i * per, N_TOTAL, box,
                        failpoints=fp,
                    )
                )
            coord = FederatedCoordinator(
                seed=5,
                rpc_timeout_s=0.4,
                max_retries=1,
                backoff_base_s=0.02,
                backoff_max_s=0.1,
                hedge_delay_s=0.15,
                breaker_threshold=2,
                breaker_reset_s=30.0,
            )
            for node in nodes:
                ex = node.service.executor
                coord.add_node(
                    node.url,
                    synopses=list(ex.synopses),
                    eps=ex.eps,
                    eps_effective=ex.eps_effective,
                )
            httpd = make_federation_server(coord, host="127.0.0.1", port=0)
            threading.Thread(target=httpd.serve_forever, daemon=True).start()
            host, port = httpd.server_address
            url = f"http://{host}:{port}"

            latencies = []
            payload = json.dumps(
                {
                    "expressions": [expression_to_json(query)],
                    "format": "bitset",
                    "deadline_ms": 3000,
                }
            ).encode()
            statuses = []
            bodies = []
            for _ in range(6):
                t0 = time.perf_counter()
                req = urllib.request.Request(
                    f"{url}/search/batch",
                    data=payload,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(req, timeout=30) as resp:
                    statuses.append(resp.status)
                    bodies.append(json.loads(resp.read()))
                latencies.append(time.perf_counter() - t0)

            assert all(s == 200 for s in statuses)
            # The stall is contained: hedging + retries never push a
            # request past the deadline plus scheduling slack.
            assert max(latencies) < 3.0 + 1.0, latencies
            # After the breaker trips (2 consecutive timeouts), requests
            # stop waiting on the stalled node at all: latency collapses
            # to the healthy nodes' scale.
            assert min(latencies[2:]) < 1.0, latencies
            for body in bodies:
                result = body["results"][0]
                assert result["degraded"]
                must = set(bitmap_from_wire(result["bitset"]).to_list())
                maybe = set(
                    bitmap_from_wire(result["maybe_bitset"]).to_list()
                )
                assert must <= exact <= must | maybe
                # Only the stalled node's slice is screened.
                assert body["federation"]["coverage"] == pytest.approx(2 / 3)
            assert _breaker_states(coord)[2] == "open"

            httpd.shutdown()
            httpd.server_close()
            coord.close()
        finally:
            for node in nodes:
                node.close()
