"""The fault-injection machinery itself: spec parsing, arming, firing."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.framework import Repository
from repro.service import QueryService, faults
from repro.service.server import expression_to_json, make_server
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

SEED = 41
DIM = 1


@pytest.fixture(autouse=True)
def disarmed():
    faults.disarm()
    yield
    faults.disarm()


class TestSpecParsing:
    def test_parses_multiple_points(self):
        table = faults.parse_spec("shard_eval=sleep:0.5; handler=exit:3")
        assert table == {
            "shard_eval": ("sleep", 0.5),
            "handler": ("exit", 3.0),
        }

    def test_default_args(self):
        assert faults.parse_spec("handler=raise") == {"handler": ("raise", 0.0)}
        assert faults.parse_spec("handler=exit") == {"handler": ("exit", 1.0)}

    @pytest.mark.parametrize(
        "bad",
        [
            "typo_point=raise",          # unknown point must fail loudly
            "handler",                   # no action
            "handler=explode",           # unknown action
            "handler=sleep:soon",        # non-numeric arg
            "handler=sleep:-1",          # negative sleep
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            faults.parse_spec(bad)

    def test_arm_disarm_roundtrip(self):
        faults.arm("handler=sleep:0.1")
        assert faults.ARMED == {"handler": ("sleep", 0.1)}
        faults.disarm()
        assert faults.ARMED is None

    def test_arm_none_and_empty_disarm(self):
        faults.arm("handler=raise")
        faults.arm(None)
        assert faults.ARMED is None
        faults.arm("")
        assert faults.ARMED is None


class TestFiring:
    def test_unarmed_hit_is_noop(self):
        faults.hit("handler")  # nothing armed: must not raise

    def test_armed_other_point_is_noop(self):
        faults.arm("shard_eval=raise")
        faults.hit("handler")  # different point: must not raise

    def test_raise_action(self):
        faults.arm("handler=raise")
        with pytest.raises(faults.FailpointError) as exc_info:
            faults.hit("handler")
        assert exc_info.value.point == "handler"

    def test_sleep_action(self):
        faults.arm("handler=sleep:0.05")
        t0 = time.perf_counter()
        faults.hit("handler")
        assert time.perf_counter() - t0 >= 0.04

    def test_failpoint_error_is_not_a_client_error(self):
        from repro.errors import ReproError

        assert not issubclass(faults.FailpointError, ReproError)


class TestHandlerFailpoint:
    @pytest.fixture()
    def server(self):
        lake = synthetic_data_lake(
            8, DIM, np.random.default_rng(SEED), median_size=60
        )
        svc = QueryService(
            repository=Repository.from_arrays(lake),
            n_shards=2,
            eps=0.2,
            sample_size=8,
            seed=SEED,
        )
        httpd = make_server(svc, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{httpd.server_address[1]}"
        httpd.shutdown()
        httpd.server_close()
        svc.close()

    def test_raise_failpoint_becomes_500(self, server):
        (query,) = batched_query_workload(
            1, DIM, np.random.default_rng(SEED + 1)
        )
        payload = json.dumps(
            {"expression": expression_to_json(query)}
        ).encode()
        req = urllib.request.Request(
            f"{server}/search",
            data=payload,
            headers={"Content-Type": "application/json"},
        )
        faults.arm("handler=raise")
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=15)
        assert exc_info.value.code == 500
        faults.disarm()
        with urllib.request.urlopen(req, timeout=15) as resp:
            assert resp.status == 200
